"""Vertex-program definition for the GBSP model.

A :class:`VertexProgram` is the user-visible contract: three vectorized
callbacks plus a combiner.  All callbacks receive and return whole NumPy
arrays (one slot per vertex), keeping the model efficient in pure Python —
the BSP superstep structure, not per-vertex callbacks, is the abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["VertexProgram", "COMBINERS"]

#: Supported commutative/associative combiners and their identities.
COMBINERS: dict[str, tuple[np.ufunc, float]] = {
    "add": (np.add, 0.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


@dataclass(frozen=True)
class VertexProgram:
    """One vertex-centric algorithm.

    Parameters
    ----------
    scatter:
        ``scatter(values) -> messages``: the message each vertex sends
        along all of its out-edges this superstep (vectorized over the
        full value array; only active vertices' messages are delivered).
    combine:
        Name of the message combiner: ``"add"``, ``"min"`` or ``"max"``.
    apply:
        ``apply(values, accumulated, received_mask) -> new_values``:
        folds the combined messages into the vertex state.  Entries of
        ``accumulated`` where ``received_mask`` is False hold the
        combiner's identity.
    initial:
        ``initial(num_vertices) -> values``: the superstep-0 state.
    edge_op:
        Optional per-edge transform applied to the message as it crosses
        an edge: ``"add"`` delivers ``message + weight`` (shortest paths),
        ``"mul"`` delivers ``message * weight`` (weighted propagation).
        Requires the graph to carry edge weights.  ``None`` delivers the
        vertex message unchanged (the paper's unweighted case; Section IX
        notes weights "can be read in lockstep with the adjacencies").
    name:
        Label for reports.
    """

    scatter: Callable[[np.ndarray], np.ndarray]
    combine: str
    apply: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    initial: Callable[[int], np.ndarray]
    edge_op: str | None = None
    name: str = "vertex-program"

    def __post_init__(self) -> None:
        if self.combine not in COMBINERS:
            raise ValueError(
                f"combine must be one of {sorted(COMBINERS)}, got {self.combine!r}"
            )
        if self.edge_op not in (None, "add", "mul"):
            raise ValueError(
                f"edge_op must be None, 'add' or 'mul', got {self.edge_op!r}"
            )

    @property
    def combiner(self) -> np.ufunc:
        return COMBINERS[self.combine][0]

    @property
    def identity(self) -> float:
        return COMBINERS[self.combine][1]
