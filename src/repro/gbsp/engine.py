"""The GBSP superstep engine: push vs propagation-blocked message delivery.

One superstep:

1. every *active* vertex produces one message (``program.scatter``);
2. the message is delivered along each of its out-edges and combined into
   a per-destination accumulator (``program.combine``);
3. every vertex folds its accumulator into its state (``program.apply``);
4. vertices whose state changed form the next frontier.

Delivery backends:

* ``"push"`` — ``ufunc.at`` scatter into the accumulator: one low-locality
  read-modify-write per message;
* ``"pb"`` — propagation blocking: messages are routed through the graph's
  deterministic bin layout, then each destination-range slice is combined
  with a segmented ``ufunc.reduceat`` — sequential passes over sorted
  message arrays, the executable mirror of Algorithm 3.

Both deliver the same multiset of messages per destination, so for any
commutative, associative combiner the results are identical.
:func:`superstep_traffic` exposes the memory-traffic difference, reusing
the Section IX partial-propagation traces (a superstep *is* a partial
propagation).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.gbsp.program import VertexProgram
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.partial import partial_trace
from repro.memsim.cache import FullyAssociativeLRU, simulate
from repro.memsim.counters import MemCounters
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import pow2_at_least

__all__ = ["run_superstep", "run_until_quiescent", "superstep_traffic"]


class _PBDelivery:
    """Cached propagation-blocked delivery state for one graph.

    The deterministic layout orders edges by destination bin (stable, so
    source order within a bin); within each bin the accumulate pass sorts
    by destination once (cached) so ``reduceat`` can combine each
    destination's messages segment by segment.
    """

    def __init__(self, graph: CSRGraph, bin_width: int) -> None:
        self.layout = BinLayout(graph, bin_width)
        order = self.layout.order
        # Secondary sort: within the bin-major order, sort by destination.
        dst = self.layout.sorted_dst
        by_dst = np.argsort(dst, kind="stable")
        self.delivery_order = order[by_dst]  # edge slot -> delivery position
        self.sorted_dst = dst[by_dst]
        # Segment starts: first position of each distinct destination.
        if self.sorted_dst.size:
            boundary = np.empty(self.sorted_dst.size, dtype=bool)
            boundary[0] = True
            np.not_equal(self.sorted_dst[1:], self.sorted_dst[:-1], out=boundary[1:])
            self.segment_starts = np.flatnonzero(boundary)
            self.segment_dst = self.sorted_dst[self.segment_starts]
        else:
            self.segment_starts = np.empty(0, dtype=np.int64)
            self.segment_dst = np.empty(0, dtype=np.int32)


_DELIVERY_CACHE: dict[int, _PBDelivery] = {}


def _pb_delivery(graph: CSRGraph, machine: MachineSpec) -> _PBDelivery:
    key = id(graph)
    delivery = _DELIVERY_CACHE.get(key)
    if delivery is None or delivery.layout.graph is not graph:
        width = min(default_bin_width(machine), pow2_at_least(graph.num_vertices))
        delivery = _PBDelivery(graph, width)
        _DELIVERY_CACHE[key] = delivery
    return delivery


def run_superstep(
    graph: CSRGraph,
    program: VertexProgram,
    values: np.ndarray,
    active: np.ndarray,
    *,
    backend: str = "pb",
    machine: MachineSpec = SIMULATED_MACHINE,
) -> tuple[np.ndarray, np.ndarray]:
    """Execute one superstep; returns ``(new_values, new_frontier)``."""
    if backend not in ("push", "pb"):
        raise ValueError(f"backend must be 'push' or 'pb', got {backend!r}")
    n = graph.num_vertices
    active = np.asarray(active, dtype=bool)
    if active.shape != (n,):
        raise ValueError(f"active mask must have shape ({n},)")
    values = np.asarray(values, dtype=np.float64)

    messages = np.asarray(program.scatter(values), dtype=np.float64)
    if messages.shape != (n,):
        raise ValueError("scatter must return one message per vertex")

    sources = graph.edge_sources()
    edge_live = active[sources]
    combiner = program.combiner
    identity = program.identity
    accumulator = np.full(n, identity, dtype=np.float64)
    received = np.zeros(n, dtype=bool)

    if program.edge_op is not None and graph.weights is None:
        raise ValueError(f"edge_op {program.edge_op!r} requires edge weights")

    def apply_edge_op(msg: np.ndarray, edge_slots: np.ndarray) -> np.ndarray:
        """Transform messages with the weights of the edges they cross."""
        if program.edge_op is None:
            return msg
        weights = graph.weights[edge_slots].astype(np.float64)
        return msg + weights if program.edge_op == "add" else msg * weights

    if backend == "push":
        live_slots = np.flatnonzero(edge_live)
        live_dst = graph.targets[edge_live]
        live_msg = apply_edge_op(messages[sources[edge_live]], live_slots)
        combiner.at(accumulator, live_dst, live_msg)
        received[live_dst] = True
    else:
        delivery = _pb_delivery(graph, machine)
        order = delivery.delivery_order
        ordered_live = edge_live[order]
        if ordered_live.any():
            live_slots = order[ordered_live]
            ordered_msg = apply_edge_op(messages[sources[live_slots]], live_slots)
            ordered_dst = delivery.sorted_dst[ordered_live]
            # Per-destination segments within the live subsequence.
            boundary = np.empty(ordered_dst.size, dtype=bool)
            boundary[0] = True
            np.not_equal(ordered_dst[1:], ordered_dst[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            segment_dst = ordered_dst[starts]
            combined = combiner.reduceat(ordered_msg, starts)
            accumulator[segment_dst] = combiner(accumulator[segment_dst], combined)
            received[segment_dst] = True

    new_values = np.asarray(
        program.apply(values, accumulator, received), dtype=np.float64
    )
    if new_values.shape != (n,):
        raise ValueError("apply must return one value per vertex")
    new_frontier = new_values != values
    return new_values, new_frontier


def run_until_quiescent(
    graph: CSRGraph,
    program: VertexProgram,
    *,
    backend: str = "pb",
    initial_frontier: np.ndarray | None = None,
    max_supersteps: int = 10_000,
    machine: MachineSpec = SIMULATED_MACHINE,
) -> tuple[np.ndarray, int]:
    """Run supersteps until the frontier empties (or the cap is hit).

    Returns ``(values, supersteps_executed)``.
    """
    n = graph.num_vertices
    values = np.asarray(program.initial(n), dtype=np.float64)
    frontier = (
        np.ones(n, dtype=bool)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=bool)
    )
    steps = 0
    while frontier.any() and steps < max_supersteps:
        values, frontier = run_superstep(
            graph, program, values, frontier, backend=backend, machine=machine
        )
        steps += 1
    return values, steps


def superstep_traffic(
    graph: CSRGraph,
    active: np.ndarray,
    *,
    backend: str = "pb",
    machine: MachineSpec = SIMULATED_MACHINE,
) -> MemCounters:
    """Simulated DRAM traffic of one superstep's message delivery.

    A superstep with frontier ``active`` moves exactly the data of a
    partial propagation, so the Section IX traces apply: the ``push``
    backend is an unblocked scatter, ``pb`` is binned delivery.
    """
    if backend not in ("push", "pb"):
        raise ValueError(f"backend must be 'push' or 'pb', got {backend!r}")
    return simulate(
        partial_trace(graph, active, backend, machine),
        FullyAssociativeLRU(machine.llc),
    )

