"""Classic graph algorithms expressed as GBSP vertex programs.

These demonstrate the Section IX claim with algorithms other than
PageRank: label propagation (connected components) and frontier expansion
(BFS levels) are push-direction message passing, so both run unchanged on
the propagation-blocked backend.
"""

from __future__ import annotations

import numpy as np

from repro.gbsp.engine import run_until_quiescent
from repro.gbsp.program import VertexProgram
from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING

__all__ = [
    "pagerank_program",
    "connected_components",
    "bfs_levels",
    "reachable_from",
]


def pagerank_program(graph: CSRGraph, damping: float = DAMPING) -> VertexProgram:
    """PageRank as a vertex program (one superstep == one power iteration).

    ``scatter`` sends ``PR(u)/outdeg(u)``; ``combine`` sums; ``apply``
    applies the damping update.  Equivalent to Algorithm 2 / 3, and tested
    against the kernels for equality.
    """
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    n = graph.num_vertices
    base = (1.0 - damping) / n

    def scatter(values: np.ndarray) -> np.ndarray:
        return np.divide(
            values, degrees, out=np.zeros_like(values), where=degrees > 0
        )

    def apply(values: np.ndarray, accumulated: np.ndarray, received: np.ndarray):
        sums = np.where(received, accumulated, 0.0)
        return base + damping * sums

    return VertexProgram(
        scatter=scatter,
        combine="add",
        apply=apply,
        initial=lambda size: np.full(size, 1.0 / size, dtype=np.float64),
        name="pagerank",
    )


def _label_propagation_program() -> VertexProgram:
    def scatter(values: np.ndarray) -> np.ndarray:
        return values  # each vertex advertises its current label

    def apply(values: np.ndarray, accumulated: np.ndarray, received: np.ndarray):
        return np.where(received, np.minimum(values, accumulated), values)

    return VertexProgram(
        scatter=scatter,
        combine="min",
        apply=apply,
        initial=lambda size: np.arange(size, dtype=np.float64),
        name="connected-components",
    )


def connected_components(
    graph: CSRGraph, *, backend: str = "pb"
) -> np.ndarray:
    """Connected-component labels via min-label propagation.

    Each vertex's final label is the smallest vertex id in its (weakly
    connected, if the graph is symmetric) component.  Converges in
    O(component diameter) supersteps; only changed vertices stay active,
    so later supersteps exercise the partial-activity path.
    """
    labels, _ = run_until_quiescent(
        graph,
        _label_propagation_program(),
        backend=backend,
        max_supersteps=graph.num_vertices + 1,
    )
    return labels.astype(np.int64)


def _bfs_program(source: int) -> VertexProgram:
    def scatter(values: np.ndarray) -> np.ndarray:
        return values + 1.0  # offer level+1 to neighbors

    def apply(values: np.ndarray, accumulated: np.ndarray, received: np.ndarray):
        return np.where(received, np.minimum(values, accumulated), values)

    def initial(size: int) -> np.ndarray:
        levels = np.full(size, np.inf)
        levels[source] = 0.0
        return levels

    return VertexProgram(
        scatter=scatter, combine="min", apply=apply, initial=initial, name="bfs"
    )


def bfs_levels(graph: CSRGraph, source: int, *, backend: str = "pb") -> np.ndarray:
    """BFS distance (in hops) from ``source``; unreachable vertices get inf.

    Classic frontier expansion: superstep ``i``'s frontier is exactly
    level ``i`` — the workload whose shrinking/growing frontiers motivate
    the Section IX partial-activity property.
    """
    if not 0 <= source < graph.num_vertices:
        raise ValueError(
            f"source must be in [0, {graph.num_vertices}), got {source}"
        )
    n = graph.num_vertices
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    levels, _ = run_until_quiescent(
        graph,
        _bfs_program(source),
        backend=backend,
        initial_frontier=frontier,
        max_supersteps=n + 1,
    )
    return levels


def reachable_from(graph: CSRGraph, source: int, *, backend: str = "pb") -> np.ndarray:
    """Boolean reachability mask from ``source`` (a BFS corollary)."""
    return np.isfinite(bfs_levels(graph, source, backend=backend))


def _sssp_program(source: int) -> VertexProgram:
    def scatter(values: np.ndarray) -> np.ndarray:
        return values  # offer my distance; the edge op adds the weight

    def apply(values: np.ndarray, accumulated: np.ndarray, received: np.ndarray):
        return np.where(received, np.minimum(values, accumulated), values)

    def initial(size: int) -> np.ndarray:
        dist = np.full(size, np.inf)
        dist[source] = 0.0
        return dist

    return VertexProgram(
        scatter=scatter,
        combine="min",
        apply=apply,
        initial=initial,
        edge_op="add",
        name="sssp",
    )


def sssp_distances(graph: CSRGraph, source: int, *, backend: str = "pb") -> np.ndarray:
    """Single-source shortest path distances on a weighted graph.

    Bellman–Ford as supersteps: each round, vertices whose distance
    improved offer ``dist + w(u, v)`` to their out-neighbors (the edge
    weight is applied in flight — "read in lockstep with the adjacencies",
    Section IX).  Requires non-negative is *not* required — only the
    absence of negative cycles, as usual for Bellman–Ford; unreachable
    vertices keep ``inf``.
    """
    if graph.weights is None:
        raise ValueError("sssp_distances requires a weighted graph")
    if not 0 <= source < graph.num_vertices:
        raise ValueError(
            f"source must be in [0, {graph.num_vertices}), got {source}"
        )
    n = graph.num_vertices
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    distances, _ = run_until_quiescent(
        graph,
        _sssp_program(source),
        backend=backend,
        initial_frontier=frontier,
        max_supersteps=n + 1,
    )
    return distances
