"""GBSP — a small bulk-synchronous vertex-centric model with a PB backend.

The paper's origin story (Section IX): "We originally conceived of
propagation blocking to improve the locality of inter-vertex message
passing within GBSP, a bulk-synchronous parallel (BSP) domain-specific
language for graph processing", and its applicability claim: "Propagation
blocking can also be applied to ... many vertex-centric programming models
that operate in the push direction."

This subpackage substantiates both: a vertex program declares a vectorized
``scatter`` (vertex value -> message), a commutative ``combine`` ufunc
(add / min / max), and an ``apply`` step; the engine runs bulk-synchronous
supersteps over an active frontier with either of two message-delivery
backends:

* ``"push"`` — direct scatter into the accumulator (the naive delivery
  every vertex-centric framework starts with);
* ``"pb"`` — propagation-blocked delivery: messages are binned by
  destination range and combined one cache-resident slice at a time.

Both backends produce identical results for any commutative, associative
combiner; they differ — measurably, via :func:`superstep_traffic` — in
memory traffic, which was the point all along.
"""

from repro.gbsp.program import VertexProgram, COMBINERS
from repro.gbsp.engine import run_superstep, run_until_quiescent, superstep_traffic
from repro.gbsp.algorithms import (
    pagerank_program,
    connected_components,
    bfs_levels,
    reachable_from,
    sssp_distances,
)

__all__ = [
    "VertexProgram",
    "COMBINERS",
    "run_superstep",
    "run_until_quiescent",
    "superstep_traffic",
    "pagerank_program",
    "connected_components",
    "bfs_levels",
    "reachable_from",
    "sssp_distances",
]
