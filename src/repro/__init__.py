"""repro — reproduction of *Reducing PageRank Communication via Propagation
Blocking* (Beamer, Asanović, Patterson; IPDPS 2017).

Quick start::

    from repro import load_graph, pagerank
    graph = load_graph("urand", scale=0.25)
    result = pagerank(graph)          # auto-selects pull / CB / DPB
    print(result.method, result.iterations)

Measuring communication the way the paper does::

    from repro import make_kernel
    kernel = make_kernel(graph, "dpb")
    counters = kernel.measure()       # simulated DRAM line transfers
    print(counters.total_reads, counters.total_writes)

Subpackages: :mod:`repro.graphs` (graph substrate), :mod:`repro.memsim`
(cache simulator), :mod:`repro.kernels` (all PageRank strategies + SpMV),
:mod:`repro.models` (Section V analytics, time model), :mod:`repro.harness`
(table/figure regeneration).
"""

from repro.graphs import CSRGraph, EdgeList, build_csr, load_graph, load_suite
from repro.kernels import (
    PageRankResult,
    SparseMatrix,
    make_kernel,
    pagerank,
    select_method,
    spmv,
)
from repro.models import IVY_BRIDGE_SERVER, SIMULATED_MACHINE, MachineSpec

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "EdgeList",
    "build_csr",
    "load_graph",
    "load_suite",
    "PageRankResult",
    "SparseMatrix",
    "make_kernel",
    "pagerank",
    "select_method",
    "spmv",
    "IVY_BRIDGE_SERVER",
    "SIMULATED_MACHINE",
    "MachineSpec",
    "__version__",
]
