"""Graph serialization.

Two formats:

* ``.npz`` — compact binary round-trip of a :class:`CSRGraph` (offsets,
  targets, optional weights, symmetry flag).  This is how the benchmark
  harness caches generated suite graphs between runs.
* ``.el`` / ``.wel`` — whitespace-separated edge-list text, the GAP
  benchmark's interchange format, for moving graphs in and out of other
  tools.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graphs.builder import build_csr
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import VERTEX_DTYPE, EdgeList

__all__ = ["save_npz", "load_npz", "save_edge_list", "load_edge_list"]

_FORMAT_VERSION = 1


def save_npz(path: str | os.PathLike, graph: CSRGraph) -> None:
    """Serialize ``graph`` to ``path`` (NumPy ``.npz``)."""
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "offsets": graph.offsets,
        "targets": graph.targets,
        "symmetric": np.bool_(graph.symmetric),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version} (expected {_FORMAT_VERSION})"
            )
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(
            data["offsets"],
            data["targets"],
            weights=weights,
            symmetric=bool(data["symmetric"]),
        )


def save_edge_list(path: str | os.PathLike, edges: EdgeList) -> None:
    """Write ``edges`` as text: one ``src dst [weight]`` line per edge."""
    if edges.weights is None:
        columns = np.column_stack([edges.src, edges.dst])
        np.savetxt(path, columns, fmt="%d")
    else:
        columns = np.column_stack(
            [edges.src.astype(np.float64), edges.dst.astype(np.float64), edges.weights]
        )
        np.savetxt(path, columns, fmt=["%d", "%d", "%.9g"])


def load_edge_list(
    path: str | os.PathLike, *, num_vertices: int | None = None
) -> EdgeList:
    """Read a text edge list; vertex count defaults to ``max id + 1``."""
    raw = np.loadtxt(path, ndmin=2)
    if raw.size == 0:
        return EdgeList(num_vertices or 0, np.empty(0, VERTEX_DTYPE), np.empty(0, VERTEX_DTYPE))
    if raw.shape[1] not in (2, 3):
        raise ValueError(f"expected 2 or 3 columns, got {raw.shape[1]}")
    src = raw[:, 0].astype(VERTEX_DTYPE)
    dst = raw[:, 1].astype(VERTEX_DTYPE)
    weights = raw[:, 2].astype(np.float32) if raw.shape[1] == 3 else None
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1
    return EdgeList(num_vertices, src, dst, weights)


def load_or_build(
    cache_path: str | os.PathLike,
    edges_factory,
    **build_kwargs,
) -> CSRGraph:
    """Load a cached ``.npz`` graph, or build from ``edges_factory()`` and cache it."""
    if os.path.exists(cache_path):
        return load_npz(cache_path)
    graph = build_csr(edges_factory(), **build_kwargs)
    os.makedirs(os.path.dirname(os.fspath(cache_path)) or ".", exist_ok=True)
    save_npz(cache_path, graph)
    return graph
