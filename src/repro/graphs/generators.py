"""Synthetic graph generators.

The paper evaluates on eight graphs (Table I): two synthetic (``urand``,
``kron``) and six from real-world data (Twitter, Friendster, MAG citations,
MAG coauthorships, webbase-2001 and its randomized relabelling).  Without
the proprietary datasets we generate *stand-ins that match the topological
properties the paper's analysis depends on*:

========== ===================================================================
graph      property that drives its communication behaviour
========== ===================================================================
urand      no locality at all — the worst case (Erdős–Rényi, Section VI)
kron       power-law degrees -> hot hub vertices cache well (Graph500 RMAT)
twitter    directed, strongly skewed in-degrees (social follow graph)
friend     symmetric, community-clustered, high degree (Friendster)
cite       directed acyclic-ish, recency + popularity biased (citations)
coauth     symmetric, built from paper-author cliques (coauthorships)
web        *high-locality labelling*: most edges short-range (crawl order)
webrnd     identical topology to web, labels randomly permuted
========== ===================================================================

Every generator is fully vectorized, deterministic under a seed, and returns
an :class:`~repro.graphs.edgelist.EdgeList` ready for
:func:`~repro.graphs.builder.build_csr`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.edgelist import VERTEX_DTYPE, EdgeList
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "uniform_random_graph",
    "kronecker_graph",
    "social_network_graph",
    "community_graph",
    "citation_graph",
    "coauthorship_graph",
    "web_crawl_graph",
    "grid_graph",
]


def uniform_random_graph(
    num_vertices: int,
    degree: float,
    seed: int | None | np.random.Generator = None,
    *,
    symmetric: bool = True,
) -> EdgeList:
    """Erdős–Rényi-style uniform random graph (the paper's ``urand``).

    Samples ``degree * num_vertices`` directed edges with independently
    uniform endpoints.  When ``symmetric``, half as many undirected edges
    are sampled and mirrored, so the *directed* degree still equals
    ``degree`` (the metric the paper standardizes on, Section VI).

    This is the locality worst case: every vertex-value access is a uniform
    random index, so for ``n`` much larger than the cache nearly every
    access misses.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    rng = as_generator(seed)
    num_directed = int(round(degree * num_vertices))
    m = num_directed // 2 if symmetric else num_directed
    src = rng.integers(0, num_vertices, size=m, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=m, dtype=VERTEX_DTYPE)
    edges = EdgeList(num_vertices, src, dst)
    return edges.symmetrized() if symmetric else edges


def kronecker_graph(
    scale: int,
    edge_factor: float = 16.0,
    seed: int | None | np.random.Generator = None,
    *,
    initiator: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    symmetric: bool = True,
) -> EdgeList:
    """Kronecker/RMAT graph "generated akin to Graph500's input graphs".

    ``2**scale`` vertices; the default initiator matrix (A, B, C, D) =
    (0.57, 0.19, 0.19, 0.05) is the Graph500 specification the paper cites.
    The recursive quadrant choice is vectorized: per bit level, one uniform
    draw selects the source-half and a second selects the destination-half
    conditioned on the first.

    The resulting strong power-law degree distribution is what gives
    ``kron`` better vertex-value temporal locality than ``urand`` of the
    same size (hub contributions stay cached — Figure 3's discussion).
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    a, b, c, d = initiator
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"initiator probabilities must sum to 1, got {total}")
    rng = as_generator(seed)
    n = 1 << scale
    num_directed = int(round(edge_factor * n))
    m = num_directed // 2 if symmetric else num_directed

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Conditional probabilities for the destination bit given the source bit.
    p_src_one = c + d  # probability the edge falls in the lower half (src bit 1)
    p_dst_one_given_src0 = b / (a + b)
    p_dst_one_given_src1 = d / (c + d)
    for _ in range(scale):
        u1 = rng.random(m)
        u2 = rng.random(m)
        src_bit = u1 < p_src_one
        threshold = np.where(src_bit, p_dst_one_given_src1, p_dst_one_given_src0)
        dst_bit = u2 < threshold
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    edges = EdgeList(n, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))
    return edges.symmetrized() if symmetric else edges


def grid_graph(rows: int, cols: int) -> EdgeList:
    """2-D mesh with row-major labels — the paper's ideal-layout reference.

    Section III: "An ideal high-locality graph layout when viewed by its
    adjacency matrix has all of its non-zeros in a narrow diagonal."  A
    row-major mesh is exactly that: every neighbor is at label distance 1
    or ``cols``, so the matrix bandwidth equals ``cols``.  Meshes are the
    inputs where relabelling (RCM) shines and blocking is unnecessary —
    the opposite pole from ``urand``.  Deterministic (no seed).
    """
    check_positive("rows", rows)
    check_positive("cols", cols)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src]).astype(VERTEX_DTYPE)
    dst = np.concatenate([right_dst, down_dst]).astype(VERTEX_DTYPE)
    return EdgeList(rows * cols, src, dst).symmetrized()


def _skewed_ids(
    rng: np.random.Generator, size: int, num_vertices: int, skew: float
) -> np.ndarray:
    """Sample vertex ids with a power-law bias toward low ids.

    ``skew == 1`` is uniform; larger values concentrate probability on a
    shrinking head of "popular" vertices (id 0 most popular).  Sampling is
    by inverse transform on ``u**skew``.
    """
    u = rng.random(size)
    ids = np.floor((u**skew) * num_vertices).astype(VERTEX_DTYPE)
    return np.minimum(ids, num_vertices - 1)


def social_network_graph(
    num_vertices: int,
    degree: float = 24.0,
    seed: int | None | np.random.Generator = None,
    *,
    follower_skew: float = 3.0,
    followee_skew: float = 1.5,
) -> EdgeList:
    """Directed follow graph (the ``twitter`` stand-in).

    Edge ``u -> v`` means "u follows v".  Followees are sampled with a
    strong popularity skew (celebrities amass millions of followers) and
    followers with a milder activity skew.  Labels are then shuffled so the
    hubs are scattered through the id space, as in the Kwak et al. crawl
    the paper uses.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    rng = as_generator(seed)
    m = int(round(degree * num_vertices))
    src = _skewed_ids(rng, m, num_vertices, followee_skew)
    dst = _skewed_ids(rng, m, num_vertices, follower_skew)
    perm = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
    return EdgeList(num_vertices, perm[src], perm[dst])


def community_graph(
    num_vertices: int,
    degree: float = 28.0,
    seed: int | None | np.random.Generator = None,
    *,
    community_size: int = 4096,
    intra_fraction: float = 0.6,
) -> EdgeList:
    """Symmetric community-clustered graph (the ``friend`` stand-in).

    Vertices are grouped into communities of ``community_size``; a fraction
    ``intra_fraction`` of undirected edges stay inside the endpoint's
    community and the rest connect uniformly at random.  Community members
    get *scattered* ids (random assignment), so the clustering improves
    temporal reuse of hot neighborhoods without giving the labelling any
    banded spatial locality — matching how Friendster behaves in Figure 3
    (~85 % vertex traffic, i.e. low but not worst-case locality).
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    check_positive("community_size", community_size)
    check_probability("intra_fraction", intra_fraction)
    rng = as_generator(seed)
    m = int(round(degree * num_vertices)) // 2
    membership = rng.permutation(num_vertices).astype(np.int64)  # vertex -> slot
    slot_to_vertex = np.empty(num_vertices, dtype=VERTEX_DTYPE)
    slot_to_vertex[membership] = np.arange(num_vertices, dtype=VERTEX_DTYPE)

    src_slot = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    intra = rng.random(m) < intra_fraction
    community_base = (src_slot // community_size) * community_size
    intra_offset = rng.integers(0, community_size, size=m, dtype=np.int64)
    dst_slot = np.where(
        intra,
        np.minimum(community_base + intra_offset, num_vertices - 1),
        rng.integers(0, num_vertices, size=m, dtype=np.int64),
    )
    edges = EdgeList(num_vertices, slot_to_vertex[src_slot], slot_to_vertex[dst_slot])
    return edges.symmetrized()


def citation_graph(
    num_vertices: int,
    degree: float = 19.0,
    seed: int | None | np.random.Generator = None,
    *,
    recency_weight: float = 0.5,
    recency_skew: float = 4.0,
    popularity_skew: float = 3.0,
) -> EdgeList:
    """Directed citation graph (the ``cite`` stand-in).

    Vertex ids model publication order; paper ``u`` cites only earlier
    papers ``v < u``.  Each citation is either *recent* (close to ``u``,
    weight ``recency_weight``) or *popular* (power-law over all earlier
    papers — seminal work keeps accumulating citations).
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    check_probability("recency_weight", recency_weight)
    rng = as_generator(seed)
    m = int(round(degree * num_vertices))
    src = rng.integers(1, num_vertices, size=m, dtype=np.int64)
    recent = rng.random(m) < recency_weight
    u = rng.random(m)
    # Recent: dst just below src.  Popular: power-law toward old papers.
    recent_dst = src - 1 - np.floor((u**recency_skew) * src).astype(np.int64)
    popular_dst = np.floor((u**popularity_skew) * src).astype(np.int64)
    dst = np.where(recent, recent_dst, popular_dst)
    dst = np.clip(dst, 0, src - 1)
    return EdgeList(num_vertices, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))


def coauthorship_graph(
    num_vertices: int,
    degree: float = 10.8,
    seed: int | None | np.random.Generator = None,
    *,
    mean_authors: float = 3.0,
    max_authors: int = 8,
    author_skew: float = 2.0,
) -> EdgeList:
    """Symmetric coauthorship graph (the ``coauth`` stand-in).

    Generated the way the paper built its MAG input: enumerate papers, give
    each a small author list (prolific authors sampled more often), and add
    a clique among each paper's authors; duplicate edges are removed later
    by the CSR builder.  Cliques give high clustering and a heavy-ish
    degree tail at low average degree.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    check_positive("mean_authors", mean_authors)
    rng = as_generator(seed)
    # A paper with a authors contributes a*(a-1) directed edges; solve for
    # the number of papers from the expected authors-per-paper moments.
    sizes_pmf = _truncated_geometric_pmf(mean_authors, max_authors)
    sizes_support = np.arange(2, max_authors + 1)
    expected_edges = float(np.sum(sizes_pmf * sizes_support * (sizes_support - 1)))
    num_papers = max(1, int(round(degree * num_vertices / expected_edges)))
    sizes = rng.choice(sizes_support, size=num_papers, p=sizes_pmf)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for size in np.unique(sizes):
        count = int(np.sum(sizes == size))
        authors = _skewed_ids(rng, count * int(size), num_vertices, author_skew)
        authors = authors.reshape(count, int(size))
        # All ordered pairs (i, j), i != j, within each paper's author row.
        idx_i, idx_j = np.nonzero(~np.eye(int(size), dtype=bool))
        src_parts.append(authors[:, idx_i].ravel())
        dst_parts.append(authors[:, idx_j].ravel())
    return EdgeList(num_vertices, np.concatenate(src_parts), np.concatenate(dst_parts))


def _truncated_geometric_pmf(mean: float, max_value: int) -> np.ndarray:
    """PMF over {2..max_value} of a geometric tuned to the requested mean."""
    support = np.arange(2, max_value + 1, dtype=np.float64)
    # Geometric decay rate solved coarsely so the truncated mean ~= mean.
    best, best_err = 0.5, np.inf
    for q in np.linspace(0.05, 0.95, 91):
        pmf = q ** (support - 2)
        pmf /= pmf.sum()
        err = abs(float(pmf @ support) - mean)
        if err < best_err:
            best, best_err = q, err
    pmf = best ** (support - 2)
    return pmf / pmf.sum()


def web_crawl_graph(
    num_vertices: int,
    degree: float = 5.4,
    seed: int | None | np.random.Generator = None,
    *,
    window: int = 1024,
    long_range_fraction: float = 0.1,
    offset_skew: float = 3.0,
) -> EdgeList:
    """Directed web-crawl graph with a *high-locality labelling* (``web``).

    webbase-2001 ids follow crawl order, so most hyperlinks connect pages
    discovered close together: the adjacency matrix is nearly banded.  We
    reproduce that by drawing each destination as a short signed offset
    from the source (power-law concentrated inside ``window``) with a small
    ``long_range_fraction`` of uniform edges.

    Randomly permuting this graph's labels (see
    :func:`repro.graphs.suite.load_graph` with ``webrnd``) destroys the
    banding while preserving topology — the paper's web/webrnd contrast.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("degree", degree)
    check_positive("window", window)
    check_probability("long_range_fraction", long_range_fraction)
    rng = as_generator(seed)
    m = int(round(degree * num_vertices))
    src = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    u = rng.random(m)
    magnitude = 1 + np.floor((u**offset_skew) * window).astype(np.int64)
    sign = np.where(rng.random(m) < 0.5, -1, 1)
    local_dst = np.clip(src + sign * magnitude, 0, num_vertices - 1)
    long_range = rng.random(m) < long_range_fraction
    dst = np.where(
        long_range, rng.integers(0, num_vertices, size=m, dtype=np.int64), local_dst
    )
    return EdgeList(num_vertices, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))
