"""Graph construction: edge list -> CSR.

This mirrors the GAP Benchmark Suite builder the paper starts from: take a
raw edge list, optionally symmetrize, optionally remove duplicate edges and
self-loops, sort each vertex's neighbor list, and emit CSR.  All steps are
vectorized (counting sorts and ``np.unique``), so building the largest suite
graphs takes well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import OFFSET_DTYPE, CSRGraph
from repro.graphs.edgelist import VERTEX_DTYPE, EdgeList

__all__ = ["build_csr", "remove_self_loops", "deduplicate_edges"]


def remove_self_loops(edges: EdgeList) -> EdgeList:
    """Drop edges with ``src == dst``.

    Self-loops would let a vertex propagate to itself, which the PageRank
    formulation tolerates but real suite graphs (and the paper's inputs)
    exclude.
    """
    keep = edges.src != edges.dst
    weights = None if edges.weights is None else edges.weights[keep]
    return EdgeList(edges.num_vertices, edges.src[keep], edges.dst[keep], weights)


def deduplicate_edges(edges: EdgeList) -> EdgeList:
    """Remove duplicate ``(src, dst)`` pairs, keeping one copy of each.

    The paper notes the coauthorship graph was built "with duplicate edges
    removed" (Section VI); generators that sample endpoints independently
    also produce occasional duplicates.  For weighted edge lists duplicate
    weights are *summed*, matching sparse-matrix assembly semantics.
    """
    key = edges.src.astype(np.int64) * edges.num_vertices + edges.dst.astype(np.int64)
    if edges.weights is None:
        unique_key = np.unique(key)
        src = (unique_key // edges.num_vertices).astype(VERTEX_DTYPE)
        dst = (unique_key % edges.num_vertices).astype(VERTEX_DTYPE)
        return EdgeList(edges.num_vertices, src, dst)
    unique_key, inverse = np.unique(key, return_inverse=True)
    weights = np.zeros(unique_key.size, dtype=np.float64)
    np.add.at(weights, inverse, edges.weights.astype(np.float64))
    src = (unique_key // edges.num_vertices).astype(VERTEX_DTYPE)
    dst = (unique_key % edges.num_vertices).astype(VERTEX_DTYPE)
    return EdgeList(edges.num_vertices, src, dst, weights.astype(np.float32))


def build_csr(
    edges: EdgeList,
    *,
    symmetric: bool = False,
    symmetrize: bool = False,
    dedup: bool = True,
    drop_self_loops: bool = True,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Assemble a :class:`CSRGraph` from an edge list.

    Parameters
    ----------
    edges:
        Input edges.  The input object is never modified.
    symmetric:
        Declare the *result* symmetric (the transpose aliases the graph).
        Use together with ``symmetrize=True``, or when the input is already
        symmetric by construction.
    symmetrize:
        Add the reverse of every edge before building (how undirected suite
        graphs are loaded; their directed degree doubles, Section VI).
    dedup:
        Remove duplicate edges after optional symmetrization.
    drop_self_loops:
        Remove self-loops first.
    sort_neighbors:
        Sort each vertex's neighbor list ascending.  Deterministic neighbor
        order makes traces and results reproducible; generators may disable
        it to preserve insertion order.
    """
    if drop_self_loops:
        edges = remove_self_loops(edges)
    if symmetrize:
        edges = edges.symmetrized()
        symmetric = True
    if dedup:
        edges = deduplicate_edges(edges)

    n = edges.num_vertices
    counts = np.bincount(edges.src, minlength=n)
    offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])

    if sort_neighbors:
        # Sort by (src, dst): a stable sort on dst followed by a stable sort
        # on src yields neighbor lists in ascending order.
        order = np.argsort(edges.dst, kind="stable")
        order = order[np.argsort(edges.src[order], kind="stable")]
    else:
        order = np.argsort(edges.src, kind="stable")
    targets = edges.dst[order]
    weights = None if edges.weights is None else edges.weights[order]
    return CSRGraph(offsets, targets, weights=weights, symmetric=symmetric)
