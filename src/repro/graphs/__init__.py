"""Graph substrate: representations, builders, generators, layouts, partitions.

The kernels in :mod:`repro.kernels` consume :class:`CSRGraph`; everything
else here exists to produce, transform, or describe those graphs the way
the paper's evaluation requires (Table I suite, relabelling experiments,
1-D cache-blocking partitions).
"""

from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.builder import build_csr, deduplicate_edges, remove_self_loops
from repro.graphs.generators import (
    uniform_random_graph,
    kronecker_graph,
    social_network_graph,
    community_graph,
    citation_graph,
    coauthorship_graph,
    web_crawl_graph,
    grid_graph,
)
from repro.graphs.relabel import (
    random_permutation,
    degree_sort_permutation,
    bfs_permutation,
    rcm_permutation,
    identity_permutation,
    invert_permutation,
    bandwidth_profile,
    average_neighbor_distance,
)
from repro.graphs.partition import (
    Partition1D,
    EdgeListBlock,
    CSRBlock,
    partition_by_destination,
    num_blocks_for_width,
    choose_block_width,
)
from repro.graphs.suite import (
    SUITE,
    SUITE_NAMES,
    LOW_LOCALITY_NAMES,
    GraphSpec,
    load_graph,
    load_suite,
    suite_table_rows,
)
from repro.graphs.io import save_npz, load_npz, save_edge_list, load_edge_list

__all__ = [
    "CSRGraph",
    "EdgeList",
    "build_csr",
    "deduplicate_edges",
    "remove_self_loops",
    "uniform_random_graph",
    "kronecker_graph",
    "social_network_graph",
    "community_graph",
    "citation_graph",
    "coauthorship_graph",
    "web_crawl_graph",
    "grid_graph",
    "random_permutation",
    "degree_sort_permutation",
    "bfs_permutation",
    "rcm_permutation",
    "identity_permutation",
    "invert_permutation",
    "bandwidth_profile",
    "average_neighbor_distance",
    "Partition1D",
    "EdgeListBlock",
    "CSRBlock",
    "partition_by_destination",
    "num_blocks_for_width",
    "choose_block_width",
    "SUITE",
    "SUITE_NAMES",
    "LOW_LOCALITY_NAMES",
    "GraphSpec",
    "load_graph",
    "load_suite",
    "suite_table_rows",
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
]
