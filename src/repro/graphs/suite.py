"""The scaled 8-graph evaluation suite (paper Table I).

The paper's inputs range from 49.8 M to 134.2 M vertices.  Driving a
cache *simulator* at that scale is pointless — what matters for every
result in the paper is the **ratio** between the vertex count and the cache
size (``n/c``), the directed degree ``k``, and the labelling locality.  We
therefore scale every graph down by ``SCALE_DIVISOR`` (1024) and pair the
suite with a proportionally scaled simulated LLC
(:data:`repro.models.performance.SIMULATED_MACHINE`), preserving the
paper's ``n/c ~ 8-20`` regime.

``webrnd`` is constructed exactly as in the paper: generate ``web``, then
apply a uniformly random relabelling — identical topology, destroyed
layout.

Use :func:`load_graph` for one graph or :func:`load_suite` for all eight.
Every graph is deterministic in (name, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.builder import build_csr
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs import generators as gen
from repro.graphs.relabel import random_permutation
from repro.utils.rng import as_generator, spawn_child

__all__ = [
    "GraphSpec",
    "SUITE",
    "SUITE_NAMES",
    "LOW_LOCALITY_NAMES",
    "SCALE_DIVISOR",
    "load_graph",
    "load_suite",
    "suite_table_rows",
]

#: Linear factor between the paper's vertex counts and ours.
SCALE_DIVISOR = 1024


@dataclass(frozen=True)
class GraphSpec:
    """Metadata for one suite graph, mirroring a row of the paper's Table I."""

    name: str
    description: str
    paper_vertices_m: float  #: paper's vertex count, millions
    paper_edges_m: float  #: paper's directed edge count, millions
    paper_degree: float  #: paper's directed degree
    symmetric: bool
    high_locality: bool  #: True only for web — the one graph blocking cannot help
    factory: Callable[[int, np.random.Generator], EdgeList]

    @property
    def scaled_vertices(self) -> int:
        """Vertex count after dividing the paper's by :data:`SCALE_DIVISOR`."""
        return int(round(self.paper_vertices_m * 1e6 / SCALE_DIVISOR))


def _urand(n: int, rng: np.random.Generator) -> EdgeList:
    return gen.uniform_random_graph(n, 16.0, rng, symmetric=True)


def _kron(n: int, rng: np.random.Generator) -> EdgeList:
    scale = max(1, int(round(np.log2(n))))
    return gen.kronecker_graph(scale, 16.0, rng, symmetric=True)


def _twitter(n: int, rng: np.random.Generator) -> EdgeList:
    return gen.social_network_graph(n, 23.8, rng)


def _friend(n: int, rng: np.random.Generator) -> EdgeList:
    return gen.community_graph(n, 28.9, rng)


def _cite(n: int, rng: np.random.Generator) -> EdgeList:
    return gen.citation_graph(n, 19.0, rng)


def _coauth(n: int, rng: np.random.Generator) -> EdgeList:
    # Clique dedup removes ~some edges; the factor recenters the measured
    # directed degree on the paper's 10.8.
    return gen.coauthorship_graph(n, 10.8, rng)


def _web(n: int, rng: np.random.Generator) -> EdgeList:
    return gen.web_crawl_graph(n, 5.4, rng)


SUITE: dict[str, GraphSpec] = {
    "urand": GraphSpec(
        "urand", "Uniform Random Graph", 134.2, 2147.5, 16.0, True, False, _urand
    ),
    "kron": GraphSpec(
        "kron", "Kronecker Synthetic Graph", 134.2, 2125.7, 16.0, True, False, _kron
    ),
    "twitter": GraphSpec(
        "twitter", "Twitter Follow Links", 61.6, 1468.4, 23.8, False, False, _twitter
    ),
    "friend": GraphSpec(
        "friend", "Friendster", 124.8, 3612.1, 28.9, True, False, _friend
    ),
    "cite": GraphSpec(
        "cite", "Academic Citations", 49.8, 949.6, 19.0, False, False, _cite
    ),
    "coauth": GraphSpec(
        "coauth", "Academic Coauthorships", 119.9, 1293.8, 10.8, True, False, _coauth
    ),
    "web": GraphSpec(
        "web", "webbase-2001", 118.1, 632.1, 5.4, False, True, _web
    ),
    "webrnd": GraphSpec(
        "webrnd", "webbase-2001 Randomized", 118.1, 632.1, 5.4, False, False, _web
    ),
}

#: Table I row order.
SUITE_NAMES: tuple[str, ...] = tuple(SUITE)

#: The seven graphs the paper reports 1.5-2.9x communication reductions on.
LOW_LOCALITY_NAMES: tuple[str, ...] = tuple(
    name for name, spec in SUITE.items() if not spec.high_locality
)


def load_graph(
    name: str,
    *,
    seed: int = 42,
    scale: float = 1.0,
) -> CSRGraph:
    """Generate one suite graph.

    Parameters
    ----------
    name:
        A key of :data:`SUITE` (``urand``, ``kron``, ..., ``webrnd``).
    seed:
        Seed for the generator.  ``web`` and ``webrnd`` share the same
        topology seed — only the relabelling differs — so the paper's
        controlled comparison is reproduced exactly.
    scale:
        Extra multiplier on the scaled vertex count (e.g. ``0.25`` for a
        quick run).  The directed degree is unchanged.
    """
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}; choose from {SUITE_NAMES}")
    spec = SUITE[name]
    n = max(64, int(round(spec.scaled_vertices * scale)))
    rng = as_generator(seed)
    # Independent child streams so the generator and the webrnd permutation
    # cannot interfere, and so web/webrnd share the topology stream.
    topology_rng = spawn_child(as_generator(seed), 0)
    edges = spec.factory(n, topology_rng)
    if name == "webrnd":
        perm = random_permutation(edges.num_vertices, spawn_child(rng, 1))
        edges = edges.permuted(perm)
    return build_csr(edges, symmetric=spec.symmetric)


def load_suite(
    *, seed: int = 42, scale: float = 1.0, names: tuple[str, ...] = SUITE_NAMES
) -> dict[str, CSRGraph]:
    """Generate every requested suite graph (keyed by name, Table I order)."""
    return {name: load_graph(name, seed=seed, scale=scale) for name in names}


def suite_table_rows(graphs: dict[str, CSRGraph]) -> list[list[object]]:
    """Rows for the reproduction of Table I: ours vs the paper's metadata."""
    rows: list[list[object]] = []
    for name, graph in graphs.items():
        spec = SUITE[name]
        rows.append(
            [
                name,
                spec.description,
                graph.num_vertices,
                graph.num_edges,
                round(graph.average_degree, 1),
                "Y" if spec.symmetric else "N",
                spec.paper_vertices_m,
                spec.paper_edges_m,
                spec.paper_degree,
            ]
        )
    return rows
