"""Vertex relabelling and layout-locality metrics.

The paper stresses that "the graph labelling (or 'layout') has a tremendous
impact on the locality of the vertex value accesses" (Section III) and uses
web vs webrnd to demonstrate it.  This module provides the permutations a
user would try before reaching for blocking:

* :func:`random_permutation` — destroys locality (builds ``webrnd``);
* :func:`degree_sort_permutation` — hubs first (Zhang et al.'s frequency
  relabelling, cited as related work);
* :func:`rcm_permutation` / :func:`bfs_permutation` — Cuthill–McKee-style
  bandwidth reduction (Section VIII related work);

plus the metrics that quantify what a labelling achieved:
:func:`bandwidth_profile` and :func:`average_neighbor_distance`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import VERTEX_DTYPE
from repro.utils.rng import as_generator

__all__ = [
    "random_permutation",
    "degree_sort_permutation",
    "bfs_permutation",
    "rcm_permutation",
    "identity_permutation",
    "invert_permutation",
    "bandwidth_profile",
    "average_neighbor_distance",
]


def identity_permutation(num_vertices: int) -> np.ndarray:
    """The do-nothing relabelling."""
    return np.arange(num_vertices, dtype=VERTEX_DTYPE)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of ``perm``: if ``perm[v] = w`` then ``inverse[w] = v``."""
    perm = np.asarray(perm)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inverse


def random_permutation(
    num_vertices: int, seed: int | None | np.random.Generator = None
) -> np.ndarray:
    """Uniformly random relabelling — the transform that turns web into webrnd."""
    rng = as_generator(seed)
    return rng.permutation(num_vertices).astype(VERTEX_DTYPE)


def degree_sort_permutation(graph: CSRGraph, *, descending: bool = True) -> np.ndarray:
    """Relabel vertices in (out-)degree order, hubs first by default.

    Placing high-degree vertices at adjacent low ids packs the hottest
    vertex values into a few cache lines, the frequency-based relabelling
    of Zhang et al. [36] discussed in the paper's related work.
    """
    degrees = graph.out_degrees()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    return invert_permutation(order.astype(VERTEX_DTYPE))


def bfs_permutation(
    graph: CSRGraph, source: int = 0, *, sort_neighbors_by_degree: bool = False
) -> np.ndarray:
    """Relabel vertices in breadth-first discovery order.

    Unreached vertices (other components) are appended in id order.  This
    is the heuristic core of Cuthill–McKee: BFS levels group vertices whose
    neighbors have nearby labels.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source must be in [0, {n}), got {source}")
    order = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    degrees = graph.out_degrees()
    next_label = 0
    for start in [source, *range(n)]:
        if visited[start]:
            continue
        visited[start] = True
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            order[next_label] = u
            next_label += 1
            neighbors = graph.neighbors(u)
            fresh = neighbors[~visited[neighbors]]
            if fresh.size:
                fresh = np.unique(fresh)
                if sort_neighbors_by_degree:
                    fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(v) for v in fresh)
    return invert_permutation(order.astype(VERTEX_DTYPE))


def rcm_permutation(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill–McKee relabelling.

    BFS from a minimum-degree vertex, children visited in ascending degree
    order, final ordering reversed — the classic bandwidth-reduction
    relabelling ([28], [29] in the paper).  Most effective on meshes; the
    paper notes low-diameter social graphs resist it, which is exactly why
    propagation blocking exists.
    """
    degrees = graph.out_degrees()
    start = int(np.argmin(degrees))
    perm = bfs_permutation(graph, source=start, sort_neighbors_by_degree=True)
    # Reverse the ordering: new label l becomes n-1-l.
    return (graph.num_vertices - 1 - perm).astype(VERTEX_DTYPE)


def bandwidth_profile(graph: CSRGraph) -> dict[str, float]:
    """Matrix-bandwidth statistics of the current labelling.

    Returns the maximum and mean of ``|u - v|`` over directed edges, plus
    the fraction of edges whose endpoints fall within one cache line of
    32-bit values (16 ids).  A near-banded layout (web) scores a small mean
    distance; urand's mean distance is ~n/3.
    """
    if graph.num_edges == 0:
        return {"max_distance": 0.0, "mean_distance": 0.0, "within_line_fraction": 1.0}
    src = graph.edge_sources().astype(np.int64)
    dst = graph.targets.astype(np.int64)
    dist = np.abs(src - dst)
    return {
        "max_distance": float(dist.max()),
        "mean_distance": float(dist.mean()),
        "within_line_fraction": float(np.mean(dist < 16)),
    }


def average_neighbor_distance(graph: CSRGraph) -> float:
    """Mean label distance between consecutive neighbors in each adjacency list.

    Measures *spatial* locality of the gather stream: when consecutive
    neighbors of a vertex have nearby labels their contributions share
    cache lines.  Sorted, banded layouts score near 1; random layouts score
    ~n/3.
    """
    if graph.num_edges <= graph.num_vertices:
        gaps = []
        for u in range(graph.num_vertices):
            neigh = graph.neighbors(u).astype(np.int64)
            if neigh.size > 1:
                gaps.append(np.abs(np.diff(neigh)))
        if not gaps:
            return 0.0
        return float(np.concatenate(gaps).mean())
    targets = graph.targets.astype(np.int64)
    diffs = np.abs(np.diff(targets))
    # Mask out gaps that straddle two different adjacency lists.
    boundaries = graph.offsets[1:-1]
    mask = np.ones(targets.size - 1, dtype=bool)
    mask[boundaries[boundaries < targets.size] - 1] = False
    if not mask.any():
        return 0.0
    return float(diffs[mask].mean())
