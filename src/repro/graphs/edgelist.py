"""Edge-list graph representation.

An :class:`EdgeList` is the raw, order-preserving form of a graph: two
parallel arrays of source and destination vertex ids (``int32``, matching
the paper's 32-bit vertex identifiers) plus an optional parallel weight
array for the generalized-SpMV extension (paper Section IX).

Edge lists appear in three roles in this library:

1. as the input format to the CSR builder (:mod:`repro.graphs.builder`);
2. as the *block* storage format for 1-D cache blocking — the paper's CB
   implementation stores each destination-range block as an edge list
   rather than CSR when the graph is sparse (Section III / V-A);
3. as the unit of exchange for generators and relabelling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative

__all__ = ["EdgeList"]

VERTEX_DTYPE = np.int32


@dataclass(frozen=True)
class EdgeList:
    """Immutable list of directed edges ``src[i] -> dst[i]``.

    Attributes
    ----------
    num_vertices:
        Number of vertices ``n``; all ids must lie in ``[0, n)``.
    src, dst:
        Parallel ``int32`` arrays of endpoints.
    weights:
        Optional parallel ``float32`` array (generalized SpMV only);
        ``None`` for the unweighted graphs used by PageRank.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        check_nonnegative("num_vertices", self.num_vertices)
        src = np.ascontiguousarray(self.src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=VERTEX_DTYPE)
        if src.ndim != 1 or dst.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have the same length, got {src.shape} vs {dst.shape}"
            )
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=np.float32)
            if weights.shape != src.shape:
                raise ValueError("weights must parallel src/dst")
            object.__setattr__(self, "weights", weights)
        if src.size:
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"vertex ids must be in [0, {self.num_vertices}), "
                    f"found range [{lo}, {hi}]"
                )

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        """Whether a weight array is attached."""
        return self.weights is not None

    def reversed(self) -> "EdgeList":
        """Edge list with every edge direction flipped (``dst -> src``)."""
        return EdgeList(self.num_vertices, self.dst, self.src, self.weights)

    def symmetrized(self) -> "EdgeList":
        """Edge list containing both directions of every edge.

        Mirrors how the paper loads undirected inputs: a symmetric graph's
        *directed* degree is twice its undirected degree (Section VI).
        Weights are duplicated onto the reverse edges.
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        weights = (
            None if self.weights is None else np.concatenate([self.weights, self.weights])
        )
        return EdgeList(self.num_vertices, src, dst, weights)

    def permuted(self, perm: np.ndarray) -> "EdgeList":
        """Apply a vertex relabelling: vertex ``v`` becomes ``perm[v]``.

        The edge *order* is preserved — only endpoint labels change — so
        layout experiments isolate the effect of labelling from traversal
        order.
        """
        perm = np.asarray(perm)
        if perm.shape != (self.num_vertices,):
            raise ValueError(
                f"perm must have shape ({self.num_vertices},), got {perm.shape}"
            )
        return EdgeList(
            self.num_vertices,
            perm[self.src].astype(VERTEX_DTYPE),
            perm[self.dst].astype(VERTEX_DTYPE),
            self.weights,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = ", weighted" if self.is_weighted else ""
        return f"EdgeList(n={self.num_vertices}, m={self.num_edges}{w})"
