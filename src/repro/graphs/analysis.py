"""Graph characterization: the properties that decide the right strategy.

The paper closes with practical advice (Section VI-C): the choice between
pull, CB and DPB depends on topological parameters — number of vertices
relative to the cache, degree — that "are easy to access", plus the
layout's locality, which "is not easy to measure quickly" but can be
estimated.  :func:`describe` gathers exactly those decision inputs for a
graph, and :func:`estimate_gather_hit_rate` provides the quick locality
estimate by sampling the gather stream instead of simulating all of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.relabel import average_neighbor_distance, bandwidth_profile
from repro.memsim.cache import FullyAssociativeLRU, simulate
from repro.memsim.trace import irregular_chunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.rng import as_generator

__all__ = ["GraphProfile", "degree_statistics", "estimate_gather_hit_rate", "describe"]


@dataclass(frozen=True)
class GraphProfile:
    """Everything :func:`describe` learns about a graph.

    The fields mirror the decision procedure of Section VI-C: size and
    degree pick between the blocking schemes; the locality estimate
    decides whether blocking is warranted at all.
    """

    num_vertices: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    degree_skew: float  #: max/mean out-degree — 1-ish for urand, huge for kron
    vertex_to_cache_ratio: float  #: the paper's n/c
    mean_label_distance: float
    neighbor_gap: float
    estimated_gather_hit_rate: float
    recommended_method: str

    def is_low_locality(self) -> bool:
        """Whether the gather stream would mostly miss (blocking pays)."""
        return self.estimated_gather_hit_rate < 0.5


def degree_statistics(graph: CSRGraph) -> dict[str, float]:
    """Out-degree summary: mean, max, skew, fraction of zero-degree vertices."""
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    if degrees.size == 0:
        return {"mean": 0.0, "max": 0.0, "skew": 1.0, "zero_fraction": 0.0}
    mean = float(degrees.mean())
    return {
        "mean": mean,
        "max": float(degrees.max()),
        "skew": float(degrees.max() / mean) if mean else 1.0,
        "zero_fraction": float(np.mean(degrees == 0)),
    }


def estimate_gather_hit_rate(
    graph: CSRGraph,
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    sample_edges: int = 100_000,
    seed: int = 0,
) -> float:
    """Estimate the pull gather stream's cache hit rate by sampling.

    Simulating the whole gather stream is exact but linear in edges; for a
    quick runtime decision, simulate a contiguous window of the stream
    (cache warm-up included in the window, so the estimate is slightly
    pessimistic for tiny graphs).  Sampling a *contiguous* window rather
    than random edges preserves the spatial-locality structure the
    estimate exists to detect.
    """
    transpose = graph.transposed()
    targets = transpose.targets
    if targets.size == 0:
        return 1.0
    if targets.size <= sample_edges:
        window = targets
    else:
        rng = as_generator(seed)
        start = int(rng.integers(0, targets.size - sample_edges))
        window = targets[start : start + sample_edges]
    lines = window.astype(np.int64) // machine.words_per_line
    counters = simulate(
        [irregular_chunk(lines)], FullyAssociativeLRU(machine.llc)
    )
    accesses = int(window.size)
    hits = accesses - counters.total_reads
    return hits / accesses


def describe(
    graph: CSRGraph, machine: MachineSpec = SIMULATED_MACHINE, *, seed: int = 0
) -> GraphProfile:
    """Characterize a graph for strategy selection.

    Combines the cheap topological parameters with the sampled locality
    estimate and reports the method the full decision procedure picks:
    the paper's size/degree heuristic, overridden to the pull baseline
    when the layout is measurably high-locality (the web case).
    """
    from repro.kernels.pagerank import select_method  # avoid import cycle

    stats = degree_statistics(graph)
    hit_rate = estimate_gather_hit_rate(graph, machine, seed=seed)
    method = select_method(graph, machine)
    # Layout override: if the gathers mostly hit anyway, blocking only
    # adds bin traffic (the paper's web graph).
    if method != "baseline" and hit_rate > 0.6:
        method = "baseline"
    profile = bandwidth_profile(graph)
    return GraphProfile(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_out_degree=int(stats["max"]),
        degree_skew=stats["skew"],
        vertex_to_cache_ratio=graph.num_vertices / machine.cache_words,
        mean_label_distance=profile["mean_distance"],
        neighbor_gap=average_neighbor_distance(graph),
        estimated_gather_hit_rate=hit_rate,
        recommended_method=method,
    )
