"""Compressed-sparse-row (CSR) graph representation.

This is the in-memory format every kernel consumes, matching the GAP
Benchmark Suite layout the paper builds on: an *offsets* array of
``num_vertices + 1`` edge positions and a *targets* array of neighbor ids
stored consecutively per vertex.  Offsets are 64-bit (the paper counts each
CSR index pointer as two 32-bit words for exactly this reason, Section V)
and targets are 32-bit.

A :class:`CSRGraph` stores the *outgoing* adjacency.  Pull-direction kernels
need incoming adjacency, obtained via :meth:`CSRGraph.transposed` (cached,
since the paper notes pull "requires the transpose graph if the graph is
directed", Section II).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.edgelist import VERTEX_DTYPE, EdgeList

__all__ = ["CSRGraph"]

OFFSET_DTYPE = np.int64


class CSRGraph:
    """Directed graph in CSR form (out-adjacency).

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``n + 1``; neighbors of vertex ``u`` are
        ``targets[offsets[u]:offsets[u+1]]``.
    targets:
        ``int32`` array of neighbor ids, length ``m``.
    weights:
        Optional ``float32`` array parallel to ``targets`` (generalized
        SpMV only).
    symmetric:
        Declares the graph symmetric (every edge present in both
        directions); enables the transpose to alias the graph itself.
    """

    __slots__ = ("offsets", "targets", "weights", "symmetric", "_transpose")

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
        symmetric: bool = False,
    ) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        targets = np.ascontiguousarray(targets, dtype=VERTEX_DTYPE)
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a 1-D array of length >= 1")
        if offsets[0] != 0:
            raise ValueError(f"offsets[0] must be 0, got {offsets[0]}")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] != targets.size:
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) must equal len(targets) ({targets.size})"
            )
        n = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= n):
            raise ValueError(f"target ids must be in [0, {n})")
        self.offsets = offsets
        self.targets = targets
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float32)
            if weights.shape != targets.shape:
                raise ValueError("weights must parallel targets")
        self.weights = weights
        self.symmetric = bool(symmetric)
        self._transpose: "CSRGraph | None" = self if symmetric else None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of *directed* edges ``m`` (each symmetric edge counts twice)."""
        return int(self.targets.size)

    @property
    def average_degree(self) -> float:
        """Average directed degree ``k = m / n`` — the paper's sparsity metric."""
        return self.num_edges / max(self.num_vertices, 1)

    @property
    def is_weighted(self) -> bool:
        """Whether an edge-weight array is attached."""
        return self.weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array of length ``n``."""
        return np.diff(self.offsets)

    def neighbors(self, u: int) -> np.ndarray:
        """View of the out-neighbors of vertex ``u``."""
        return self.targets[self.offsets[u] : self.offsets[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        """View of the weights of ``u``'s out-edges (weighted graphs only)."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.offsets[u] : self.offsets[u + 1]]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def edge_sources(self) -> np.ndarray:
        """Source id of every edge, expanded from offsets (``int32``, length m)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degrees()
        )

    def to_edge_list(self) -> EdgeList:
        """Expand back to an :class:`EdgeList` (CSR traversal order)."""
        return EdgeList(self.num_vertices, self.edge_sources(), self.targets, self.weights)

    def transposed(self) -> "CSRGraph":
        """The transpose graph (in-adjacency), computed once and cached.

        For a graph declared ``symmetric`` this is the graph itself — the
        same aliasing the GAP benchmark uses, which is why the paper's
        symmetric inputs need no separate transpose storage.
        """
        if self._transpose is None:
            self._transpose = _transpose_csr(self)
            self._transpose._transpose = self
        return self._transpose

    def permuted(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices by ``perm`` and rebuild CSR in the new id order."""
        from repro.graphs.builder import build_csr  # local import: avoid cycle

        return build_csr(
            self.to_edge_list().permuted(perm),
            symmetric=self.symmetric,
            dedup=False,
            sort_neighbors=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.symmetric:
            flags.append("symmetric")
        if self.is_weighted:
            flags.append("weighted")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"k={self.average_degree:.1f}){suffix}"
        )


def _transpose_csr(graph: CSRGraph) -> CSRGraph:
    """Build the transpose with a counting sort over destinations (O(n + m))."""
    n = graph.num_vertices
    counts = np.bincount(graph.targets, minlength=n)
    offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    order = np.argsort(graph.targets, kind="stable")
    targets = graph.edge_sources()[order]
    weights = None if graph.weights is None else graph.weights[order]
    return CSRGraph(offsets, targets, weights=weights, symmetric=False)
