"""1-D graph partitioning for cache blocking.

Cache blocking (paper Section III) partitions the *graph* so that the
vertex-value slice touched by each block fits in cache.  For push-direction
PageRank the blocks partition the **destination** range: block ``i`` holds
every edge whose destination lies in ``[i*width, (i+1)*width)``, and within
a block edges are kept sorted by source so the contribution reads scan
sequentially (this is what makes the model's ``(r+1)n/b`` vertex traffic
achievable).

Two block storage formats are provided, matching the paper's discussion:

* :class:`EdgeListBlock` — ``(src, dst)`` pairs, 2 words per edge.  Best for
  sparse graphs (``k < 2r``), and what the paper's CB implementation uses.
* :class:`CSRBlock` — a per-block CSR over sources, ``k + 2r`` words of
  index traffic across all blocks.  Best for dense graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import OFFSET_DTYPE, CSRGraph
from repro.utils.validation import check_positive, check_power_of_two

__all__ = [
    "EdgeListBlock",
    "CSRBlock",
    "Partition1D",
    "partition_by_destination",
    "num_blocks_for_width",
    "choose_block_width",
]


@dataclass(frozen=True)
class EdgeListBlock:
    """One destination-range block stored as parallel (src, dst) arrays."""

    dst_start: int
    dst_stop: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


@dataclass(frozen=True)
class CSRBlock:
    """One destination-range block stored as CSR over the *sources*.

    ``offsets`` spans the full vertex range (so the index is re-read per
    block, the ``2r n / b`` index-traffic term of the paper's CB-CSR
    model); ``targets`` holds destinations restricted to the block range.
    """

    dst_start: int
    dst_stop: int
    offsets: np.ndarray
    targets: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.targets.size)


@dataclass(frozen=True)
class Partition1D:
    """A complete 1-D destination partition of a graph."""

    num_vertices: int
    block_width: int
    blocks: tuple

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_edges(self) -> int:
        return sum(block.num_edges for block in self.blocks)


def num_blocks_for_width(num_vertices: int, block_width: int) -> int:
    """Number of blocks ``r = ceil(n / width)``."""
    check_positive("num_vertices", num_vertices)
    check_positive("block_width", block_width)
    return -(-num_vertices // block_width)


def choose_block_width(
    num_vertices: int, cache_words: int, *, target_fraction: float = 0.5
) -> int:
    """Pick a power-of-two block width whose sums slice fits in cache.

    The paper tunes block width so "the corresponding vertex value array
    segments are 512 KB" on a 25 MB LLC — about half the per-socket LLC
    share per thread.  We expose the same rule: the widest power of two
    whose 1-word-per-vertex slice is at most ``target_fraction`` of the
    cache, and never wider than the graph itself requires.
    """
    check_positive("cache_words", cache_words)
    check_positive("target_fraction", target_fraction)
    budget = max(1, int(cache_words * target_fraction))
    width = 1
    while width * 2 <= budget:
        width *= 2
    return width


def partition_by_destination(
    graph: CSRGraph, block_width: int, *, storage: str = "edgelist"
) -> Partition1D:
    """Partition ``graph`` into destination-range blocks of ``block_width``.

    Edges within each block stay sorted by source (stable sort on
    destination-block id over CSR order), preserving the sequential
    contribution-scan property.  ``storage`` selects
    ``"edgelist"`` (:class:`EdgeListBlock`) or ``"csr"`` (:class:`CSRBlock`).
    """
    check_power_of_two("block_width", block_width)
    if storage not in ("edgelist", "csr"):
        raise ValueError(f"storage must be 'edgelist' or 'csr', got {storage!r}")
    n = graph.num_vertices
    num_blocks = num_blocks_for_width(n, block_width)
    shift = int(block_width).bit_length() - 1
    src = graph.edge_sources()
    dst = graph.targets
    block_ids = dst.astype(np.int64) >> shift
    order = np.argsort(block_ids, kind="stable")
    sorted_src = src[order]
    sorted_dst = dst[order]
    counts = np.bincount(block_ids, minlength=num_blocks)
    bounds = np.zeros(num_blocks + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])

    blocks: list = []
    for i in range(num_blocks):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        dst_start = i * block_width
        dst_stop = min((i + 1) * block_width, n)
        block_src = sorted_src[lo:hi]
        block_dst = sorted_dst[lo:hi]
        if storage == "edgelist":
            blocks.append(EdgeListBlock(dst_start, dst_stop, block_src, block_dst))
        else:
            offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
            np.cumsum(np.bincount(block_src, minlength=n), out=offsets[1:])
            blocks.append(CSRBlock(dst_start, dst_stop, offsets, block_dst))
    return Partition1D(n, block_width, tuple(blocks))
