"""Edge updates for the serve tier: apply, invalidate exactly, re-seed.

Three pieces, matching the three costs of an evolving served graph:

:func:`apply_edge_updates`
    Deterministically rebuild the CSR after a batch of edge
    additions/removals (lexicographic edge order, multiplicity
    preserved), growing the vertex range when an update names a new id.

:func:`dirty_ancestors`
    The *exact* structural invalidation frontier for cached personalized
    results.  A personalized-PageRank trajectory from seed set ``S``
    places teleport mass only on ``S``, so its scores depend on exactly
    the part of the graph forward-reachable from ``S``.  A cached entry
    is therefore bit-identical on the new graph iff no seed can reach a
    changed vertex in the old *or* new graph — i.e. iff
    ``S ∩ dirty_ancestors = ∅``, where ``dirty_ancestors`` is the
    reverse reachability of the changed edge sources on both graphs.
    Entries passing this test are *carried forward* (re-keyed to the new
    graph fingerprint) without recomputation; the rest are dropped.

:func:`update_residual`
    Numeric warm start for the maintained *global* (uniform-teleport)
    scores: one power step on the new graph from the old scores yields
    ``(refreshed, pending)`` such that
    :func:`repro.kernels.delta.delta_repropagate` converges to the new
    fixed point from any old state — the seeding identity behind
    ``pagerank_delta``.  The first step is O(m); every later round is
    confined to the shrinking dirty frontier.

The exactness split matters: carry-forward uses the *structural* rule
(reachability — safe for bit-identity claims), while delta maintenance
uses the *numeric* frontier (cheap, tolerance-bounded).  Never swap
them; see ``docs/serving.md``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.builder import build_csr
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import VERTEX_DTYPE, EdgeList
from repro.kernels.base import DAMPING

__all__ = [
    "EdgeUpdate",
    "UpdateReport",
    "apply_edge_updates",
    "dirty_ancestors",
    "update_residual",
]


@dataclass(frozen=True)
class EdgeUpdate:
    """One directed edge mutation: add ``src -> dst`` or remove it."""

    src: int
    dst: int
    remove: bool = False

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"edge endpoints must be >= 0, got {self}")


@dataclass(frozen=True)
class UpdateReport:
    """What a batch of edge updates actually did to the graph."""

    added: int
    removed: int
    noops: int
    old_num_vertices: int
    new_num_vertices: int
    #: Sources of every edge that was added or removed — the set whose
    #: reverse reachability defines the invalidation frontier (a change
    #: to edge (u, v) alters u's out-degree and hence every contribution
    #: u sends, so the *source* is the perturbed vertex).
    changed_sources: tuple[int, ...]

    @property
    def grew(self) -> bool:
        return self.new_num_vertices != self.old_num_vertices


def apply_edge_updates(
    graph: CSRGraph, updates: Sequence[EdgeUpdate]
) -> tuple[CSRGraph, UpdateReport]:
    """Apply ``updates`` in order and rebuild the CSR deterministically.

    Semantics per update: an addition inserts one copy of ``(src, dst)``
    unless the edge is already present (then it is a no-op); a removal
    deletes *all* copies (no-op if absent).  Updates naming a vertex id
    ``>= num_vertices`` grow the vertex range to ``max id + 1``.  The
    result is rebuilt in lexicographic ``(src, dst)`` order with
    multiplicity preserved, so equal edge multisets always produce
    byte-identical CSR arrays (and hence equal graph fingerprints).

    Weighted graphs are rejected — serve-tier maintenance is defined for
    the paper's unweighted PageRank workload.
    """
    if graph.is_weighted:
        raise ValueError("edge updates are not supported on weighted graphs")
    multiplicity = Counter(
        zip(graph.edge_sources().tolist(), graph.targets.tolist())
    )
    num_vertices = graph.num_vertices
    added = removed = noops = 0
    changed: set[int] = set()
    for update in updates:
        num_vertices = max(num_vertices, update.src + 1, update.dst + 1)
        key = (update.src, update.dst)
        if update.remove:
            count = multiplicity.pop(key, 0)
            if count:
                removed += count
                changed.add(update.src)
            else:
                noops += 1
        else:
            if multiplicity[key]:
                noops += 1
            else:
                multiplicity[key] = 1
                added += 1
                changed.add(update.src)
    pairs = sorted(
        (src, dst)
        for (src, dst), count in multiplicity.items()
        for _ in range(count)
    )
    src = np.fromiter((p[0] for p in pairs), dtype=VERTEX_DTYPE, count=len(pairs))
    dst = np.fromiter((p[1] for p in pairs), dtype=VERTEX_DTYPE, count=len(pairs))
    new_graph = build_csr(
        EdgeList(num_vertices, src, dst),
        dedup=False,
        drop_self_loops=False,
        sort_neighbors=True,
    )
    report = UpdateReport(
        added=added,
        removed=removed,
        noops=noops,
        old_num_vertices=graph.num_vertices,
        new_num_vertices=num_vertices,
        changed_sources=tuple(sorted(changed)),
    )
    return new_graph, report


def _reverse_reachable(graph: CSRGraph, mask: np.ndarray) -> np.ndarray:
    """Vertices that can reach any masked vertex (BFS on the transpose)."""
    transpose = graph.transposed()
    visited = mask.copy()
    frontier = np.flatnonzero(visited)
    while frontier.size:
        starts = transpose.offsets[frontier]
        ends = transpose.offsets[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if not total:
            break
        # Gather all frontier in-neighbors in one vectorized pass:
        # positions = start_of_each_run + offset_within_run.
        run_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(run_starts, counts)
            + np.repeat(starts, counts)
        )
        neighbors = transpose.targets[positions]
        fresh = neighbors[~visited[neighbors]]
        if not fresh.size:
            break
        visited[fresh] = True
        frontier = np.unique(fresh)
    return visited


def dirty_ancestors(
    old: CSRGraph, new: CSRGraph, changed_sources: Sequence[int]
) -> np.ndarray:
    """Boolean mask of vertices whose personalized scores *may* change.

    ``True`` at ``v`` iff ``v`` can reach a changed edge source in the
    old or the new graph.  A cached entry survives a graph update
    bit-identically iff none of its seeds are in this mask (module doc
    has the argument).  Both graphs must have the same vertex count —
    when an update grows the graph, the caller invalidates everything
    instead (tie-order over newborn zero-score vertices is not provably
    preserved).
    """
    if old.num_vertices != new.num_vertices:
        raise ValueError(
            "dirty_ancestors requires equal vertex counts "
            f"({old.num_vertices} != {new.num_vertices}); "
            "a grown graph invalidates all entries"
        )
    n = old.num_vertices
    mask = np.zeros(n, dtype=bool)
    sources = np.asarray(sorted(set(int(s) for s in changed_sources)), dtype=np.int64)
    if not sources.size:
        return mask
    if sources.min() < 0 or sources.max() >= n:
        raise ValueError(f"changed sources must be in [0, {n})")
    mask[sources] = True
    return _reverse_reachable(old, mask) | _reverse_reachable(new, mask)


def update_residual(
    graph: CSRGraph, scores: np.ndarray, *, damping: float = DAMPING
) -> tuple[np.ndarray, np.ndarray]:
    """Seed delta maintenance of global scores after a graph change.

    One full power step on the (new) ``graph`` from the old ``scores``
    (zero-padded if the graph grew) returns ``(refreshed, pending)``
    ready for :func:`repro.kernels.delta.delta_repropagate`: ``pending``
    is applied to ``refreshed`` but not yet propagated, and the delta
    rounds converge to the new graph's exact fixed point from *any*
    starting scores — the closer the start, the fewer the rounds.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_vertices
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size > n:
        raise ValueError(
            f"scores must be a 1-D array of length <= {n}, got shape {scores.shape}"
        )
    if scores.size < n:
        scores = np.concatenate([scores, np.zeros(n - scores.size)])
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    contributions = np.divide(
        scores, degrees, out=np.zeros_like(scores), where=degrees > 0
    )
    sums = np.bincount(
        graph.targets, weights=contributions[graph.edge_sources()], minlength=n
    )
    refreshed = (1.0 - damping) / n + damping * sums
    return refreshed, refreshed - scores
