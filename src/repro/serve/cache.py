"""Sharded content-addressed cache of served personalized-PageRank results.

Keys are :func:`serve_fingerprint` digests over ``(graph fingerprint,
canonical seed set, solver params)`` — the same
:func:`repro.utils.fingerprint.stable_digest` addressing the measurement
cache and the shm graph plane use, so a served result is identified by
*content*, never by request order or process identity.  Two consequences
do the heavy lifting:

* a repeated query (same graph, same seeds, same params) is a pure disk
  hit — the kernel never runs;
* after a graph update the graph fingerprint changes, so every stale
  entry misses *by construction*; the server then either carries forward
  entries whose seeds provably cannot observe the change
  (:func:`repro.serve.updates.dirty_ancestors`) or drops them.

Storage reuses the :class:`repro.harness.cache.MeasurementCache` on-disk
layout (``objects/<fp[:2]>/<fp>.json``, atomic writes,
corruption-tolerant reads) — one cache directory per shard, sharded by a
prefix of the fingerprint so concurrent servers spread directory churn.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.harness.cache import MeasurementCache
from repro.utils.fingerprint import stable_digest

__all__ = ["canonical_seeds", "serve_fingerprint", "ServeCache"]


def canonical_seeds(seeds: Iterable[int], num_vertices: int | None = None) -> tuple[int, ...]:
    """Normalize a seed set to its canonical form: sorted, distinct ints.

    Every layer (fingerprinting, batch dedup, the kernel's
    :func:`repro.kernels.personalized.restart_teleport`) keys on this
    form, so ``{3, 1}``, ``[1, 3]`` and ``(3, 1)`` are the same query.
    """
    out = []
    for seed in seeds:
        index = int(seed)
        if index != seed:
            raise ValueError(f"seed ids must be integers, got {seed!r}")
        if index < 0:
            raise ValueError(f"seed ids must be >= 0, got {index}")
        if num_vertices is not None and index >= num_vertices:
            raise ValueError(
                f"seed {index} out of range for {num_vertices} vertices"
            )
        out.append(index)
    if not out:
        raise ValueError("seed set must be non-empty")
    canonical = tuple(sorted(set(out)))
    if len(canonical) != len(out):
        raise ValueError("seeds must be distinct")
    return canonical


def serve_fingerprint(
    graph_fingerprint: str, seeds: Sequence[int], params: dict[str, Any]
) -> str:
    """Content key of one personalized-PageRank query.

    ``params`` is the solver configuration that affects the *scores*
    (method, damping, tolerance, max_iterations — not the kernel tier,
    which is bit-identical by contract and must not fragment the cache).
    """
    return stable_digest(
        ("ppr", graph_fingerprint, tuple(canonical_seeds(seeds)), dict(params))
    )


class ServeCache:
    """Sharded on-disk result cache for the serve tier.

    Entries map a serve fingerprint to ``{"seeds": [...], "scores":
    float32 array}``.  An in-memory ``fingerprint -> seeds`` index over
    everything this process stored supports the carry-forward scan after
    a graph update (enumerating entries is otherwise an on-disk walk).
    """

    def __init__(self, directory: str, *, shards: int = 4) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.directory = directory
        self.shards = shards
        self._shards = [
            MeasurementCache(os.path.join(directory, f"shard-{i:02d}"))
            for i in range(shards)
        ]
        self._seeds_by_fp: dict[str, tuple[int, ...]] = {}
        self.hits = 0
        self.misses = 0

    def _shard(self, fingerprint: str) -> MeasurementCache:
        return self._shards[int(fingerprint[:8], 16) % self.shards]

    def get(self, fingerprint: str) -> np.ndarray | None:
        """Cached scores for ``fingerprint``, or ``None`` on a miss."""
        entry = self._shard(fingerprint).get(fingerprint)
        if entry is None or not isinstance(entry.result, dict):
            self.misses += 1
            return None
        scores = entry.result.get("scores")
        if not isinstance(scores, np.ndarray):
            self.misses += 1
            return None
        self.hits += 1
        self._seeds_by_fp.setdefault(
            fingerprint, tuple(int(s) for s in entry.result.get("seeds", ()))
        )
        return scores

    def put(
        self,
        fingerprint: str,
        seeds: Sequence[int],
        scores: np.ndarray,
        seconds: float = 0.0,
    ) -> None:
        seeds = canonical_seeds(seeds)
        self._shard(fingerprint).put(
            fingerprint,
            {"seeds": list(seeds), "scores": np.asarray(scores, dtype=np.float32)},
            seconds,
        )
        self._seeds_by_fp[fingerprint] = seeds

    def has(self, fingerprint: str) -> bool:
        return self._shard(fingerprint).has(fingerprint)

    def drop(self, fingerprint: str) -> bool:
        """Invalidate one entry; returns whether it existed on disk."""
        self._seeds_by_fp.pop(fingerprint, None)
        return self._shard(fingerprint).drop(fingerprint)

    def entries(self) -> dict[str, tuple[int, ...]]:
        """Snapshot of the in-memory ``fingerprint -> seeds`` index."""
        return dict(self._seeds_by_fp)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)
