"""Deterministic load generation for the serve tier.

Drives a :class:`repro.serve.server.PPRServer` with a seeded query
stream and reports the latency/throughput distribution.  Everything
about the *workload* is deterministic — query seed sets, arrival
concurrency, repeat fraction — so the warm-cache hit rate is a fixed
function of the seed and is safe to gate in the bench sentinel, while
the latencies themselves are host timing and stay ungated
(``wall_seconds/*`` patterns).  Behind ``repro-pb loadgen`` and
``benchmarks/bench_serve_latency.py``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, asdict
from typing import Any, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.parallel.shm import GraphRef
from repro.serve.cache import ServeCache
from repro.serve.server import PPRServer, ServeConfig

__all__ = ["generate_queries", "LoadReport", "run_load"]


def generate_queries(
    num_queries: int,
    num_vertices: int,
    *,
    seed: int = 42,
    max_seeds: int = 3,
    repeat_fraction: float = 0.5,
) -> list[tuple[int, ...]]:
    """A seeded stream of seed-set queries with a known repeat rate.

    Roughly ``repeat_fraction`` of the queries re-issue an earlier seed
    set (drawn uniformly from the history), which is what makes the
    warm-cache hit rate of a replayed stream deterministic.  Seed sets
    are 1..``max_seeds`` distinct vertices.
    """
    if num_queries < 0:
        raise ValueError(f"num_queries must be >= 0, got {num_queries}")
    if num_vertices < 1:
        raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError(f"repeat_fraction must be in [0, 1], got {repeat_fraction}")
    max_seeds = max(1, min(max_seeds, num_vertices))
    rng = np.random.default_rng(seed)
    queries: list[tuple[int, ...]] = []
    for _ in range(num_queries):
        if queries and rng.random() < repeat_fraction:
            queries.append(queries[int(rng.integers(len(queries)))])
        else:
            size = int(rng.integers(1, max_seeds + 1))
            picks = rng.choice(num_vertices, size=size, replace=False)
            queries.append(tuple(sorted(int(v) for v in picks)))
    return queries


@dataclass(frozen=True)
class LoadReport:
    """Latency/throughput outcome of one load run."""

    num_queries: int
    wall_seconds: float
    queries_per_sec: float
    p50_seconds: float
    p99_seconds: float
    max_seconds: float
    cache_hit_rate: float
    mean_occupancy: float
    batches: int
    coalesced: int
    stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def run_load(
    graph: CSRGraph | GraphRef,
    queries: Sequence[Sequence[int]],
    *,
    config: ServeConfig | None = None,
    cache: ServeCache | None = None,
    concurrency: int = 8,
) -> LoadReport:
    """Replay ``queries`` against a fresh server; report the distribution.

    ``concurrency`` bounds in-flight requests (a semaphore models closed-
    loop clients); higher concurrency fills batches closer to
    ``max_batch``.  Queries are issued in order; per-query latency spans
    enqueue to answered.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    config = config or ServeConfig()

    async def _drive() -> tuple[list[float], float, Any]:
        latencies = [0.0] * len(queries)
        gate = asyncio.Semaphore(concurrency)
        async with PPRServer(graph, config, cache=cache) as server:
            loop = asyncio.get_running_loop()

            async def one(index: int, seeds: Sequence[int]) -> None:
                async with gate:
                    started = loop.time()
                    await server.query(seeds)
                    latencies[index] = loop.time() - started

            started = time.perf_counter()
            await asyncio.gather(
                *(one(i, seeds) for i, seeds in enumerate(queries))
            )
            wall = time.perf_counter() - started
            stats = server.stats()
        return latencies, wall, stats

    latencies, wall, stats = asyncio.run(_drive())
    lat = np.asarray(latencies, dtype=np.float64)
    return LoadReport(
        num_queries=len(queries),
        wall_seconds=wall,
        queries_per_sec=len(queries) / wall if wall > 0 else 0.0,
        p50_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
        p99_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
        max_seconds=float(lat.max()) if lat.size else 0.0,
        cache_hit_rate=stats.cache_hit_rate,
        mean_occupancy=stats.mean_occupancy,
        batches=stats.batches,
        coalesced=stats.coalesced,
        stats=stats.to_dict(),
    )
