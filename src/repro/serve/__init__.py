"""PageRank-as-a-service: the batched async query layer.

The paper's propagation-blocking insight is that irregular access is
cheapest when work is coalesced into locality-friendly batches.  This
package applies the same insight to *serving*: concurrent personalized-
PageRank queries are coalesced into single multi-source kernel runs
(:func:`repro.kernels.personalized.multi_personalized_pagerank`), results
are cached content-addressed on disk, and evolving graphs are maintained
incrementally through :mod:`repro.kernels.delta` dirty-frontier
re-propagation.  See ``docs/serving.md`` for the architecture.

Modules
-------
:mod:`repro.serve.batching`
    The coalescing policy (batch window + max batch size) as pure,
    property-testable functions, plus the live asyncio batch queue.
:mod:`repro.serve.cache`
    Sharded content-addressed result cache over the
    :class:`repro.harness.cache.MeasurementCache` on-disk layout, keyed
    by :func:`repro.utils.fingerprint.stable_digest` of
    (graph, seeds, solver params).
:mod:`repro.serve.updates`
    Edge-update application, the exact structural invalidation frontier
    (reverse reachability of changed vertices), and the numeric residual
    that seeds :func:`repro.kernels.delta.delta_repropagate`.
:mod:`repro.serve.server`
    The asyncio :class:`PPRServer`: request coalescing, exactly-once
    answers under injected faults, cache maintenance, serve telemetry.
:mod:`repro.serve.loadgen`
    Deterministic workload generation and the latency/throughput report
    behind ``repro-pb loadgen`` and ``BENCH_serve_latency.json``.
"""

from repro.serve.batching import BatchPolicy, plan_batches
from repro.serve.cache import ServeCache, canonical_seeds, serve_fingerprint
from repro.serve.loadgen import LoadReport, generate_queries, run_load
from repro.serve.server import PPRServer, QueryResult, ServeConfig, ServeStats
from repro.serve.updates import (
    EdgeUpdate,
    UpdateReport,
    apply_edge_updates,
    dirty_ancestors,
    update_residual,
)

__all__ = [
    "BatchPolicy",
    "plan_batches",
    "ServeCache",
    "canonical_seeds",
    "serve_fingerprint",
    "PPRServer",
    "QueryResult",
    "ServeConfig",
    "ServeStats",
    "EdgeUpdate",
    "UpdateReport",
    "apply_edge_updates",
    "dirty_ancestors",
    "update_residual",
    "LoadReport",
    "generate_queries",
    "run_load",
]
