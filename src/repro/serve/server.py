"""The asyncio personalized-PageRank server.

:class:`PPRServer` answers top-k personalized-PageRank queries by
coalescing concurrent requests into batched multi-source kernel runs
(:func:`repro.kernels.personalized.multi_personalized_pagerank`), the
serving analogue of propagation blocking's bin pass: the graph-wide
preprocessing (bin layout, transpose, degree vector) is paid once per
batch instead of once per query.

Request lifecycle::

    query(seeds) ── cache hit ──────────────────────────► QueryResult
        │ miss
        ▼
    BatchQueue ──window/max_batch──► dispatcher ──► one multi-source run
                                                       │  (executor thread,
                                                       │   fault-injected,
                                                       │   retried)
    future.set_result ◄── cache.put ◄──────────────────┘

Guarantees:

* **Bit-identical to serial.**  Batched queries share the kernel's exact
  single-query iteration loop, so a coalesced answer equals the one-at-
  a-time answer bit for bit (``tests/serve/test_batch_equivalence.py``).
* **Exactly-once.**  Every accepted request owns one
  :class:`asyncio.Future`, resolved at a single point in the dispatcher.
  Injected crashes/timeouts/corruption (:mod:`repro.parallel.faults`)
  retry the *batch*; the plan's ``max_per_cell`` bound makes retries
  converge, and no code path can resolve a future twice or drop it
  (``tests/serve/test_chaos.py``).
* **Exact invalidation.**  :meth:`apply_updates` re-keys cached entries
  whose seeds provably cannot observe the change and drops the rest
  (:func:`repro.serve.updates.dirty_ancestors`); maintained global
  scores re-propagate only the update residual through
  :func:`repro.kernels.delta.delta_repropagate`.

The server accepts the graph by value (:class:`~repro.graphs.csr.CSRGraph`)
or by reference (:class:`repro.parallel.shm.GraphRef`), so a fleet of
server processes can serve score state zero-copy from one published shm
segment — the PR 8 data plane.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass, field, asdict
from typing import Any, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING
from repro.kernels.delta import delta_repropagate, pagerank_delta
from repro.kernels.personalized import multi_personalized_pagerank, restart_teleport
from repro.obs import events as _events
from repro.obs.spans import span
from repro.parallel.faults import (
    CORRUPT_RESULT,
    FaultInjected,
    FaultPlan,
    InjectedCrash,
    InjectedTimeout,
    is_corrupt,
)
from repro.parallel.shm import GraphRef, graph_fingerprint, resolve_graph
from repro.serve.batching import BatchPolicy, BatchQueue
from repro.serve.cache import ServeCache, canonical_seeds, serve_fingerprint
from repro.serve.updates import EdgeUpdate, UpdateReport, apply_edge_updates, dirty_ancestors, update_residual
from repro.utils.fingerprint import stable_digest

__all__ = ["ServeConfig", "ServeStats", "QueryResult", "PPRServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Solver and batching configuration of one server."""

    method: str = "dpb"
    tier: str = "numpy"
    damping: float = DAMPING
    tolerance: float = 1e-8
    max_iterations: int = 200
    top_k: int = 10
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    #: Deterministic fault schedule applied around batch kernel runs
    #: (``None`` = no injection; tests pass plans, production reads
    #: ``REPRO_FAULT_PLAN`` via :meth:`FaultPlan.from_env` themselves).
    fault_plan: FaultPlan | None = None
    #: Hard cap on per-batch retry attempts — a backstop far above any
    #: plan's ``max_per_cell`` guarantee; exceeding it fails the batch's
    #: requests with an exception (still exactly-once).
    max_batch_retries: int = 16

    def solver_params(self) -> dict[str, Any]:
        """The params that determine *scores* — the cache-key component.

        The kernel tier is deliberately excluded: tiers are bit-identical
        by contract, so including one would fragment the cache without
        changing any answer.
        """
        return {
            "method": self.method,
            "damping": self.damping,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
        }


@dataclass(frozen=True)
class QueryResult:
    """One answered query."""

    seeds: tuple[int, ...]
    fingerprint: str
    #: Top-k ``(vertex, score)`` pairs, ordered by (-score, vertex id) —
    #: a total order, so equal score vectors always serve equal rankings.
    top: tuple[tuple[int, float], ...]
    scores: np.ndarray
    from_cache: bool
    #: Occupancy of the batch that computed this answer (0 = cache hit).
    batch_size: int


@dataclass(frozen=True)
class ServeStats:
    """Counter snapshot (the ``serve`` section of run reports)."""

    requests: int
    batches: int
    coalesced: int
    mean_occupancy: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    faults_injected: int
    retries: int
    updates_applied: int
    entries_carried: int
    entries_invalidated: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def topk(scores: np.ndarray, k: int) -> tuple[tuple[int, float], ...]:
    """Deterministic top-k: descending score, ascending id on ties.

    A stable argsort over negated scores realizes exactly the
    ``(-score, vertex)`` total order, so two bit-identical score vectors
    always produce the same ranking — the property the differential and
    invalidation suites compare on.
    """
    order = np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")[:k]
    return tuple((int(v), float(scores[v])) for v in order)


@dataclass
class _Pending:
    """One enqueued request: its identity and its single-resolution slot."""

    fingerprint: str
    seeds: tuple[int, ...]
    future: asyncio.Future


class PPRServer:
    """Batched, cached, incrementally-maintained PPR serving (module doc).

    Use as an async context manager::

        async with PPRServer(graph, config, cache=cache) as server:
            result = await server.query([3, 17])
    """

    def __init__(
        self,
        graph: CSRGraph | GraphRef,
        config: ServeConfig | None = None,
        *,
        cache: ServeCache | None = None,
    ) -> None:
        self.graph = resolve_graph(graph)
        self.config = config or ServeConfig()
        self.cache = cache
        self.graph_fp = (
            graph.fingerprint
            if isinstance(graph, GraphRef)
            else graph_fingerprint(self.graph)
        )
        self._queue = BatchQueue(self.config.policy)
        self._dispatcher: asyncio.Task | None = None
        self._maintenance = asyncio.Lock()
        self._global_scores: np.ndarray | None = None
        self._counters = {
            "requests": 0,
            "batches": 0,
            "coalesced": 0,
            "occupancy_sum": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "faults_injected": 0,
            "retries": 0,
            "updates_applied": 0,
            "entries_carried": 0,
            "entries_invalidated": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "PPRServer":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def stop(self) -> None:
        """Drain pending batches, then stop the dispatcher."""
        self._queue.close()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    async def query(
        self, seeds: Sequence[int], *, top_k: int | None = None
    ) -> QueryResult:
        """Answer one personalized-PageRank query (await the result).

        Cache hits return immediately (one small-file disk read — no
        kernel run, no batching delay); misses enqueue for the next
        coalesced batch.
        """
        if self._dispatcher is None:
            raise RuntimeError("server is not started (use 'async with PPRServer')")
        k = self.config.top_k if top_k is None else top_k
        seed_tuple = canonical_seeds(seeds, self.graph.num_vertices)
        fingerprint = serve_fingerprint(
            self.graph_fp, seed_tuple, self.config.solver_params()
        )
        self._counters["requests"] += 1
        with span("serve.request"):
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                self._counters["cache_hits"] += 1
                _events.emit(
                    "serve_cache_hit", fingerprint=fingerprint, seeds=len(seed_tuple)
                )
                _events.emit(
                    "serve_request",
                    fingerprint=fingerprint,
                    seeds=len(seed_tuple),
                    cached=True,
                )
                return QueryResult(
                    seeds=seed_tuple,
                    fingerprint=fingerprint,
                    top=topk(cached, k),
                    scores=cached,
                    from_cache=True,
                    batch_size=0,
                )
            self._counters["cache_misses"] += 1
            _events.emit(
                "serve_request",
                fingerprint=fingerprint,
                seeds=len(seed_tuple),
                cached=False,
            )
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._queue.put(_Pending(fingerprint, seed_tuple, future))
            scores, batch_size = await future
        return QueryResult(
            seeds=seed_tuple,
            fingerprint=fingerprint,
            top=topk(scores, k),
            scores=scores,
            from_cache=False,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self._queue.next_batch()
            if not batch:
                return
            async with self._maintenance:
                try:
                    await self._run_batch(batch)
                except Exception as exc:  # resolve, never drop, on failure
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(exc)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        # Coalesce duplicate queries: one solve per distinct fingerprint.
        unique: dict[str, tuple[int, ...]] = {}
        for pending in batch:
            unique.setdefault(pending.fingerprint, pending.seeds)
        self._counters["coalesced"] += len(batch) - len(unique)

        # A concurrent request may have populated the cache after this
        # request enqueued; serve those without recomputing.
        scores_by_fp: dict[str, np.ndarray] = {}
        to_solve: list[tuple[str, tuple[int, ...]]] = []
        for fingerprint, seeds in unique.items():
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                self._counters["cache_hits"] += 1
                scores_by_fp[fingerprint] = cached
            else:
                to_solve.append((fingerprint, seeds))

        attempts = 0
        if to_solve:
            n = self.graph.num_vertices
            teleports = [restart_teleport(n, seeds) for _, seeds in to_solve]
            run = functools.partial(
                multi_personalized_pagerank,
                self.graph,
                teleports,
                method=self.config.method,
                damping=self.config.damping,
                tolerance=self.config.tolerance,
                max_iterations=self.config.max_iterations,
                tier=self.config.tier,
            )
            started = time.perf_counter()
            results = await self._run_with_faults(
                run, stable_digest(tuple(fp for fp, _ in to_solve))
            )
            seconds = time.perf_counter() - started
            attempts = results.pop("attempts")
            for (fingerprint, seeds), result in zip(to_solve, results["results"]):
                scores_by_fp[fingerprint] = result.scores
                if self.cache is not None:
                    self.cache.put(
                        fingerprint, seeds, result.scores, seconds / len(to_solve)
                    )

        for pending in batch:
            if not pending.future.done():
                pending.future.set_result(
                    (scores_by_fp[pending.fingerprint], len(batch))
                )
        self._counters["batches"] += 1
        self._counters["occupancy_sum"] += len(batch)
        _events.emit(
            "serve_batch",
            occupancy=len(batch),
            solved=len(to_solve),
            coalesced=len(batch) - len(unique),
            attempts=attempts,
        )

    async def _run_with_faults(self, run, batch_fingerprint: str) -> dict[str, Any]:
        """Run the batch kernel under the fault plan until a clean result.

        The plan's ``max_per_cell`` bound guarantees some attempt is
        fault-free, so the loop terminates; ``max_batch_retries`` is a
        backstop against misconfigured plans.  Either way every request
        gets resolved exactly once (here on success, in the dispatcher's
        exception path on exhaustion).
        """
        loop = asyncio.get_running_loop()
        plan = self.config.fault_plan
        for attempt in range(self.config.max_batch_retries + 1):
            fault = plan.decide(batch_fingerprint, attempt) if plan else None
            try:
                if fault == "crash":
                    raise InjectedCrash(f"injected crash (attempt {attempt})")
                if fault == "timeout":
                    raise InjectedTimeout(f"injected timeout (attempt {attempt})")
                with span("serve.batch_solve"):
                    results = await loop.run_in_executor(None, run)
                if fault == "corrupt":
                    results = CORRUPT_RESULT
                if is_corrupt(results):
                    raise InjectedCrash(
                        f"injected corrupt result (attempt {attempt})"
                    )
                return {"results": results, "attempts": attempt + 1}
            except FaultInjected:
                self._counters["faults_injected"] += 1
                self._counters["retries"] += 1
        raise RuntimeError(
            f"batch failed after {self.config.max_batch_retries + 1} attempts"
        )

    # ------------------------------------------------------------------
    # maintained global scores + incremental updates
    # ------------------------------------------------------------------
    def global_scores(self) -> np.ndarray:
        """Maintained uniform-teleport PageRank of the current graph.

        Computed once (delta-converged from the uniform start) and then
        maintained incrementally by :meth:`apply_updates` — never
        recomputed from scratch.
        """
        if self._global_scores is None:
            result = pagerank_delta(
                self.graph,
                damping=self.config.damping,
                tolerance=self.config.tolerance,
            )
            self._global_scores = result.scores
        return self._global_scores

    async def apply_updates(self, updates: Sequence[EdgeUpdate]) -> UpdateReport:
        """Apply an edge-update batch; invalidate exactly; maintain scores.

        Runs under the dispatcher's lock, so updates never interleave
        with an in-flight batch: queries enqueued before the update see
        the old graph's answers, queries after see the new graph's.
        """
        async with self._maintenance:
            old_graph, old_fp = self.graph, self.graph_fp
            new_graph, report = apply_edge_updates(old_graph, updates)
            new_fp = graph_fingerprint(new_graph)
            carried = invalidated = 0
            if self.cache is not None and new_fp != old_fp:
                if report.grew:
                    dirty = None  # grown graph: no entry is provably safe
                else:
                    dirty = dirty_ancestors(
                        old_graph, new_graph, report.changed_sources
                    )
                params = self.config.solver_params()
                for fingerprint, seeds in self.cache.entries().items():
                    if dirty is not None and not any(dirty[s] for s in seeds):
                        scores = self.cache.get(fingerprint)
                        if scores is not None:
                            self.cache.put(
                                serve_fingerprint(new_fp, seeds, params),
                                seeds,
                                scores,
                            )
                            carried += 1
                    else:
                        invalidated += 1
                    self.cache.drop(fingerprint)
            if self._global_scores is not None and new_fp != old_fp:
                refreshed, pending = update_residual(
                    new_graph, self._global_scores, damping=self.config.damping
                )
                delta = delta_repropagate(
                    new_graph,
                    refreshed,
                    pending,
                    damping=self.config.damping,
                    tolerance=self.config.tolerance,
                )
                self._global_scores = delta.scores
            self.graph, self.graph_fp = new_graph, new_fp
            self._counters["updates_applied"] += 1
            self._counters["entries_carried"] += carried
            self._counters["entries_invalidated"] += invalidated
            _events.emit(
                "serve_graph_updated",
                added=report.added,
                removed=report.removed,
                carried=carried,
                invalidated=invalidated,
                grew=report.grew,
            )
            return report

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> ServeStats:
        c = self._counters
        total_lookups = c["cache_hits"] + c["cache_misses"]
        return ServeStats(
            requests=c["requests"],
            batches=c["batches"],
            coalesced=c["coalesced"],
            mean_occupancy=(c["occupancy_sum"] / c["batches"]) if c["batches"] else 0.0,
            cache_hits=c["cache_hits"],
            cache_misses=c["cache_misses"],
            cache_hit_rate=(c["cache_hits"] / total_lookups) if total_lookups else 0.0,
            faults_injected=c["faults_injected"],
            retries=c["retries"],
            updates_applied=c["updates_applied"],
            entries_carried=c["entries_carried"],
            entries_invalidated=c["entries_invalidated"],
        )
