"""Request coalescing: the serve tier's batching policy.

A batch is the serving analogue of a propagation-blocking bin: requests
that arrive close together are answered by one multi-source kernel run,
amortizing the graph-wide preprocessing (bin layout, transpose) the same
way PB amortizes its binning pass.  The policy has two knobs:

``window_seconds``
    How long the first request of a batch may wait for company.  A batch
    *opens* when a request arrives with no batch pending and *closes*
    when the window expires.
``max_batch``
    Hard occupancy cap; a batch that fills up dispatches immediately,
    without waiting out its window.

:func:`plan_batches` is the policy's *reference semantics* — a pure
function from arrival times to batch assignments, with no clocks or
tasks — so properties (every request in exactly one batch, occupancy
bounds, window bounds, FIFO order) are testable without an event loop.
The live :class:`BatchQueue` implements the same semantics over asyncio
and is what :class:`repro.serve.server.PPRServer` dispatches from.
"""

from __future__ import annotations

import asyncio
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

__all__ = ["BatchPolicy", "plan_batches", "BatchQueue"]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: batch window plus maximum batch size."""

    window_seconds: float = 0.002
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ValueError(
                f"window_seconds must be >= 0, got {self.window_seconds}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


def plan_batches(
    arrivals: Sequence[float], policy: BatchPolicy
) -> list[list[int]]:
    """Partition request indices into batches under ``policy``.

    ``arrivals`` are non-decreasing arrival times (seconds, any origin).
    Returns batches of indices in arrival order.  Invariants (pinned by
    ``tests/serve/test_batching.py``):

    * every index appears in exactly one batch, batches preserve order;
    * no batch exceeds ``max_batch``;
    * within a batch, every arrival is within ``window_seconds`` of the
      batch's first arrival (the batch *opened* at its first request);
    * batches are maximal: the first request of batch ``k+1`` either
      arrived after batch ``k``'s window closed or found batch ``k``
      already full.
    """
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        raise ValueError("arrival times must be non-decreasing")
    batches: list[list[int]] = []
    current: list[int] = []
    opened = 0.0
    for index, ts in enumerate(arrivals):
        if current and (
            len(current) >= policy.max_batch
            or ts - opened > policy.window_seconds
        ):
            batches.append(current)
            current = []
        if not current:
            opened = ts
        current.append(index)
    if current:
        batches.append(current)
    return batches


class BatchQueue:
    """Asyncio implementation of the batching policy.

    Producers :meth:`put` items; one consumer awaits :meth:`next_batch`,
    which returns a non-empty list of items dispatched per the policy:
    the first item opens the window, the batch closes on window expiry
    or on reaching ``max_batch``, whichever comes first.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._items: list[Any] = []
        self._arrived = asyncio.Event()
        self._closed = False

    def put(self, item: Any) -> None:
        if self._closed:
            raise RuntimeError("BatchQueue is closed")
        self._items.append(item)
        self._arrived.set()

    def close(self) -> None:
        """No more puts; pending items still drain via next_batch."""
        self._closed = True
        self._arrived.set()

    def __len__(self) -> int:
        return len(self._items)

    async def next_batch(self) -> list[Any]:
        """The next batch, or ``[]`` once closed and drained."""
        while not self._items:
            if self._closed:
                return []
            self._arrived.clear()
            await self._arrived.wait()
        # The window opens at the first queued item.  Wait out the window
        # (in max_batch-aware slices) unless the batch fills first.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.policy.window_seconds
        while (
            len(self._items) < self.policy.max_batch
            and not self._closed
        ):
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._arrived.clear()
            try:
                await asyncio.wait_for(self._arrived.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                break
        batch = self._items[: self.policy.max_batch]
        del self._items[: len(batch)]
        return batch
