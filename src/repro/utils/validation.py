"""Argument-validation helpers with consistent error messages.

All public entry points of the library validate their scalar arguments with
these helpers so that misuse fails fast with an actionable message instead
of propagating NaNs or silently mis-sized arrays deep into a kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_power_of_two",
    "check_probability",
    "check_array_dtype",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two.

    The cache simulator and the bin-layout code rely on power-of-two sizes
    so that index computations reduce to shifts, mirroring the paper's
    implementation note (Section VII).
    """
    if not (isinstance(value, (int, np.integer)) and value > 0 and (value & (value - 1)) == 0):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def pow2_at_least(value: int) -> int:
    """Smallest power of two ``>= value`` (1 for values <= 1).

    Bin widths and block widths are clamped to powers of two (see
    :func:`check_power_of_two`); every kernel that sizes its bins against
    ``num_vertices`` rounds up through this helper.
    """
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_array_dtype(name: str, array: np.ndarray, dtype: np.dtype | type) -> None:
    """Raise ``TypeError`` unless ``array.dtype`` equals ``dtype``."""
    if np.asarray(array).dtype != np.dtype(dtype):
        raise TypeError(
            f"{name} must have dtype {np.dtype(dtype)}, got {np.asarray(array).dtype}"
        )
