"""Lightweight wall-clock timing for the executable kernels.

The simulated experiments use the analytic time model
(:mod:`repro.models.performance`); the *executable* NumPy kernels are also
timed for the wall-clock benchmark (``benchmarks/bench_wallclock_kernels``),
and this context manager is the shared stopwatch.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
