"""Stable content fingerprints for sweep cells and plain-data values.

Checkpoint/resume (:mod:`repro.harness.checkpoint`) and deterministic
fault injection (:mod:`repro.parallel.faults`) both need a cell identity
that is *stable across processes and interpreter runs*: Python's builtin
``hash`` is salted per process, ``id`` is meaningless after a restart,
and ``repr`` of numpy arrays truncates.  :func:`stable_digest` walks a
value recursively and feeds a canonical byte encoding into SHA-256, so
equal plain data always produces the same hex digest — on any machine,
in any process.

Supported values: ``None``, bools, ints, floats (by shortest-repr, the
same encoding JSON round-trips exactly), strings, bytes, tuples, lists,
sets/frozensets (order-canonicalized), dicts (key-order-canonicalized),
numpy scalars and arrays (dtype + shape + raw bytes), dataclasses (class
qualname + fields), and callables (module + qualname — identity by
*name*, so editing a function's body does not invalidate checkpoints;
renaming or moving it does).  Anything else falls back to ``repr``,
which keeps the digest total but only as stable as the repr.

A type may define ``__fingerprint_proxy__(self) -> Any`` to hash as a
*different* value: the walk feeds the proxy's return instead of the
object itself.  :class:`repro.parallel.shm.GraphRef` uses this to hash
as the CSR graph it references, which is what keeps cell fingerprints
(checkpoints, caches, fault plans) byte-identical whether a sweep ships
graphs by value or through the shared-memory data plane.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

__all__ = ["stable_digest", "cell_fingerprint"]


def _feed(h, obj: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into hash ``h``."""
    if obj is None:
        h.update(b"N;")
    elif obj is True:
        h.update(b"T;")
    elif obj is False:
        h.update(b"F;")
    elif isinstance(obj, int):
        h.update(b"i:" + str(obj).encode() + b";")
    elif isinstance(obj, float):
        h.update(b"f:" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"s:" + str(len(data)).encode() + b":" + data + b";")
    elif isinstance(obj, bytes):
        h.update(b"b:" + str(len(obj)).encode() + b":" + obj + b";")
    elif isinstance(obj, np.ndarray):
        h.update(b"a:" + str(obj.dtype).encode() + b":" + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
        h.update(b";")
    elif isinstance(obj, np.generic):
        _feed(h, obj.item())
    elif hasattr(type(obj), "__fingerprint_proxy__"):
        # Placed after the primitive branches (they can't carry the hook)
        # but before containers/dataclasses/callables, so a dataclass
        # handle like GraphRef hashes as its proxy, not its fields.
        _feed(h, obj.__fingerprint_proxy__())
    elif isinstance(obj, (tuple, list)):
        h.update(b"(" if isinstance(obj, tuple) else b"[")
        for item in obj:
            _feed(h, item)
        h.update(b")" if isinstance(obj, tuple) else b"]")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"{")
        for digest in sorted(stable_digest(item) for item in obj):
            h.update(digest.encode() + b",")
        h.update(b"}")
    elif isinstance(obj, dict):
        h.update(b"<")
        entries = sorted(
            (stable_digest(key), key, value) for key, value in obj.items()
        )
        for key_digest, _, value in entries:
            h.update(key_digest.encode() + b"=")
            _feed(h, value)
        h.update(b">")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(b"D:" + f"{cls.__module__}.{cls.__qualname__}".encode() + b"{")
        for field in dataclasses.fields(obj):
            h.update(field.name.encode() + b"=")
            _feed(h, getattr(obj, field.name))
        h.update(b"}")
    elif callable(obj):
        module = getattr(obj, "__module__", "?")
        qualname = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
        h.update(b"c:" + f"{module}.{qualname}".encode() + b";")
    else:
        # Plain attribute-bag objects (CSRGraph and friends): hash the
        # public attributes only.  Private attributes are skipped because
        # they hold caches (CSRGraph._transpose is computed lazily) that
        # would make the same value hash differently over its lifetime.
        state = _public_state(obj)
        if state is not None:
            cls = type(obj)
            h.update(b"O:" + f"{cls.__module__}.{cls.__qualname__}".encode() + b"{")
            for name, value in state:
                h.update(name.encode() + b"=")
                _feed(h, value)
            h.update(b"}")
        else:
            h.update(b"r:" + repr(obj).encode() + b";")


def _public_state(obj: Any) -> list[tuple[str, Any]] | None:
    """Sorted public data attributes of ``obj``, from ``__dict__`` or slots."""
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return sorted(
            (name, value)
            for name, value in state.items()
            if not name.startswith("_")
        )
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        names = [slots] if isinstance(slots, str) else list(slots)
        return sorted(
            (name, getattr(obj, name))
            for name in names
            if not name.startswith("_") and hasattr(obj, name)
        )
    return None


def stable_digest(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical encoding (see module doc)."""
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


def cell_fingerprint(fn, key: Any, args: tuple = (), kwargs: dict | None = None) -> str:
    """Fingerprint of one sweep cell: function identity + key + arguments.

    Two cells share a fingerprint iff they would compute the same result
    (same function by name, same plain-data arguments), which is exactly
    the skip condition checkpoint/resume needs.
    """
    return stable_digest((fn, key, tuple(args), dict(kwargs or {})))
