"""Plain-text table and series formatting for the benchmark harness.

The paper reports results as tables (Tables I-III) and line plots
(Figures 3-11).  In a terminal-only reproduction we print tables as aligned
ASCII and figures as labelled series; both go through the two functions
here so output is uniform across all benches.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        if abs(value) >= 0.001:
            return f"{value:.3f}"
        return f"{value:.3e}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render a figure's data as one row per x value, one column per series.

    This is the textual stand-in for the paper's line plots: the x axis and
    every plotted series appear as table columns, so crossover points and
    trends are directly readable.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            if len(values) != len(x_values):
                raise ValueError(
                    f"series length {len(values)} != x length {len(x_values)}"
                )
            row.append(values[i])
        rows.append(row)
    return format_table(headers, rows, title=title)
