"""Shared utilities: validation, RNG handling, table formatting, timing.

These helpers are intentionally dependency-light so every subpackage
(:mod:`repro.graphs`, :mod:`repro.memsim`, :mod:`repro.kernels`, ...) can use
them without import cycles.
"""

from repro.utils.rng import as_generator, spawn_child
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_power_of_two,
    check_probability,
    check_array_dtype,
    pow2_at_least,
)
from repro.utils.tables import format_table, format_series
from repro.utils.timing import Timer

__all__ = [
    "as_generator",
    "spawn_child",
    "check_positive",
    "check_nonnegative",
    "check_power_of_two",
    "check_probability",
    "check_array_dtype",
    "pow2_at_least",
    "format_table",
    "format_series",
    "Timer",
]
