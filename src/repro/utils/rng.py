"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (graph generators, random
relabelling, synthetic traces) accepts a ``seed`` argument that may be an
``int``, ``None``, or an existing :class:`numpy.random.Generator`.  Routing
everything through :func:`as_generator` keeps experiments reproducible: the
benchmark harness fixes one seed per experiment and derives independent
child streams with :func:`spawn_child` so that, e.g., changing the number of
graphs generated does not perturb the randomness of later ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_child"]


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged so callers can thread one generator
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, index: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is a deterministic function of the parent's state and
    ``index``; drawing from one child never perturbs another.
    """
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(index,)
    )
    return np.random.default_rng(seed_seq)
