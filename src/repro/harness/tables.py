"""Regeneration of the paper's tables.

* Table I — the graph suite and its metadata;
* Table II — baseline vs prior-work strategies on urand (time, reads,
  reads/s, instructions);
* Table III — detailed baseline / PB / DPB results on all eight graphs.

Like the figures, each table is declared as an
:class:`~repro.plan.spec.ExperimentSpec` (``table*_spec``) whose cells
come from the shared families in :mod:`repro.harness.cells` — so table
II's baseline row and table III's measurements deduplicate against the
figure specs when compiled into one plan.  The ``table*`` functions
compile and execute a one-spec plan and return a :class:`TableResult`
(structured rows plus a rendered ASCII table, so benches can both print
and assert).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph
from repro.graphs.suite import suite_table_rows
from repro.harness.cells import experiment_cell, priorwork_cell
from repro.harness.experiment import Measurement
from repro.harness.figures import run_spec, suite_cells
from repro.kernels.priorwork import PRIOR_WORK
from repro.memsim import DEFAULT_ENGINE
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.plan import Cell, ExperimentSpec
from repro.utils.tables import format_table

__all__ = [
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table1_spec",
    "table2_spec",
    "table3_spec",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
]


@dataclass(frozen=True)
class TableResult:
    """Structured rows plus rendered text for one regenerated table."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    measurements: dict[str, Measurement]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


#: Paper Table II (urand, one iteration): time s, reads M, reads/s M, instr B.
PAPER_TABLE2: dict[str, tuple[float, float, float, float]] = {
    "baseline": (2.49, 2269, 911.7, 16.2),
    "csb": (4.12, 2504, 608.0, 58.4),
    "galois": (5.06, 2535, 501.3, 44.9),
    "graphmat": (3.75, 2338, 623.1, 88.8),
    "ligra": (4.54, 3983, 877.8, 36.1),
}

#: Paper Table III: per graph, {method: (time s, reads M, writes M, instr B)}.
PAPER_TABLE3: dict[str, dict[str, tuple[float, float, float, float]]] = {
    "urand": {
        "baseline": (2.50, 2269.1, 162.9, 16.2),
        "pb": (1.50, 467.0, 469.8, 76.8),
        "dpb": (1.32, 481.0, 349.5, 74.1),
    },
    "kron": {
        "baseline": (2.03, 1570.3, 158.9, 17.3),
        "pb": (1.34, 463.7, 463.7, 76.2),
        "dpb": (1.20, 472.5, 340.7, 73.2),
    },
    "cite": {
        "baseline": (1.30, 777.5, 77.4, 6.9),
        "pb": (0.57, 202.8, 200.4, 33.7),
        "dpb": (0.56, 203.3, 140.9, 32.4),
    },
    "coauth": {
        "baseline": (0.99, 673.8, 123.1, 10.9),
        "pb": (0.92, 297.6, 292.7, 47.9),
        "dpb": (0.93, 308.4, 229.5, 47.0),
    },
    "friend": {
        "baseline": (3.72, 3285.2, 219.7, 23.4),
        "pb": (2.16, 753.5, 760.4, 125.5),
        "dpb": (2.12, 769.9, 541.9, 120.6),
    },
    "twitter": {
        "baseline": (1.02, 686.0, 103.9, 9.7),
        "pb": (0.79, 307.8, 304.0, 51.7),
        "dpb": (0.69, 305.3, 209.2, 49.0),
    },
    "web": {
        "baseline": (0.44, 161.8, 127.3, 7.6),
        "pb": (0.46, 173.8, 166.2, 25.9),
        "dpb": (0.45, 172.7, 125.6, 24.9),
    },
    "webrnd": {
        "baseline": (1.22, 697.1, 139.3, 7.7),
        "pb": (0.50, 169.0, 167.4, 25.9),
        "dpb": (0.46, 168.7, 127.5, 24.9),
    },
}


def table1_spec(graphs: dict[str, CSRGraph]) -> ExperimentSpec:
    """Table I: the suite, with the paper's full-scale metadata alongside.

    Needs no simulation — an empty cell set whose build renders straight
    from the graph metadata (declared as a spec anyway so ``reproduce``
    treats every artifact uniformly).
    """
    headers = [
        "graph",
        "description",
        "vertices",
        "edges",
        "degree",
        "sym",
        "paper |V| (M)",
        "paper |E| (M)",
        "paper degree",
    ]

    def build(values) -> TableResult:
        return TableResult(
            title="Table I: evaluation graphs (scaled 1:1024 from the paper's)",
            headers=headers,
            rows=suite_table_rows(graphs),
            measurements={},
        )

    return ExperimentSpec(name="table1", cells={}, build=build)


def table1(graphs: dict[str, CSRGraph]) -> TableResult:
    return run_spec(table1_spec(graphs))


def table2_spec(
    graph: CSRGraph,
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Table II: baseline vs CSB/Galois/GraphMat/Ligra strategies on urand.

    The baseline cell is the suite's ("urand", "baseline") experiment
    cell, so it deduplicates against figures 3-6 and table III.
    """
    cells = {
        "baseline": Cell(
            fn=experiment_cell, args=(graph, "baseline", machine, "urand", engine)
        )
    }
    for name in PRIOR_WORK:
        cells[name] = Cell(
            fn=priorwork_cell, args=(graph, name, machine, "urand", engine)
        )

    def build(values) -> TableResult:
        measurements: dict[str, Measurement] = {
            name: values[name] for name in cells
        }
        rows = []
        for name in ("baseline", "csb", "galois", "graphmat", "ligra"):
            m = measurements[name]
            paper = PAPER_TABLE2[name]
            rows.append(
                [
                    name,
                    m.seconds * 1e3,  # modelled ms (scaled machine)
                    m.reads,
                    m.reads_per_second / 1e6,  # M reads/s
                    m.instructions / 1e6,  # M instructions (scaled graph)
                    paper[0],
                    paper[1],
                    paper[3],
                ]
            )
        headers = [
            "codebase",
            "time (ms)",
            "mem reads",
            "reads/s (M)",
            "instr (M)",
            "paper time (s)",
            "paper reads (M)",
            "paper instr (B)",
        ]
        return TableResult(
            title="Table II: single PageRank iteration on urand — baseline vs prior work",
            headers=headers,
            rows=rows,
            measurements=measurements,
        )

    return ExperimentSpec(name="table2", cells=cells, build=build)


def table2(
    graph: CSRGraph,
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> TableResult:
    return run_spec(
        table2_spec(graph, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


def table3_spec(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    methods: tuple[str, ...] = ("baseline", "pb", "dpb"),
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Table III: detailed time/reads/writes/instructions per graph."""

    def build(values) -> TableResult:
        measurements: dict[str, Measurement] = {}
        rows = []
        for graph_name in graphs:
            paper_row = PAPER_TABLE3.get(graph_name, {})
            for method in methods:
                m = values[(graph_name, method)]
                measurements[f"{graph_name}/{method}"] = m
                paper = paper_row.get(method)
                rows.append(
                    [
                        graph_name,
                        method,
                        m.seconds * 1e3,
                        m.reads,
                        m.writes,
                        m.instructions / 1e6,
                        paper[0] if paper else "-",
                        paper[1] if paper else "-",
                        paper[2] if paper else "-",
                    ]
                )
        headers = [
            "graph",
            "method",
            "time (ms)",
            "reads",
            "writes",
            "instr (M)",
            "paper time (s)",
            "paper reads (M)",
            "paper writes (M)",
        ]
        return TableResult(
            title="Table III: detailed results — baseline and propagation blocking",
            headers=headers,
            rows=rows,
            measurements=measurements,
        )

    return ExperimentSpec(
        name="table3",
        cells=suite_cells(graphs, methods, machine, engine),
        build=build,
    )


def table3(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    methods: tuple[str, ...] = ("baseline", "pb", "dpb"),
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> TableResult:
    return run_spec(
        table3_spec(graphs, machine, methods=methods, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )
