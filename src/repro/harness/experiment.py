"""Experiment runner: one (graph, strategy) measurement.

A :class:`Measurement` bundles everything a paper table/figure row needs:
simulated DRAM traffic, the modelled execution time with its bottleneck,
instruction counts, and the GAIL per-edge ratios.  This is the unit the
table and figure generators compose.

Every simulation-backed measurement also evaluates the Section V analytic
communication model against the simulated counters (:func:`evaluate_drift`)
and carries the resulting :class:`~repro.obs.drift.DriftSummary` — the
standing check that the reproduction's two independent accounts of memory
traffic still agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph
from repro.kernels.base import PageRankKernel
from repro.kernels.pagerank import make_kernel
from repro.memsim import DEFAULT_ENGINE
from repro.memsim.counters import MemCounters
from repro.memsim.hierarchy import L1Model
from repro.models.gail import GailMetrics, gail_metrics
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.models.performance import TimeBreakdown, kernel_time, pb_phase_times
from repro.obs.drift import DriftSummary
from repro.obs.spans import span
from repro.obs.trace import counter_sample, current_tracer

__all__ = ["Measurement", "run_experiment", "measure_kernel", "evaluate_drift"]


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one strategy on one graph for one iteration set."""

    graph_name: str
    method: str
    num_vertices: int
    num_edges: int
    num_iterations: int
    counters: MemCounters
    time: TimeBreakdown
    instructions: float
    #: Modelled per-phase seconds (Figure 11), for kernels with a per-phase
    #: instruction model (PB/DPB); ``None`` for single-model kernels.
    phase_seconds: dict[str, float] | None = None
    #: Section V analytic model vs. these counters; ``None`` for kernels
    #: without a communication model (push).
    drift: DriftSummary | None = None

    @property
    def reads(self) -> int:
        return self.counters.total_reads

    @property
    def writes(self) -> int:
        return self.counters.total_writes

    @property
    def requests(self) -> int:
        return self.counters.total_requests

    @property
    def seconds(self) -> float:
        return self.time.total

    @property
    def reads_per_second(self) -> float:
        """The paper's Table II "Reads / second" column."""
        return self.reads / self.seconds if self.seconds else 0.0

    def gail(self) -> GailMetrics:
        """Per-edge efficiency ratios (Figures 6-8)."""
        return gail_metrics(self.num_edges, self.counters, self.instructions, self.seconds)

    def speedup_over(self, baseline: "Measurement") -> float:
        """Execution-time speedup relative to ``baseline`` (Figure 4)."""
        return baseline.seconds / self.seconds if self.seconds else float("inf")

    def communication_reduction_over(self, baseline: "Measurement") -> float:
        """Total-traffic reduction relative to ``baseline`` (Figure 5)."""
        return baseline.requests / self.requests if self.requests else float("inf")


def evaluate_drift(
    kernel: PageRankKernel, counters: MemCounters, num_iterations: int = 1
) -> DriftSummary | None:
    """Evaluate the Section V model against simulated counters.

    Returns one :class:`DriftSummary` with a record per modelled phase's
    reads plus the run totals, or ``None`` when the kernel has no analytic
    model (push) or the graph is degenerate.  Reads attribute cleanly to
    phases (fills are charged at access time); write-backs do not (they
    land wherever eviction happens, including the final flush), so writes
    are compared only in total.
    """
    from repro.models.communication import (
        ModelParams,
        detailed_cb_edgelist,
        detailed_pb,
        detailed_pull,
        phase_reads,
    )

    graph = kernel.graph
    if graph.num_edges == 0:
        return None
    machine = kernel.machine
    params = ModelParams(
        n=graph.num_vertices,
        k=graph.average_degree,
        b=machine.words_per_line,
        c=machine.cache_words,
    )
    method = kernel.name
    if method.endswith("-compiled"):
        # Compiled-tier kernels inherit their oracle's trace unchanged, so
        # the oracle's analytic model applies verbatim.
        method = method[: -len("-compiled")]
    if method in ("baseline", "pull"):
        model_name = "detailed_pull"
        totals = detailed_pull(params)
        phases = phase_reads(method, params)
    elif method == "cb":
        model_name = "detailed_cb_edgelist"
        r = kernel.num_blocks
        totals = detailed_cb_edgelist(params, r)
        phases = phase_reads(method, params, r=r)
    elif method in ("pb", "dpb"):
        model_name = "detailed_pb"
        totals = detailed_pb(
            params, reuse_destinations=kernel.reuses_destinations
        )
        phases = phase_reads(method, params)
    else:
        return None

    summary = DriftSummary(model=model_name)
    scale = float(num_iterations)
    for phase, modelled in phases.items():
        summary.add(
            f"reads/{phase}",
            float(counters.phase_reads.get(phase, 0)),
            modelled * scale,
        )
    # Total reads from the phase decomposition (it refines the detailed
    # totals with compulsory-fill terms); writes from the detailed model.
    summary.add(
        "total_reads", float(counters.total_reads), sum(phases.values()) * scale
    )
    summary.add(
        "total_writes", float(counters.total_writes), totals["writes"] * scale
    )
    return summary


def measure_kernel(
    kernel: PageRankKernel,
    *,
    graph_name: str = "",
    num_iterations: int = 1,
    engine: str = DEFAULT_ENGINE,
) -> Measurement:
    """Measure an already-constructed kernel."""
    counters = kernel.measure(num_iterations, engine=engine)
    with span("drift_model"):
        drift = evaluate_drift(kernel, counters, num_iterations)
        if drift is not None and current_tracer() is not None:
            counter_sample(
                f"model_drift[{kernel.name}]",
                {record.name: record.delta for record in drift.records},
            )
    with span("time_model"):
        l1_misses = None
        layout = getattr(kernel, "layout", None)
        if layout is not None:
            stats = L1Model(kernel.machine.l1).analyze(layout.edge_bin_ids())
            l1_misses = stats["misses"] * num_iterations
        time = kernel_time(kernel, counters, num_iterations, l1_misses=l1_misses)
        phase_seconds = None
        if hasattr(kernel, "phase_instruction_counts"):
            phase_seconds = pb_phase_times(
                kernel, counters, num_iterations, l1_misses=l1_misses
            )
    return Measurement(
        graph_name=graph_name,
        method=kernel.name,
        num_vertices=kernel.graph.num_vertices,
        num_edges=kernel.graph.num_edges,
        num_iterations=num_iterations,
        counters=counters,
        time=time,
        instructions=kernel.instruction_count(num_iterations),
        phase_seconds=phase_seconds,
        drift=drift,
    )


def run_experiment(
    graph: CSRGraph,
    method: str,
    *,
    machine: MachineSpec = SIMULATED_MACHINE,
    graph_name: str = "",
    num_iterations: int = 1,
    engine: str = DEFAULT_ENGINE,
    **kernel_kwargs,
) -> Measurement:
    """Construct the kernel for ``method`` and measure it."""
    with span("experiment"):
        with span("make_kernel"):
            kernel = make_kernel(graph, method, machine, **kernel_kwargs)
        return measure_kernel(
            kernel,
            graph_name=graph_name,
            num_iterations=num_iterations,
            engine=engine,
        )
