"""Experiment runner: one (graph, strategy) measurement.

A :class:`Measurement` bundles everything a paper table/figure row needs:
simulated DRAM traffic, the modelled execution time with its bottleneck,
instruction counts, and the GAIL per-edge ratios.  This is the unit the
table and figure generators compose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph
from repro.kernels.base import PageRankKernel
from repro.kernels.pagerank import make_kernel
from repro.memsim.counters import MemCounters
from repro.memsim.hierarchy import L1Model
from repro.models.gail import GailMetrics, gail_metrics
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.models.performance import TimeBreakdown, kernel_time, pb_phase_times
from repro.obs.spans import span

__all__ = ["Measurement", "run_experiment", "measure_kernel"]


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one strategy on one graph for one iteration set."""

    graph_name: str
    method: str
    num_vertices: int
    num_edges: int
    num_iterations: int
    counters: MemCounters
    time: TimeBreakdown
    instructions: float
    #: Modelled per-phase seconds (Figure 11), for kernels with a per-phase
    #: instruction model (PB/DPB); ``None`` for single-model kernels.
    phase_seconds: dict[str, float] | None = None

    @property
    def reads(self) -> int:
        return self.counters.total_reads

    @property
    def writes(self) -> int:
        return self.counters.total_writes

    @property
    def requests(self) -> int:
        return self.counters.total_requests

    @property
    def seconds(self) -> float:
        return self.time.total

    @property
    def reads_per_second(self) -> float:
        """The paper's Table II "Reads / second" column."""
        return self.reads / self.seconds if self.seconds else 0.0

    def gail(self) -> GailMetrics:
        """Per-edge efficiency ratios (Figures 6-8)."""
        return gail_metrics(self.num_edges, self.counters, self.instructions, self.seconds)

    def speedup_over(self, baseline: "Measurement") -> float:
        """Execution-time speedup relative to ``baseline`` (Figure 4)."""
        return baseline.seconds / self.seconds if self.seconds else float("inf")

    def communication_reduction_over(self, baseline: "Measurement") -> float:
        """Total-traffic reduction relative to ``baseline`` (Figure 5)."""
        return baseline.requests / self.requests if self.requests else float("inf")


def measure_kernel(
    kernel: PageRankKernel,
    *,
    graph_name: str = "",
    num_iterations: int = 1,
    engine: str = "flru",
) -> Measurement:
    """Measure an already-constructed kernel."""
    counters = kernel.measure(num_iterations, engine=engine)
    with span("time_model"):
        l1_misses = None
        layout = getattr(kernel, "layout", None)
        if layout is not None:
            stats = L1Model(kernel.machine.l1).analyze(layout.edge_bin_ids())
            l1_misses = stats["misses"] * num_iterations
        time = kernel_time(kernel, counters, num_iterations, l1_misses=l1_misses)
        phase_seconds = None
        if hasattr(kernel, "phase_instruction_counts"):
            phase_seconds = pb_phase_times(
                kernel, counters, num_iterations, l1_misses=l1_misses
            )
    return Measurement(
        graph_name=graph_name,
        method=kernel.name,
        num_vertices=kernel.graph.num_vertices,
        num_edges=kernel.graph.num_edges,
        num_iterations=num_iterations,
        counters=counters,
        time=time,
        instructions=kernel.instruction_count(num_iterations),
        phase_seconds=phase_seconds,
    )


def run_experiment(
    graph: CSRGraph,
    method: str,
    *,
    machine: MachineSpec = SIMULATED_MACHINE,
    graph_name: str = "",
    num_iterations: int = 1,
    engine: str = "flru",
    **kernel_kwargs,
) -> Measurement:
    """Construct the kernel for ``method`` and measure it."""
    with span("experiment"):
        with span("make_kernel"):
            kernel = make_kernel(graph, method, machine, **kernel_kwargs)
        return measure_kernel(
            kernel,
            graph_name=graph_name,
            num_iterations=num_iterations,
            engine=engine,
        )
