"""Content-addressed on-disk cache of completed measurement cells.

Where a sweep checkpoint (:mod:`repro.harness.checkpoint`) makes *one
run's* progress durable, the :class:`MeasurementCache` makes *results*
durable across runs and commands: every completed plan cell is stored
under its content fingerprint (:meth:`repro.plan.spec.Cell.fingerprint`
— function + arguments, graph arrays included), so any later
``reproduce``/bench/figure invocation that requests the same work — in
any artifact combination, any worker count — warm-starts from disk and
executes nothing.

Layout: one JSON file per entry at
``<dir>/objects/<fp[:2]>/<fp>.json``::

    {"kind": "measurement_cache_entry", "schema_version": "1.0",
     "fingerprint": <hex>, "seconds": <float>,
     "encoding": "json" | "pickle", "result": ...}

Result encoding is shared with checkpoints (JSON when a round trip is
provably exact, base64 pickle otherwise).  Writes are atomic (temp file
+ ``os.replace``) so a crash can never leave a half-written entry.
Reads are corruption-tolerant with the same policy as checkpoints: a
corrupt, truncated, mismatched-fingerprint, or wrong-major-version entry
is logged and treated as a miss — the cell recomputes and the entry is
overwritten.  Caching is content-addressed but code identity is by name
only (the :mod:`repro.utils.fingerprint` tradeoff), so after editing a
cell function's *body* delete the cache directory rather than trusting
stale entries.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any

from repro.harness.checkpoint import _decode_result, _encode_result
from repro.obs.log import get_logger

__all__ = ["CACHE_SCHEMA_VERSION", "CacheEntry", "MeasurementCache"]

#: Version of the per-entry JSON schema; same policy as checkpoints
#: (major bump on incompatible change, minor on additive).
CACHE_SCHEMA_VERSION = "1.0"

log = get_logger("harness.cache")


@dataclass(frozen=True)
class CacheEntry:
    """One cached cell: its stored result and original wall time."""

    fingerprint: str
    result: Any
    seconds: float


class MeasurementCache:
    """Content-addressed store of measurement results (see module doc).

    Duck-typed for :func:`repro.plan.executor.execute_plan`:
    ``get(fingerprint)`` returns a :class:`CacheEntry` or ``None``,
    ``put(fingerprint, result, seconds)`` stores one entry atomically.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._hits = 0
        self._misses = 0

    def _path(self, fingerprint: str) -> str:
        return os.path.join(
            self.directory, "objects", fingerprint[:2], f"{fingerprint}.json"
        )

    def has(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))

    def get(self, fingerprint: str) -> CacheEntry | None:
        """Load one entry; any unreadable or untrusted file is a miss."""
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError) as exc:
            log.warning("%s: unreadable cache entry (%s); recomputing", path, exc)
            self._misses += 1
            return None
        entry = self._parse(path, data, fingerprint)
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        return entry

    def _parse(self, path: str, data: Any, fingerprint: str) -> CacheEntry | None:
        if not isinstance(data, dict) or data.get("kind") != "measurement_cache_entry":
            log.warning("%s: not a measurement cache entry; recomputing", path)
            return None
        version = str(data.get("schema_version", ""))
        if version.split(".", 1)[0] != CACHE_SCHEMA_VERSION.split(".", 1)[0]:
            log.warning(
                "%s: unsupported cache schema version %r (this build reads %r); "
                "recomputing",
                path,
                version,
                CACHE_SCHEMA_VERSION,
            )
            return None
        if data.get("fingerprint") != fingerprint:
            log.warning(
                "%s: fingerprint mismatch (file claims %r); recomputing",
                path,
                data.get("fingerprint"),
            )
            return None
        try:
            return CacheEntry(
                fingerprint=fingerprint,
                result=_decode_result(data["encoding"], data["result"]),
                seconds=float(data["seconds"]),
            )
        except (KeyError, ValueError, TypeError, pickle.UnpicklingError, EOFError) as exc:
            log.warning("%s: corrupt cache entry (%s); recomputing", path, exc)
            return None

    def put(self, fingerprint: str, result: Any, seconds: float) -> None:
        """Store one entry atomically (last writer wins, both identical)."""
        encoding, payload = _encode_result(result)
        document = json.dumps(
            {
                "kind": "measurement_cache_entry",
                "schema_version": CACHE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "seconds": seconds,
                "encoding": encoding,
                "result": payload,
            },
            sort_keys=True,
        )
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp_", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document + "\n")
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise

    def drop(self, fingerprint: str) -> bool:
        """Delete one entry; returns whether it existed.

        Invalidation hook for callers whose entries can go stale — the
        serving layer (:mod:`repro.serve.cache`) drops results whose
        inputs were touched by a graph update.  Plan measurements never
        need this (their fingerprints cover the full input content).
        """
        try:
            os.unlink(self._path(fingerprint))
        except FileNotFoundError:
            return False
        return True

    def __len__(self) -> int:
        objects = os.path.join(self.directory, "objects")
        if not os.path.isdir(objects):
            return 0
        return sum(
            1
            for _, _, files in os.walk(objects)
            for name in files
            if name.endswith(".json") and not name.startswith(".tmp_")
        )
