"""Append-only JSONL checkpoints of completed sweep cells.

A reproduce run is a long chain of independent sweep cells; killing it
(Ctrl-C, OOM, a worker crash that exhausts its retries) used to forfeit
every completed simulation.  A :class:`SweepCheckpoint` makes progress
durable: every finished cell is appended as one JSON line keyed by the
cell's *fingerprint* (:func:`repro.utils.fingerprint.cell_fingerprint` —
a stable SHA-256 of the cell function, key, and arguments), and a
resumed run (``--resume DIR``) skips any cell whose fingerprint is
already present, returning the stored result instead.  Because the
fingerprint covers the arguments (graph arrays included), a checkpoint
never replays a stale result for a changed *configuration* — a
different scale, seed, or engine yields a different fingerprint and the
cell simply reruns.  Code identity, however, is by name only (module +
qualname, the tradeoff documented in ``repro.utils.fingerprint``):
editing a cell function's body leaves old checkpoints valid, so after
changing simulation code delete the checkpoint directory (or resume
into a fresh one) rather than trusting ``--resume``.

File format (documented in ``docs/metrics_schema.md``):

* line 1 — header: ``{"kind": "sweep_checkpoint", "schema_version":
  "1.0", "label": <sweep label>}``;
* every further line — one record: ``{"fingerprint": <hex>, "key":
  <repr of the cell key>, "seconds": <float>, "encoding": "json" |
  "pickle", "result": ...}``.  Plain-data results are stored as JSON
  (``encoding: "json"``); anything JSON cannot round-trip exactly
  (measurement objects with numpy arrays) is pickled and base64-encoded
  (``encoding: "pickle"``).

The file is *append-only* and written line-at-a-time with a flush after
every record, so a crash can lose at most the line being written.
Loading tolerates exactly that: corrupt or truncated lines are skipped
with a warning, never fatal — better to recompute one cell than refuse
to resume.  An unrecognised major schema version is fatal (the stored
results cannot be trusted to mean what this reader thinks they mean).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any

from repro.obs.log import get_logger

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointRecord",
    "SweepCheckpoint",
    "checkpoint_path",
    "open_checkpoint",
]

#: Version of the checkpoint JSONL schema; same policy as run reports
#: (major bump on incompatible change, minor on additive).
CHECKPOINT_SCHEMA_VERSION = "1.0"

log = get_logger("harness.checkpoint")


@dataclass(frozen=True)
class CheckpointRecord:
    """One completed cell: its fingerprint, stored result, and wall time."""

    fingerprint: str
    key_repr: str
    result: Any
    seconds: float


def _encode_result(result: Any) -> tuple[str, Any]:
    """Pick the encoding that round-trips ``result`` exactly.

    JSON when an encode/decode cycle provably returns an equal value
    (covers the plain-dict figure cells); pickle+base64 otherwise
    (measurement objects, tuples, numpy scalars).
    """
    try:
        decoded = json.loads(json.dumps(result))
        if decoded == result and type(decoded) is type(result):
            return "json", result
    except (TypeError, ValueError):
        pass
    payload = base64.b64encode(pickle.dumps(result, protocol=4)).decode("ascii")
    return "pickle", payload


def _decode_result(encoding: str, payload: Any) -> Any:
    if encoding == "json":
        return payload
    if encoding == "pickle":
        return pickle.loads(base64.b64decode(payload))
    raise ValueError(f"unknown checkpoint result encoding {encoding!r}")


class SweepCheckpoint:
    """Durable record of completed sweep cells (see module docstring).

    Use :meth:`open` (or :func:`open_checkpoint`) rather than the
    constructor: opening loads any existing records so the resilient
    executor can skip them.
    """

    def __init__(self, path: str, *, label: str = "") -> None:
        self.path = path
        self.label = label
        self._records: dict[str, CheckpointRecord] = {}
        self._header_written = False
        self._tail_checked = False

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, *, label: str = "") -> "SweepCheckpoint":
        """Open ``path``, loading existing records if the file exists."""
        checkpoint = cls(path, label=label)
        if os.path.exists(path):
            checkpoint._load()
        return checkpoint

    def _load(self) -> None:
        skipped = 0
        with open(self.path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if lineno == 1 or data.get("kind") == "sweep_checkpoint":
                    self._check_header(data)
                    self._header_written = True
                    continue
                record = self._parse_record(data)
                if record is None:
                    skipped += 1
                    continue
                self._records[record.fingerprint] = record
        if skipped:
            log.warning(
                "%s: skipped %d corrupt/truncated checkpoint line(s); "
                "those cells will recompute",
                self.path,
                skipped,
            )
        if self._records:
            log.info("%s: loaded %d completed cell(s)", self.path, len(self._records))

    def _check_header(self, data: dict) -> None:
        if data.get("kind") != "sweep_checkpoint":
            raise ValueError(
                f"{self.path}: not a sweep checkpoint (first line kind="
                f"{data.get('kind')!r})"
            )
        version = str(data.get("schema_version", ""))
        major = version.split(".", 1)[0]
        if major != CHECKPOINT_SCHEMA_VERSION.split(".", 1)[0]:
            raise ValueError(
                f"{self.path}: unsupported checkpoint schema version "
                f"{version!r} (this build reads {CHECKPOINT_SCHEMA_VERSION!r})"
            )

    def _parse_record(self, data: dict) -> CheckpointRecord | None:
        try:
            return CheckpointRecord(
                fingerprint=data["fingerprint"],
                key_repr=data["key"],
                result=_decode_result(data["encoding"], data["result"]),
                seconds=float(data["seconds"]),
            )
        except (KeyError, ValueError, TypeError, pickle.UnpicklingError, EOFError):
            return None

    # ------------------------------------------------------------------
    # executor interface (duck-typed by repro.parallel.resilience)
    # ------------------------------------------------------------------
    def has(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def result_for(self, fingerprint: str) -> CheckpointRecord:
        return self._records[fingerprint]

    def record(self, fingerprint: str, key: Any, result: Any, seconds: float) -> None:
        """Append one completed cell and remember it in memory."""
        encoding, payload = _encode_result(result)
        line = json.dumps(
            {
                "fingerprint": fingerprint,
                "key": repr(key),
                "seconds": seconds,
                "encoding": encoding,
                "result": payload,
            },
            sort_keys=True,
        )
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # A crash mid-write can leave a partial line with no trailing
        # newline; appending onto it would corrupt this record too.
        # Terminate any such tail once before the first append.
        if not self._tail_checked:
            self._tail_checked = True
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "rb+") as tail:
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        tail.write(b"\n")
        with open(self.path, "a") as handle:
            if not self._header_written and handle.tell() == 0:
                handle.write(
                    json.dumps(
                        {
                            "kind": "sweep_checkpoint",
                            "schema_version": CHECKPOINT_SCHEMA_VERSION,
                            "label": self.label,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            self._header_written = True
            handle.write(line + "\n")
            handle.flush()
        self._records[fingerprint] = CheckpointRecord(
            fingerprint=fingerprint,
            key_repr=repr(key),
            result=result,
            seconds=seconds,
        )

    def __len__(self) -> int:
        return len(self._records)


def checkpoint_path(directory: str, label: str) -> str:
    """Canonical checkpoint file for one sweep label under ``directory``."""
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_" for ch in label)
    return os.path.join(directory, f"sweep_{safe}.jsonl")


def open_checkpoint(directory: str, label: str) -> SweepCheckpoint:
    """Open (resuming if present) the checkpoint for ``label`` in ``directory``."""
    os.makedirs(directory, exist_ok=True)
    return SweepCheckpoint.open(checkpoint_path(directory, label), label=label)
