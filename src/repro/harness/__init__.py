"""Experiment harness: per-experiment runners for every table and figure.

Since the plan layer (:mod:`repro.plan`), each artifact is declared as
an ``*_spec`` (cells + build) and the ``table*`` / ``figure*`` functions
are thin conveniences that compile and execute a one-spec plan.
"""

from repro.harness.cache import MeasurementCache
from repro.harness.experiment import Measurement, measure_kernel, run_experiment
from repro.harness.tables import (
    TableResult,
    table1,
    table2,
    table3,
    table1_spec,
    table2_spec,
    table3_spec,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.harness.figures import (
    FigureResult,
    run_spec,
    suite_cells,
    figure3_spec,
    figure4_spec,
    figure5_spec,
    figure6_spec,
    figure7_spec,
    figure8_spec,
    figure9_spec,
    figure10_spec,
    figure11_spec,
    figure3_vertex_traffic,
    figure4_speedup,
    figure5_communication_reduction,
    figure6_requests_per_edge,
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
    figure10_bin_width_time,
    figure11_phase_breakdown,
)

__all__ = [
    "Measurement",
    "MeasurementCache",
    "measure_kernel",
    "run_experiment",
    "run_spec",
    "suite_cells",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table1_spec",
    "table2_spec",
    "table3_spec",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "FigureResult",
    "figure3_spec",
    "figure4_spec",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "figure8_spec",
    "figure9_spec",
    "figure10_spec",
    "figure11_spec",
    "figure3_vertex_traffic",
    "figure4_speedup",
    "figure5_communication_reduction",
    "figure6_requests_per_edge",
    "figure7_scaling_vertices",
    "figure8_scaling_degree",
    "figure9_bin_width_communication",
    "figure10_bin_width_time",
    "figure11_phase_breakdown",
]
