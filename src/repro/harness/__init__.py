"""Experiment harness: per-experiment runners for every table and figure."""

from repro.harness.experiment import Measurement, measure_kernel, run_experiment
from repro.harness.tables import (
    TableResult,
    table1,
    table2,
    table3,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.harness.figures import (
    FigureResult,
    suite_measurements,
    figure3_vertex_traffic,
    figure4_speedup,
    figure5_communication_reduction,
    figure6_requests_per_edge,
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
    figure10_bin_width_time,
    figure11_phase_breakdown,
    bin_width_sweep,
)

__all__ = [
    "Measurement",
    "measure_kernel",
    "run_experiment",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "FigureResult",
    "suite_measurements",
    "figure3_vertex_traffic",
    "figure4_speedup",
    "figure5_communication_reduction",
    "figure6_requests_per_edge",
    "figure7_scaling_vertices",
    "figure8_scaling_degree",
    "figure9_bin_width_communication",
    "figure10_bin_width_time",
    "figure11_phase_breakdown",
    "bin_width_sweep",
]
