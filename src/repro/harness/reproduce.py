"""One-command reproduction driver: ``python -m repro.harness.reproduce``.

Regenerates every table and figure of the paper — the same artifacts the
benchmark suite produces — without pytest, writing each rendered result to
an output directory and printing progress.  Useful for CI artifact jobs
and for quickly rebuilding ``results/`` after a change.

Options::

    --scale 0.25        shrink the suite (default 1.0, the full scaled suite)
    --output results    output directory
    --only fig3 table2  regenerate a subset
    --quick             alias for --scale 0.25 with coarser sweeps
    --resume DIR        checkpoint completed sweep cells in DIR and skip
                        any already recorded there (safe to re-run after
                        a crash; outputs are byte-identical either way)
    --max-retries N     retry failed sweep cells N times (default 2)
    --cell-timeout S    per-cell wall-clock deadline, pool mode only
    --inject-faults P   deterministic fault plan (test hook), e.g.
                        "seed=7,rate=0.3,kinds=crash|timeout|corrupt"
    --report PATH       write a schema-versioned RunReport of the run
                        (wall spans + retry/resume counters)

Artifact ids: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
fig10 fig11.  A run interrupted by a crash or a permanently failing cell
exits nonzero naming the cell; rerunning the same command with the same
``--resume`` directory picks up where it stopped.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.graphs import load_graph, load_suite
from repro.harness.figures import (
    bin_width_sweep,
    figure3_vertex_traffic,
    figure4_speedup,
    figure5_communication_reduction,
    figure6_requests_per_edge,
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
    figure10_bin_width_time,
    figure11_phase_breakdown,
    suite_measurements,
)
from repro.harness.tables import table1, table2, table3
from repro.memsim import DEFAULT_ENGINE, ENGINES
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.report import GraphMeta, RunConfig, RunReport
from repro.obs.spans import recording
from repro.parallel.faults import FaultPlan
from repro.parallel.resilience import (
    CellFailedError,
    RetryPolicy,
    SweepOptions,
    SweepStats,
)

log = get_logger("harness.reproduce")

ARTIFACTS = (
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.reproduce",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", default="results")
    parser.add_argument("--only", nargs="*", choices=ARTIFACTS, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="quarter-scale suite, coarser sweeps"
    )
    parser.add_argument(
        "--engine",
        choices=tuple(ENGINES),
        default=DEFAULT_ENGINE,
        help="cache engine for every simulation "
        f"(default: {DEFAULT_ENGINE}; 'flru' is the per-access oracle)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-parallel sweep workers for fig4-9 cells "
        "(1 = serial, 0 = one per CPU); outputs are identical either way",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint completed sweep cells in DIR and skip cells "
        "already recorded there (rerun after a crash to pick up where "
        "it stopped; outputs are byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed sweep cell before the run aborts "
        "(default 2; backoff is deterministic and jitterless)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline (enforced in --workers >= 2 "
        "pool mode; an overrun cell is retried)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN",
        default=None,
        help="deterministic fault plan for chaos testing, e.g. "
        '"seed=7,rate=0.3,kinds=crash|timeout|corrupt,max=2" '
        "(also honoured from the REPRO_FAULT_PLAN environment variable)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a RunReport (docs/metrics_schema.md) of this "
        "reproduction run: wall spans plus retry/resume counters",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v progress, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, help="errors only"
    )
    return parser


def _sizes_for(scale: float) -> list[int]:
    """Figure 7 vertex sweep, shrunk proportionally for quick runs."""
    full = [4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288]
    if scale >= 1.0:
        return full
    return [max(1024, int(n * scale)) for n in full]


def _sweep_options(args: argparse.Namespace) -> SweepOptions:
    """Resilience settings shared by every sweep of this run."""
    fault_plan = (
        FaultPlan.from_string(args.inject_faults) if args.inject_faults else None
    )
    return SweepOptions(
        workers=args.workers,
        policy=RetryPolicy(
            max_retries=args.max_retries, cell_timeout=args.cell_timeout
        ),
        fault_plan=fault_plan,
        checkpoint_dir=args.resume,
        stats=SweepStats(),
    )


def _write_run_report(
    args: argparse.Namespace,
    scale: float,
    wanted: set[str],
    options: SweepOptions,
    wall_spans: dict,
    *,
    completed: bool,
) -> None:
    """Honour ``--report``: one run-level RunReport with resilience counters."""
    if not args.report:
        return
    report = RunReport(
        kind="reproduce",
        graph=GraphMeta(
            name="reproduce", num_vertices=0, num_edges=0, scale=scale, seed=args.seed
        ),
        config=RunConfig(
            method="reproduce",
            engine=args.engine,
            options={
                "artifacts": sorted(wanted),
                "workers": args.workers,
                "resume": args.resume,
                "max_retries": args.max_retries,
                "cell_timeout": args.cell_timeout,
                "fault_plan": args.inject_faults,
                "completed": completed,
            },
        ),
        wall_spans=wall_spans,
        resilience=options.stats.as_dict() if options.stats else None,
    )
    report.save(args.report)
    log.info("wrote run report %s", args.report)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The reproduction driver's whole job is progress + artifacts, so its
    # default verbosity is INFO; -q silences it for scripted use.
    configure_logging(args.verbose - args.quiet + 1)
    scale = 0.25 if args.quick else args.scale
    os.makedirs(args.output, exist_ok=True)
    wanted = set(args.only or ARTIFACTS)
    options = _sweep_options(args)
    log.info("regenerating %d artifact(s) at scale %g", len(wanted), scale)

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.output, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        log.info("wrote %s", path)

    with recording() as rec:
        try:
            _generate(args, scale, wanted, options, emit)
        except CellFailedError as exc:
            log.error("%s", exc)
            if args.resume:
                log.error(
                    "completed cells are checkpointed under %s; rerun the "
                    "same command to resume",
                    args.resume,
                )
            else:
                log.error(
                    "rerun with --resume DIR to make progress durable "
                    "across failures"
                )
            _write_run_report(
                args, scale, wanted, options, rec.as_dict(), completed=False
            )
            return 1
    _write_run_report(args, scale, wanted, options, rec.as_dict(), completed=True)
    log.info("done.")
    return 0


def _generate(
    args: argparse.Namespace,
    scale: float,
    wanted: set[str],
    options: SweepOptions,
    emit,
) -> None:
    suite_needed = wanted & {"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6"}
    graphs = load_suite(seed=args.seed, scale=scale) if suite_needed else {}

    if "table1" in wanted:
        emit("table1_suite", table1(graphs).render())
    if "table2" in wanted:
        emit("table2_priorwork", table2(graphs["urand"], engine=args.engine).render())
    if "table3" in wanted:
        emit("table3_detailed", table3(graphs, engine=args.engine).render())
    if "fig3" in wanted:
        emit(
            "fig3_vertex_traffic",
            figure3_vertex_traffic(graphs, engine=args.engine).render(),
        )
    if wanted & {"fig4", "fig5", "fig6"}:
        data = suite_measurements(
            graphs, engine=args.engine, workers=args.workers, options=options
        )
        if "fig4" in wanted:
            emit("fig4_speedup", figure4_speedup(graphs, _measurements=data).render())
        if "fig5" in wanted:
            emit(
                "fig5_comm_reduction",
                figure5_communication_reduction(graphs, _measurements=data).render(),
            )
        if "fig6" in wanted:
            emit(
                "fig6_gail",
                figure6_requests_per_edge(graphs, _measurements=data).render(),
            )
    if "fig7" in wanted:
        emit(
            "fig7_scale_vertices",
            figure7_scaling_vertices(
                _sizes_for(scale),
                engine=args.engine,
                workers=args.workers,
                options=options,
            ).render(),
        )
    if "fig8" in wanted:
        degrees = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48]
        n = max(2048, int(65536 * scale)) if scale < 1.0 else 65536
        emit(
            "fig8_scale_degree",
            figure8_scaling_degree(
                degrees,
                num_vertices=n,
                engine=args.engine,
                workers=args.workers,
                options=options,
            ).render(),
        )
    if wanted & {"fig9", "fig10"}:
        widths = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]
        sweep_graphs = load_suite(seed=args.seed, scale=0.5 * scale)
        sweep = bin_width_sweep(
            sweep_graphs, widths, engine=args.engine, workers=args.workers, options=options
        )
        if "fig9" in wanted:
            emit(
                "fig9_binwidth_comm",
                figure9_bin_width_communication(
                    sweep_graphs, widths, _sweep_cache=sweep
                ).render(),
            )
        if "fig10" in wanted:
            emit(
                "fig10_binwidth_time",
                figure10_bin_width_time(
                    sweep_graphs, widths, _sweep_cache=sweep
                ).render(),
            )
    if "fig11" in wanted:
        widths = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]
        urand = load_graph("urand", seed=args.seed, scale=scale)
        emit(
            "fig11_phase_breakdown",
            figure11_phase_breakdown(urand, widths, engine=args.engine).render(),
        )


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
