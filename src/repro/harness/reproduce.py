"""One-command reproduction driver: ``python -m repro.harness.reproduce``.

Regenerates every table and figure of the paper — the same artifacts the
benchmark suite produces — without pytest, writing each rendered result to
an output directory and printing progress.  Useful for CI artifact jobs
and for quickly rebuilding ``results/`` after a change.

Since the plan layer (:mod:`repro.plan`), the requested artifacts are
compiled into **one deduplicated cell plan** executed in a single
resilient sweep: cells shared between artifacts (the suite measurements
behind figures 3-6 and tables II-III, the bin-width sweep behind figures
9-10) are simulated exactly once, and ``--cache DIR`` warm-starts from a
content-addressed store so a repeated run executes nothing at all.

Options::

    --scale 0.25        shrink the suite (default 1.0, the full scaled suite)
    --output results    output directory
    --only fig3 table2  regenerate a subset
    --quick             alias for --scale 0.25 with coarser sweeps
    --cache DIR         content-addressed measurement cache: completed
                        cells are stored by fingerprint and any later run
                        (any artifact subset) reuses them
    --resume DIR        checkpoint completed sweep cells in DIR and skip
                        any already recorded there (safe to re-run after
                        a crash; outputs are byte-identical either way)
    --max-retries N     retry failed sweep cells N times (default 2)
    --cell-timeout S    per-cell wall-clock deadline, pool mode only
    --inject-faults P   deterministic fault plan (test hook), e.g.
                        "seed=7,rate=0.3,kinds=crash|timeout|corrupt"
    --distribute N      lease cells to a socket worker fleet instead of
                        the in-process pool: spawn N local workers
                        (0 = external only: repro-pb worker --connect)
    --bind HOST:PORT    with --distribute: coordinator listen address
                        (default 127.0.0.1:0)
    --lease-timeout S   with --distribute: silent-worker lease expiry
                        (expired cells are charged a timeout and
                        re-leased; default 30)
    --report PATH       write a schema-versioned RunReport of the run
                        (wall spans + plan dedup/cache + retry counters
                        + the fleet section's cross-process accounting)
    --trace PATH        write one merged Chrome trace of the whole fleet:
                        parent spans plus every worker's cell spans,
                        lifecycle events, and resource counter tracks
    --progress MODE     live progress rendering: auto (default; live on
                        a TTY, plain lines otherwise), live, plain, off

Artifact ids: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
fig10 fig11.  A run interrupted by a crash or a permanently failing cell
exits nonzero naming the cell; rerunning the same command with the same
``--resume`` directory picks up where it stopped.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from repro.graphs import load_graph, load_suite
from repro.harness.cache import MeasurementCache
from repro.harness.figures import (
    figure3_spec,
    figure4_spec,
    figure5_spec,
    figure6_spec,
    figure7_spec,
    figure8_spec,
    figure9_spec,
    figure10_spec,
    figure11_spec,
)
from repro.harness.tables import table1_spec, table2_spec, table3_spec
from repro.memsim import DEFAULT_ENGINE, ENGINES
from repro.obs.events import EventBus
from repro.obs.events import collecting as collecting_events
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.progress import attach_progress
from repro.obs.report import GraphMeta, RunConfig, RunReport
from repro.obs.spans import recording
from repro.obs.trace import TraceRecorder, tracing
from repro.parallel.faults import FaultPlan
from repro.parallel.resilience import (
    CellFailedError,
    RetryPolicy,
    SweepOptions,
    SweepStats,
)
from repro.plan import CompiledPlan, compile_plan, execute_plan

log = get_logger("harness.reproduce")

ARTIFACTS = (
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)

#: Output file stem (under ``--output``) for each artifact id.
EMIT_NAMES = {
    "table1": "table1_suite",
    "table2": "table2_priorwork",
    "table3": "table3_detailed",
    "fig3": "fig3_vertex_traffic",
    "fig4": "fig4_speedup",
    "fig5": "fig5_comm_reduction",
    "fig6": "fig6_gail",
    "fig7": "fig7_scale_vertices",
    "fig8": "fig8_scale_degree",
    "fig9": "fig9_binwidth_comm",
    "fig10": "fig10_binwidth_time",
    "fig11": "fig11_phase_breakdown",
}

#: Bin widths of the figure 9/10/11 sweeps (see benchmarks/conftest.py).
BIN_WIDTHS = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.reproduce",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", default="results")
    parser.add_argument("--only", nargs="*", choices=ARTIFACTS, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="quarter-scale suite, coarser sweeps"
    )
    parser.add_argument(
        "--engine",
        choices=tuple(ENGINES),
        default=DEFAULT_ENGINE,
        help="cache engine for every simulation "
        f"(default: {DEFAULT_ENGINE}; 'flru' is the per-access oracle)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-parallel sweep workers for the plan's cells "
        "(1 = serial, 0 = one per CPU); outputs are identical either way",
    )
    parser.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="shared-memory graph plane for pooled sweeps: publish each "
        "distinct graph once into /dev/shm and ship cells tiny zero-copy "
        "handles instead of pickled arrays (default: auto — on whenever a "
        "process pool runs; --no-shm forces graphs by value; outputs are "
        "byte-identical either way)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed measurement cache: store every completed "
        "cell under its fingerprint in DIR and reuse matching cells from "
        "any previous run (a fully warm run executes zero cells; outputs "
        "are byte-identical either way)",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint completed sweep cells in DIR and skip cells "
        "already recorded there (rerun after a crash to pick up where "
        "it stopped; outputs are byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed sweep cell before the run aborts "
        "(default 2; backoff is deterministic and jitterless)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline (enforced in --workers >= 2 "
        "pool mode; an overrun cell is retried)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN",
        default=None,
        help="deterministic fault plan for chaos testing, e.g. "
        '"seed=7,rate=0.3,kinds=crash|timeout|corrupt,max=2" '
        "(also honoured from the REPRO_FAULT_PLAN environment variable)",
    )
    parser.add_argument(
        "--distribute",
        type=int,
        default=None,
        metavar="N",
        help="lease the plan's cells to a socket worker fleet instead "
        "of the in-process pool: spawn N local worker processes (0 = "
        "spawn none; attach external ones with `repro-pb worker "
        "--connect`); outputs are byte-identical to a serial run",
    )
    parser.add_argument(
        "--bind",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help="with --distribute: coordinator listen address (default "
        "127.0.0.1:0 — loopback, ephemeral port; see docs/distributed.md "
        "before binding wider)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="with --distribute: how long a silent worker may hold a "
        "cell before its lease expires and the cell is re-leased "
        "(default 30)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a RunReport (docs/metrics_schema.md) of this "
        "reproduction run: wall spans plus plan/cache and retry counters "
        "and the fleet section's cross-process cell accounting",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write one merged Chrome trace (chrome://tracing / Perfetto) "
        "of the whole fleet: parent spans plus per-worker tracks with "
        "worker-side cell spans, lifecycle events, and resource counters",
    )
    parser.add_argument(
        "--progress",
        choices=("auto", "live", "plain", "off"),
        default="auto",
        help="progress rendering: auto picks an in-place live line on a "
        "TTY and plain append-only lines otherwise (never ANSI escapes "
        "in redirected output); -q implies off",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v progress, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, help="errors only"
    )
    return parser


def _sizes_for(scale: float) -> list[int]:
    """Figure 7 vertex sweep, shrunk proportionally for quick runs."""
    full = [4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288]
    if scale >= 1.0:
        return full
    return [max(1024, int(n * scale)) for n in full]


def plan_specs(
    wanted: set[str],
    *,
    scale: float = 1.0,
    seed: int = 42,
    engine: str = DEFAULT_ENGINE,
) -> list:
    """Experiment specs for the requested artifact ids, in emit order.

    This is the full declarative description of the reproduction: the
    driver compiles these specs into one deduplicated plan, and the
    ``repro-pb plan`` subcommand compiles them purely to print the DAG.
    """
    specs = []
    suite_needed = wanted & {
        "table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6"
    }
    graphs = load_suite(seed=seed, scale=scale) if suite_needed else {}
    if "table1" in wanted:
        specs.append(table1_spec(graphs))
    if "table2" in wanted:
        specs.append(table2_spec(graphs["urand"], engine=engine))
    if "table3" in wanted:
        specs.append(table3_spec(graphs, engine=engine))
    if "fig3" in wanted:
        specs.append(figure3_spec(graphs, engine=engine))
    if "fig4" in wanted:
        specs.append(figure4_spec(graphs, engine=engine))
    if "fig5" in wanted:
        specs.append(figure5_spec(graphs, engine=engine))
    if "fig6" in wanted:
        specs.append(figure6_spec(graphs, engine=engine))
    if "fig7" in wanted:
        specs.append(figure7_spec(_sizes_for(scale), engine=engine))
    if "fig8" in wanted:
        degrees = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48]
        n = max(2048, int(65536 * scale)) if scale < 1.0 else 65536
        specs.append(figure8_spec(degrees, num_vertices=n, engine=engine))
    if wanted & {"fig9", "fig10"}:
        sweep_graphs = load_suite(seed=seed, scale=0.5 * scale)
        if "fig9" in wanted:
            specs.append(figure9_spec(sweep_graphs, BIN_WIDTHS, engine=engine))
        if "fig10" in wanted:
            specs.append(figure10_spec(sweep_graphs, BIN_WIDTHS, engine=engine))
    if "fig11" in wanted:
        urand = load_graph("urand", seed=seed, scale=scale)
        specs.append(figure11_spec(urand, BIN_WIDTHS, engine=engine))
    return specs


def _sweep_options(args: argparse.Namespace) -> SweepOptions:
    """Resilience settings for the plan execution of this run."""
    fault_plan = (
        FaultPlan.from_string(args.inject_faults) if args.inject_faults else None
    )
    return SweepOptions(
        workers=args.workers,
        policy=RetryPolicy(
            max_retries=args.max_retries, cell_timeout=args.cell_timeout
        ),
        fault_plan=fault_plan,
        checkpoint_dir=args.resume,
        stats=SweepStats(),
        shm=args.shm,
    )


def _write_run_report(
    args: argparse.Namespace,
    scale: float,
    wanted: set[str],
    options: SweepOptions,
    plan: CompiledPlan | None,
    wall_spans: dict,
    *,
    completed: bool,
    fleet: dict | None = None,
) -> None:
    """Honour ``--report``: one run-level RunReport with plan + resilience."""
    if not args.report:
        return
    report = RunReport(
        kind="reproduce",
        graph=GraphMeta(
            name="reproduce", num_vertices=0, num_edges=0, scale=scale, seed=args.seed
        ),
        config=RunConfig(
            method="reproduce",
            engine=args.engine,
            options={
                "artifacts": sorted(wanted),
                "workers": args.workers,
                "cache": args.cache,
                "resume": args.resume,
                "max_retries": args.max_retries,
                "cell_timeout": args.cell_timeout,
                "fault_plan": args.inject_faults,
                "distribute": args.distribute,
                "completed": completed,
            },
        ),
        wall_spans=wall_spans,
        plan=plan.stats.as_dict() if plan is not None else None,
        resilience=options.stats.as_dict() if options.stats else None,
        fleet=fleet,
    )
    report.save(args.report)
    log.info("wrote run report %s", args.report)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The reproduction driver's whole job is progress + artifacts, so its
    # default verbosity is INFO; -q silences it for scripted use.
    configure_logging(args.verbose - args.quiet + 1)
    scale = 0.25 if args.quick else args.scale
    os.makedirs(args.output, exist_ok=True)
    wanted = set(args.only or ARTIFACTS)
    options = _sweep_options(args)
    log.info("regenerating %d artifact(s) at scale %g", len(wanted), scale)

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.output, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        log.info("wrote %s", path)

    holder: dict = {"plan": None}
    bus = EventBus()
    tracer = TraceRecorder() if args.trace else None
    renderer = attach_progress(bus, mode=args.progress, quiet=args.quiet > 0)
    failure: CellFailedError | None = None
    with recording() as rec, collecting_events(bus):
        trace_scope = tracing(tracer) if tracer is not None else contextlib.nullcontext()
        with trace_scope:
            try:
                _generate(args, scale, wanted, options, emit, holder)
            except CellFailedError as exc:
                failure = exc
                log.error("%s", exc)
                if args.resume:
                    log.error(
                        "completed cells are checkpointed under %s; rerun the "
                        "same command to resume",
                        args.resume,
                    )
                else:
                    log.error(
                        "rerun with --resume DIR to make progress durable "
                        "across failures"
                    )
    # The engine drained the worker queue before returning; this final
    # pump only matters when it aborted mid-sweep.
    bus.pump()
    if renderer is not None:
        renderer.finish()
    fleet = bus.fleet_summary()
    if tracer is not None:
        bus.merge_into_trace(tracer)
        tracer.save(args.trace)
        log.info("wrote fleet trace %s", args.trace)
    bus.close()
    _write_run_report(
        args, scale, wanted, options, holder["plan"], rec.as_dict(),
        completed=failure is None, fleet=fleet,
    )
    if failure is not None:
        return 1
    log.info("done.")
    return 0


def _generate(
    args: argparse.Namespace,
    scale: float,
    wanted: set[str],
    options: SweepOptions,
    emit,
    holder: dict,
) -> None:
    """Compile one plan for every wanted artifact, execute it, fan out."""
    specs = plan_specs(wanted, scale=scale, seed=args.seed, engine=args.engine)
    plan = compile_plan(specs)
    holder["plan"] = plan
    log.info(
        "plan: %d cell(s) requested, %d unique (dedup ratio %.2f)",
        plan.cells_requested,
        plan.cells_unique,
        plan.dedup_ratio,
    )
    cache = MeasurementCache(args.cache) if args.cache else None
    executor = None
    if args.distribute is not None:
        from repro.cluster import DistributedExecutor, parse_endpoint

        if args.distribute < 0:
            raise SystemExit("--distribute must be >= 0")
        try:
            bind = parse_endpoint(args.bind)
        except ValueError as exc:
            raise SystemExit(f"--bind: {exc}") from None
        executor = DistributedExecutor(
            spawn_workers=args.distribute,
            bind=bind,
            lease_seconds=args.lease_timeout,
        )
    results = execute_plan(
        plan, workers=args.workers, options=options, cache=cache,
        executor=executor,
    )
    if cache is not None:
        log.info(
            "cache: %d hit(s), %d cell(s) executed",
            plan.stats.cache_hits,
            plan.stats.executed,
        )
    for spec in specs:
        emit(EMIT_NAMES[spec.name], results.artifact(spec.name).render())


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
