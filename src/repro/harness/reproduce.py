"""One-command reproduction driver: ``python -m repro.harness.reproduce``.

Regenerates every table and figure of the paper — the same artifacts the
benchmark suite produces — without pytest, writing each rendered result to
an output directory and printing progress.  Useful for CI artifact jobs
and for quickly rebuilding ``results/`` after a change.

Options::

    --scale 0.25        shrink the suite (default 1.0, the full scaled suite)
    --output results    output directory
    --only fig3 table2  regenerate a subset
    --quick             alias for --scale 0.25 with coarser sweeps

Artifact ids: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
fig10 fig11.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.graphs import load_graph, load_suite
from repro.harness.figures import (
    bin_width_sweep,
    figure3_vertex_traffic,
    figure4_speedup,
    figure5_communication_reduction,
    figure6_requests_per_edge,
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
    figure10_bin_width_time,
    figure11_phase_breakdown,
    suite_measurements,
)
from repro.harness.tables import table1, table2, table3
from repro.memsim import DEFAULT_ENGINE, ENGINES
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger

log = get_logger("harness.reproduce")

ARTIFACTS = (
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.reproduce",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", default="results")
    parser.add_argument("--only", nargs="*", choices=ARTIFACTS, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="quarter-scale suite, coarser sweeps"
    )
    parser.add_argument(
        "--engine",
        choices=tuple(ENGINES),
        default=DEFAULT_ENGINE,
        help="cache engine for every simulation "
        f"(default: {DEFAULT_ENGINE}; 'flru' is the per-access oracle)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-parallel sweep workers for fig4-9 cells "
        "(1 = serial, 0 = one per CPU); outputs are identical either way",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v progress, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, help="errors only"
    )
    return parser


def _sizes_for(scale: float) -> list[int]:
    """Figure 7 vertex sweep, shrunk proportionally for quick runs."""
    full = [4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288]
    if scale >= 1.0:
        return full
    return [max(1024, int(n * scale)) for n in full]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The reproduction driver's whole job is progress + artifacts, so its
    # default verbosity is INFO; -q silences it for scripted use.
    configure_logging(args.verbose - args.quiet + 1)
    scale = 0.25 if args.quick else args.scale
    os.makedirs(args.output, exist_ok=True)
    wanted = set(args.only or ARTIFACTS)
    log.info("regenerating %d artifact(s) at scale %g", len(wanted), scale)

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.output, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        log.info("wrote %s", path)

    suite_needed = wanted & {"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6"}
    graphs = load_suite(seed=args.seed, scale=scale) if suite_needed else {}

    if "table1" in wanted:
        emit("table1_suite", table1(graphs).render())
    if "table2" in wanted:
        emit("table2_priorwork", table2(graphs["urand"], engine=args.engine).render())
    if "table3" in wanted:
        emit("table3_detailed", table3(graphs, engine=args.engine).render())
    if "fig3" in wanted:
        emit(
            "fig3_vertex_traffic",
            figure3_vertex_traffic(graphs, engine=args.engine).render(),
        )
    if wanted & {"fig4", "fig5", "fig6"}:
        data = suite_measurements(graphs, engine=args.engine, workers=args.workers)
        if "fig4" in wanted:
            emit("fig4_speedup", figure4_speedup(graphs, _measurements=data).render())
        if "fig5" in wanted:
            emit(
                "fig5_comm_reduction",
                figure5_communication_reduction(graphs, _measurements=data).render(),
            )
        if "fig6" in wanted:
            emit(
                "fig6_gail",
                figure6_requests_per_edge(graphs, _measurements=data).render(),
            )
    if "fig7" in wanted:
        emit(
            "fig7_scale_vertices",
            figure7_scaling_vertices(
                _sizes_for(scale), engine=args.engine, workers=args.workers
            ).render(),
        )
    if "fig8" in wanted:
        degrees = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48]
        n = max(2048, int(65536 * scale)) if scale < 1.0 else 65536
        emit(
            "fig8_scale_degree",
            figure8_scaling_degree(
                degrees, num_vertices=n, engine=args.engine, workers=args.workers
            ).render(),
        )
    if wanted & {"fig9", "fig10"}:
        widths = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]
        sweep_graphs = load_suite(seed=args.seed, scale=0.5 * scale)
        sweep = bin_width_sweep(
            sweep_graphs, widths, engine=args.engine, workers=args.workers
        )
        if "fig9" in wanted:
            emit(
                "fig9_binwidth_comm",
                figure9_bin_width_communication(
                    sweep_graphs, widths, _sweep_cache=sweep
                ).render(),
            )
        if "fig10" in wanted:
            emit(
                "fig10_binwidth_time",
                figure10_bin_width_time(
                    sweep_graphs, widths, _sweep_cache=sweep
                ).render(),
            )
    if "fig11" in wanted:
        widths = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]
        urand = load_graph("urand", seed=args.seed, scale=scale)
        emit(
            "fig11_phase_breakdown",
            figure11_phase_breakdown(urand, widths, engine=args.engine).render(),
        )
    log.info("done.")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
