"""Module-level measurement cell functions shared by every experiment spec.

Every artifact of the paper reduces to a handful of cell shapes — a
(graph, method) experiment, a prior-work kernel measurement, a generated
scaling point, a bin-width sweep point.  They live here, at module
level, because plan cells must pickle by reference into sweep workers
and because *where a cell function lives is part of its identity*:
:func:`repro.utils.fingerprint.stable_digest` hashes callables by module
+ qualname, so two specs share a cell (and a cache entry) only when they
call the same function here with equal arguments.
"""

from __future__ import annotations

from repro.graphs.builder import build_csr
from repro.graphs.generators import uniform_random_graph
from repro.harness.experiment import measure_kernel, run_experiment
from repro.kernels.pagerank import make_kernel
from repro.kernels.priorwork import PRIOR_WORK
from repro.models.performance import pb_phase_times
from repro.parallel.shm import resolve_graph

__all__ = [
    "experiment_cell",
    "priorwork_cell",
    "scaling_cell",
    "bin_width_cell",
    "SCALING_METHODS",
]


def experiment_cell(graph, method, machine, graph_name, engine):
    """One (graph, method) measurement — the suite/table/figure workhorse.

    ``graph`` arrives by value (:class:`~repro.graphs.csr.CSRGraph`) on
    the serial path, or as a :class:`~repro.parallel.shm.GraphRef` when
    the plan executor routes a pooled sweep through the shared-memory
    graph plane; :func:`resolve_graph` makes the two indistinguishable
    (and the ref hashes as the graph, so the cell's fingerprint is the
    same either way).
    """
    return run_experiment(
        resolve_graph(graph), method, machine=machine,
        graph_name=graph_name, engine=engine,
    )


def priorwork_cell(graph, kernel_name, machine, graph_name, engine):
    """One prior-work strategy (CSB/Galois/GraphMat/Ligra) measurement."""
    return measure_kernel(
        PRIOR_WORK[kernel_name](resolve_graph(graph), machine),
        graph_name=graph_name,
        engine=engine,
    )


SCALING_METHODS = (("Baseline", "baseline"), ("CB", "cb"), ("DPB", "dpb"))


def scaling_cell(n, degree, seed, machine, engine):
    """One x-value of figures 7/8: generate the graph, measure all methods.

    Grouping the three methods into one cell reuses the generated graph and
    keeps per-cell results plain data (picklable floats).
    """
    graph = build_csr(uniform_random_graph(n, degree, seed=seed))
    return {
        label: run_experiment(graph, method, machine=machine, engine=engine)
        .gail()
        .requests_per_edge
        for label, method in SCALING_METHODS
    }


def bin_width_cell(graph, width, machine, method, engine):
    """One (graph, width) point of the figure 9/10/11 sweeps (plain data)."""
    kernel = make_kernel(resolve_graph(graph), method, machine, bin_width=width)
    counters = kernel.measure(1, engine=engine)
    phases = pb_phase_times(kernel, counters)
    return {
        "width": width,
        "requests": counters.total_requests,
        "time": sum(phases.values()),
        "phases": phases,
    }
