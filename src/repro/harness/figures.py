"""Regeneration of the paper's figures (3 through 11) as data series.

Each figure is declared as an :class:`~repro.plan.spec.ExperimentSpec` —
the measurement cells it needs plus a ``build`` that shapes their
results into a :class:`FigureResult` (x values plus named series, which
renders to an aligned text table, the terminal stand-in for the paper's
plots).  The ``figure*_spec`` builders only *declare*; nothing is
simulated until the spec is compiled and executed through
:mod:`repro.plan`, which is also what deduplicates shared work: figures
4, 5 and 6 declare the same suite cells and a merged plan runs them
once, figures 9 and 10 share one bin-width sweep, and ``reproduce``
merges every artifact into a single plan.

The ``figure*`` functions are thin conveniences that compile and execute
a one-spec plan; pass ``workers``/``options``/``cache`` to reach the
sweep stack's parallelism, resilience, and warm-start knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph
from repro.harness.cells import (
    SCALING_METHODS,
    bin_width_cell,
    experiment_cell,
    scaling_cell,
)
from repro.memsim import DEFAULT_ENGINE
from repro.models.communication import ModelParams, paper_pull_reads
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.plan import Cell, ExperimentSpec, compile_plan, execute_plan
from repro.utils.tables import format_series

__all__ = [
    "FigureResult",
    "suite_cells",
    "figure3_spec",
    "figure4_spec",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "figure8_spec",
    "figure9_spec",
    "figure10_spec",
    "figure11_spec",
    "figure3_vertex_traffic",
    "figure4_speedup",
    "figure5_communication_reduction",
    "figure6_requests_per_edge",
    "figure7_scaling_vertices",
    "figure8_scaling_degree",
    "figure9_bin_width_communication",
    "figure10_bin_width_time",
    "figure11_phase_breakdown",
]


@dataclass(frozen=True)
class FigureResult:
    """Data behind one figure: x axis plus one column per plotted series."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]]

    def render(self) -> str:
        return format_series(self.x_label, self.x_values, self.series, title=self.title)


def run_spec(spec: ExperimentSpec, *, workers=None, options=None, cache=None):
    """Compile and execute a one-spec plan, returning the built artifact."""
    plan = compile_plan([spec])
    results = execute_plan(
        plan, workers=workers, options=options, cache=cache, label=spec.name
    )
    return results.artifact(spec.name)


def suite_cells(
    graphs: dict[str, CSRGraph],
    methods: tuple[str, ...],
    machine: MachineSpec,
    engine: str,
) -> dict:
    """The shared (graph, method) experiment cells of the suite artifacts.

    Figure 3 (baseline only), figures 4-6, table II (its baseline row)
    and table III all declare cells from this family, so a merged plan
    measures each (graph, method) pair exactly once.
    """
    return {
        (name, method): Cell(
            fn=experiment_cell, args=(graph, method, machine, name, engine)
        )
        for name, graph in graphs.items()
        for method in methods
    }


# ----------------------------------------------------------------------
# Figure 3 — vertex-value traffic share of the baseline
# ----------------------------------------------------------------------
def figure3_spec(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Measured and model-predicted % of baseline reads that are vertex traffic.

    The prediction uses the Section V uniform-random model with each
    graph's own (n, k): vertex reads = ``kn (1-c/n) + 3n/b`` of the total.
    High-locality layouts (web) beat the prediction; that *gap* is the
    measured locality.
    """

    def build(values) -> FigureResult:
        measured, predicted = [], []
        for name, graph in graphs.items():
            m = values[(name, "baseline")]
            measured.append(100.0 * m.counters.vertex_read_fraction())
            p = ModelParams(
                n=graph.num_vertices,
                k=max(graph.average_degree, 1e-9),
                b=machine.words_per_line,
                c=machine.cache_words,
            )
            vertex = p.miss_rate * p.m + 3.0 * p.n / p.b
            predicted.append(100.0 * vertex / paper_pull_reads(p))
        return FigureResult(
            title="Figure 3: vertex traffic as % of baseline memory reads",
            x_label="graph",
            x_values=list(graphs),
            series={"predicted %": predicted, "measured %": measured},
        )

    return ExperimentSpec(
        name="fig3",
        cells=suite_cells(graphs, ("baseline",), machine, engine),
        build=build,
    )


def figure3_vertex_traffic(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure3_spec(graphs, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


# ----------------------------------------------------------------------
# Figures 4-6 — blocking vs baseline across the suite
# ----------------------------------------------------------------------
def _suite_figure_spec(name, title, graphs, machine, engine, series_for) -> ExperimentSpec:
    """Common shape of figures 4-6: all four methods, one row per graph.

    ``series_for(values, name)`` maps the resolved measurements of one
    graph to its ``{series: value}`` contributions.
    """

    def build(values) -> FigureResult:
        series: dict[str, list[float]] = {}
        for graph_name in graphs:
            data = {
                method: values[(graph_name, method)]
                for method in ("baseline", "cb", "pb", "dpb")
            }
            for label, value in series_for(data).items():
                series.setdefault(label, []).append(value)
        return FigureResult(
            title=title, x_label="graph", x_values=list(graphs), series=series
        )

    return ExperimentSpec(
        name=name,
        cells=suite_cells(graphs, ("baseline", "cb", "pb", "dpb"), machine, engine),
        build=build,
    )


def figure4_spec(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Modelled execution-time speedup of CB/PB/DPB over the baseline."""

    def series_for(data):
        base = data["baseline"]
        return {
            "CB": data["cb"].speedup_over(base),
            "PB": data["pb"].speedup_over(base),
            "DPB": data["dpb"].speedup_over(base),
        }

    return _suite_figure_spec(
        "fig4",
        "Figure 4: execution-time speedup over baseline",
        graphs,
        machine,
        engine,
        series_for,
    )


def figure4_speedup(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure4_spec(graphs, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


def figure5_spec(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Communication-volume reduction of CB/PB/DPB over the baseline."""

    def series_for(data):
        base = data["baseline"]
        return {
            "CB": data["cb"].communication_reduction_over(base),
            "PB": data["pb"].communication_reduction_over(base),
            "DPB": data["dpb"].communication_reduction_over(base),
        }

    return _suite_figure_spec(
        "fig5",
        "Figure 5: communication-volume reduction over baseline",
        graphs,
        machine,
        engine,
        series_for,
    )


def figure5_communication_reduction(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure5_spec(graphs, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


def figure6_spec(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """GAIL memory requests per edge for all four strategies (Figure 6)."""

    def series_for(data):
        return {
            "Baseline": data["baseline"].gail().requests_per_edge,
            "CB": data["cb"].gail().requests_per_edge,
            "PB": data["pb"].gail().requests_per_edge,
            "DPB": data["dpb"].gail().requests_per_edge,
        }

    return _suite_figure_spec(
        "fig6",
        "Figure 6: memory requests per edge (GAIL)",
        graphs,
        machine,
        engine,
        series_for,
    )


def figure6_requests_per_edge(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure6_spec(graphs, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


# ----------------------------------------------------------------------
# Figures 7-8 — communication efficiency vs graph shape (urand sweeps)
# ----------------------------------------------------------------------
def figure7_spec(
    vertex_counts: list[int],
    *,
    degree: float = 16.0,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 7,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Requests/edge for uniform random graphs of fixed degree, varying n.

    The paper's Figure 7 (1 M - 512 M vertices at degree 16): baseline wins
    while vertex values fit in cache, CB wins mid-range, DPB's flat curve
    wins for large graphs.
    """
    cells = {
        n: Cell(fn=scaling_cell, args=(n, degree, seed + i, machine, engine))
        for i, n in enumerate(vertex_counts)
    }

    def build(values) -> FigureResult:
        series = {
            label: [values[n][label] for n in vertex_counts]
            for label, _ in SCALING_METHODS
        }
        return FigureResult(
            title=f"Figure 7: requests/edge, urand degree={degree}, varying vertices",
            x_label="vertices",
            x_values=list(vertex_counts),
            series=series,
        )

    return ExperimentSpec(name="fig7", cells=cells, build=build)


def figure7_scaling_vertices(
    vertex_counts: list[int],
    *,
    degree: float = 16.0,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 7,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure7_spec(
            vertex_counts, degree=degree, machine=machine, seed=seed, engine=engine
        ),
        workers=workers,
        options=options,
        cache=cache,
    )


def figure8_spec(
    degrees: list[float],
    *,
    num_vertices: int = 131072,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 8,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Requests/edge for uniform random graphs of fixed n, varying degree.

    Figure 8 (128 M vertices, k = 4..48): CB amortizes its per-block
    compulsory traffic better as density grows; the paper finds DPB
    communicates less up to k ~ 36.
    """
    cells = {
        k: Cell(fn=scaling_cell, args=(num_vertices, k, seed + i, machine, engine))
        for i, k in enumerate(degrees)
    }

    def build(values) -> FigureResult:
        series = {
            label: [values[k][label] for k in degrees]
            for label, _ in SCALING_METHODS
        }
        return FigureResult(
            title=f"Figure 8: requests/edge, urand n={num_vertices}, varying degree",
            x_label="degree",
            x_values=list(degrees),
            series=series,
        )

    return ExperimentSpec(name="fig8", cells=cells, build=build)


def figure8_scaling_degree(
    degrees: list[float],
    *,
    num_vertices: int = 131072,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 8,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure8_spec(
            degrees,
            num_vertices=num_vertices,
            machine=machine,
            seed=seed,
            engine=engine,
        ),
        workers=workers,
        options=options,
        cache=cache,
    )


# ----------------------------------------------------------------------
# Figures 9-11 — bin-width sweeps
# ----------------------------------------------------------------------
def bin_width_cells(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec,
    method: str,
    engine: str,
) -> dict:
    """The (graph, width) sweep cells shared by figures 9 and 10."""
    return {
        (name, width): Cell(
            fn=bin_width_cell, args=(graph, width, machine, method, engine)
        )
        for name, graph in graphs.items()
        for width in bin_widths
    }


def _bin_width_figure_spec(
    name, title, value_key, graphs, bin_widths, machine, method, engine
) -> ExperimentSpec:
    """Figures 9/10: one normalized per-graph series over the same sweep."""

    def build(values) -> FigureResult:
        series = {}
        for graph_name in graphs:
            rows = [values[(graph_name, width)] for width in bin_widths]
            numbers = [row[value_key] for row in rows]
            peak = max(numbers)
            series[graph_name] = [v / peak for v in numbers]
        return FigureResult(
            title=title,
            x_label="bin width (slice bytes)",
            x_values=[w * 4 for w in bin_widths],
            series=series,
        )

    return ExperimentSpec(
        name=name,
        cells=bin_width_cells(graphs, bin_widths, machine, method, engine),
        build=build,
    )


def figure9_spec(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Figure 9: PB communication vs bin width, normalized per graph to the
    largest-width (unblocked-like) value."""
    return _bin_width_figure_spec(
        "fig9",
        "Figure 9: communication vs bin width (normalized to worst width)",
        "requests",
        graphs,
        bin_widths,
        machine,
        method,
        engine,
    )


def figure9_bin_width_communication(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure9_spec(graphs, bin_widths, machine, method=method, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


def figure10_spec(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Figure 10: PB modelled time vs bin width, normalized per graph."""
    return _bin_width_figure_spec(
        "fig10",
        "Figure 10: execution time vs bin width (normalized to worst width)",
        "time",
        graphs,
        bin_widths,
        machine,
        method,
        engine,
    )


def figure10_bin_width_time(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure10_spec(graphs, bin_widths, machine, method=method, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )


def figure11_spec(
    graph: CSRGraph,
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> ExperimentSpec:
    """Figure 11: DPB binning vs accumulate time on urand across bin widths.

    Small bins thrash the L1 with insertion points (binning slows); large
    bins overflow the LLC with sums slices (accumulate slows).  The chosen
    width balances the two.  Declares the same cell family as the figure
    9/10 sweep (method "dpb"), so a plan over the same graph shares them.
    """
    cells = {
        width: Cell(fn=bin_width_cell, args=(graph, width, machine, "dpb", engine))
        for width in bin_widths
    }

    def build(values) -> FigureResult:
        binning = [values[width]["phases"]["binning"] for width in bin_widths]
        accumulate = [values[width]["phases"]["accumulate"] for width in bin_widths]
        return FigureResult(
            title="Figure 11: DPB phase time breakdown vs bin width (urand)",
            x_label="bin width (slice bytes)",
            x_values=[w * 4 for w in bin_widths],
            series={"binning": binning, "accumulate": accumulate},
        )

    return ExperimentSpec(name="fig11", cells=cells, build=build)


def figure11_phase_breakdown(
    graph: CSRGraph,
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    workers=None,
    options=None,
    cache=None,
) -> FigureResult:
    return run_spec(
        figure11_spec(graph, bin_widths, machine, engine=engine),
        workers=workers,
        options=options,
        cache=cache,
    )
