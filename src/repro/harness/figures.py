"""Regeneration of the paper's figures (3 through 11) as data series.

Each ``figure*`` function runs the relevant experiments and returns a
:class:`FigureResult` — x values plus named series — which renders to an
aligned text table (the terminal stand-in for the paper's plots).  The
benches print these and assert the paper's qualitative shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.builder import build_csr
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import uniform_random_graph
from repro.harness.checkpoint import open_checkpoint
from repro.harness.experiment import run_experiment
from repro.kernels.pagerank import make_kernel
from repro.memsim import DEFAULT_ENGINE
from repro.models.communication import ModelParams, paper_pull_reads
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.models.performance import pb_phase_times
from repro.parallel.resilience import SweepOptions
from repro.parallel.sweep import SweepCell, run_cells
from repro.utils.tables import format_series

__all__ = [
    "FigureResult",
    "suite_measurements",
    "figure3_vertex_traffic",
    "figure4_speedup",
    "figure5_communication_reduction",
    "figure6_requests_per_edge",
    "figure7_scaling_vertices",
    "figure8_scaling_degree",
    "figure9_bin_width_communication",
    "figure10_bin_width_time",
    "figure11_phase_breakdown",
]


@dataclass(frozen=True)
class FigureResult:
    """Data behind one figure: x axis plus one column per plotted series."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]]

    def render(self) -> str:
        return format_series(self.x_label, self.x_values, self.series, title=self.title)


# ----------------------------------------------------------------------
# Figure 3 — vertex-value traffic share of the baseline
# ----------------------------------------------------------------------
def figure3_vertex_traffic(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> FigureResult:
    """Measured and model-predicted % of baseline reads that are vertex traffic.

    The prediction uses the Section V uniform-random model with each
    graph's own (n, k): vertex reads = ``kn (1-c/n) + 3n/b`` of the total.
    High-locality layouts (web) beat the prediction; that *gap* is the
    measured locality.
    """
    measured, predicted = [], []
    for name, graph in graphs.items():
        m = run_experiment(graph, "baseline", machine=machine, graph_name=name, engine=engine)
        measured.append(100.0 * m.counters.vertex_read_fraction())
        p = ModelParams(
            n=graph.num_vertices,
            k=max(graph.average_degree, 1e-9),
            b=machine.words_per_line,
            c=machine.cache_words,
        )
        vertex = p.miss_rate * p.m + 3.0 * p.n / p.b
        predicted.append(100.0 * vertex / paper_pull_reads(p))
    return FigureResult(
        title="Figure 3: vertex traffic as % of baseline memory reads",
        x_label="graph",
        x_values=list(graphs),
        series={"predicted %": predicted, "measured %": measured},
    )


def _run_sweep(
    cells: list[SweepCell],
    *,
    label: str,
    workers: int | None,
    options: SweepOptions | None,
):
    """Run one figure sweep through the resilient executor.

    ``options`` (see :class:`repro.parallel.resilience.SweepOptions`)
    carries the reproduce driver's retry policy, fault plan, checkpoint
    directory, and shared stats; each sweep label gets its own
    checkpoint file so ``--resume`` skips exactly the cells this sweep
    already completed.
    """
    if options is None:
        return run_cells(cells, workers=workers, label=label)
    checkpoint = (
        open_checkpoint(options.checkpoint_dir, label)
        if options.checkpoint_dir
        else None
    )
    return run_cells(
        cells,
        workers=options.workers if options.workers is not None else workers,
        label=label,
        policy=options.policy,
        fault_plan=options.fault_plan,
        checkpoint=checkpoint,
        stats=options.stats,
    )


# ----------------------------------------------------------------------
# Figures 4-6 — blocking vs baseline across the suite
# ----------------------------------------------------------------------
def _experiment_cell(graph, method, machine, graph_name, engine):
    """Module-level cell body so :mod:`repro.parallel.sweep` can pickle it."""
    return run_experiment(
        graph, method, machine=machine, graph_name=graph_name, engine=engine
    )


def suite_measurements(
    graphs: dict[str, CSRGraph],
    methods: tuple[str, ...] = ("baseline", "cb", "pb", "dpb"),
    machine: MachineSpec = SIMULATED_MACHINE,
    engine: str = DEFAULT_ENGINE,
    *,
    workers: int | None = None,
    options: SweepOptions | None = None,
):
    """Measure every (graph, method) pair once.

    Figures 4, 5 and 6 all plot the same underlying measurements; run this
    once and pass the result to each via ``_measurements`` to avoid
    re-simulating.  ``workers`` fans the independent (graph, method) cells
    across processes (see :func:`repro.parallel.sweep.run_cells`); results
    are identical to a serial run.  ``options`` adds retry, checkpoint,
    and fault-injection behaviour (see :func:`_run_sweep`).
    """
    cells = [
        SweepCell(
            key=(name, method),
            fn=_experiment_cell,
            args=(graph, method, machine, name, engine),
        )
        for name, graph in graphs.items()
        for method in methods
    ]
    results = _run_sweep(cells, label="suite", workers=workers, options=options)
    out: dict[str, dict[str, object]] = {name: {} for name in graphs}
    for (name, method), m in results.items():
        out[name][method] = m
    return out


def figure4_speedup(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    _measurements: dict | None = None,
) -> FigureResult:
    """Modelled execution-time speedup of CB/PB/DPB over the baseline."""
    data = _measurements or suite_measurements(
        graphs, ("baseline", "cb", "pb", "dpb"), machine, engine
    )
    series = {m: [] for m in ("CB", "PB", "DPB")}
    for name in graphs:
        base = data[name]["baseline"]
        series["CB"].append(data[name]["cb"].speedup_over(base))
        series["PB"].append(data[name]["pb"].speedup_over(base))
        series["DPB"].append(data[name]["dpb"].speedup_over(base))
    return FigureResult(
        title="Figure 4: execution-time speedup over baseline",
        x_label="graph",
        x_values=list(graphs),
        series=series,
    )


def figure5_communication_reduction(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    _measurements: dict | None = None,
) -> FigureResult:
    """Communication-volume reduction of CB/PB/DPB over the baseline."""
    data = _measurements or suite_measurements(
        graphs, ("baseline", "cb", "pb", "dpb"), machine, engine
    )
    series = {m: [] for m in ("CB", "PB", "DPB")}
    for name in graphs:
        base = data[name]["baseline"]
        series["CB"].append(data[name]["cb"].communication_reduction_over(base))
        series["PB"].append(data[name]["pb"].communication_reduction_over(base))
        series["DPB"].append(data[name]["dpb"].communication_reduction_over(base))
    return FigureResult(
        title="Figure 5: communication-volume reduction over baseline",
        x_label="graph",
        x_values=list(graphs),
        series=series,
    )


def figure6_requests_per_edge(
    graphs: dict[str, CSRGraph],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
    _measurements: dict | None = None,
) -> FigureResult:
    """GAIL memory requests per edge for all four strategies (Figure 6)."""
    data = _measurements or suite_measurements(
        graphs, ("baseline", "cb", "pb", "dpb"), machine, engine
    )
    series = {m: [] for m in ("Baseline", "CB", "PB", "DPB")}
    for name in graphs:
        series["Baseline"].append(data[name]["baseline"].gail().requests_per_edge)
        series["CB"].append(data[name]["cb"].gail().requests_per_edge)
        series["PB"].append(data[name]["pb"].gail().requests_per_edge)
        series["DPB"].append(data[name]["dpb"].gail().requests_per_edge)
    return FigureResult(
        title="Figure 6: memory requests per edge (GAIL)",
        x_label="graph",
        x_values=list(graphs),
        series=series,
    )


# ----------------------------------------------------------------------
# Figures 7-8 — communication efficiency vs graph shape (urand sweeps)
# ----------------------------------------------------------------------
_SCALING_METHODS = (("Baseline", "baseline"), ("CB", "cb"), ("DPB", "dpb"))


def _scaling_cell(n, degree, seed, machine, engine):
    """One x-value of figures 7/8: generate the graph, measure all methods.

    Grouping the three methods into one cell reuses the generated graph and
    keeps per-cell results plain data (picklable floats).
    """
    graph = build_csr(uniform_random_graph(n, degree, seed=seed))
    return {
        label: run_experiment(graph, method, machine=machine, engine=engine)
        .gail()
        .requests_per_edge
        for label, method in _SCALING_METHODS
    }


def figure7_scaling_vertices(
    vertex_counts: list[int],
    *,
    degree: float = 16.0,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 7,
    engine: str = DEFAULT_ENGINE,
    workers: int | None = None,
    options: SweepOptions | None = None,
) -> FigureResult:
    """Requests/edge for uniform random graphs of fixed degree, varying n.

    The paper's Figure 7 (1 M - 512 M vertices at degree 16): baseline wins
    while vertex values fit in cache, CB wins mid-range, DPB's flat curve
    wins for large graphs.
    """
    cells = [
        SweepCell(key=n, fn=_scaling_cell, args=(n, degree, seed + i, machine, engine))
        for i, n in enumerate(vertex_counts)
    ]
    results = _run_sweep(cells, label="fig7", workers=workers, options=options)
    series = {
        label: [results[n][label] for n in vertex_counts]
        for label, _ in _SCALING_METHODS
    }
    return FigureResult(
        title=f"Figure 7: requests/edge, urand degree={degree}, varying vertices",
        x_label="vertices",
        x_values=list(vertex_counts),
        series=series,
    )


def figure8_scaling_degree(
    degrees: list[float],
    *,
    num_vertices: int = 131072,
    machine: MachineSpec = SIMULATED_MACHINE,
    seed: int = 8,
    engine: str = DEFAULT_ENGINE,
    workers: int | None = None,
    options: SweepOptions | None = None,
) -> FigureResult:
    """Requests/edge for uniform random graphs of fixed n, varying degree.

    Figure 8 (128 M vertices, k = 4..48): CB amortizes its per-block
    compulsory traffic better as density grows; the paper finds DPB
    communicates less up to k ~ 36.
    """
    cells = [
        SweepCell(
            key=k, fn=_scaling_cell, args=(num_vertices, k, seed + i, machine, engine)
        )
        for i, k in enumerate(degrees)
    ]
    results = _run_sweep(cells, label="fig8", workers=workers, options=options)
    series = {
        label: [results[k][label] for k in degrees] for label, _ in _SCALING_METHODS
    }
    return FigureResult(
        title=f"Figure 8: requests/edge, urand n={num_vertices}, varying degree",
        x_label="degree",
        x_values=list(degrees),
        series=series,
    )


# ----------------------------------------------------------------------
# Figures 9-11 — bin-width sweeps
# ----------------------------------------------------------------------
def _bin_width_cell(graph, width, machine, method, engine):
    """One (graph, width) cell of the Figure 9/10 sweep (plain-data result)."""
    kernel = make_kernel(graph, method, machine, bin_width=width)
    counters = kernel.measure(1, engine=engine)
    phases = pb_phase_times(kernel, counters)
    return {
        "width": width,
        "requests": counters.total_requests,
        "time": sum(phases.values()),
        "phases": phases,
    }


def _bin_width_sweep(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec,
    method: str,
    engine: str,
    workers: int | None = None,
    options: SweepOptions | None = None,
):
    """(requests, total_time, phase_times) per graph per width."""
    cells = [
        SweepCell(
            key=(name, width),
            fn=_bin_width_cell,
            args=(graph, width, machine, method, engine),
        )
        for name, graph in graphs.items()
        for width in bin_widths
    ]
    rows = _run_sweep(cells, label="binwidth", workers=workers, options=options)
    return {
        name: [rows[(name, width)] for width in bin_widths] for name in graphs
    }


def figure9_bin_width_communication(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
    _sweep_cache: dict | None = None,
) -> FigureResult:
    """Figure 9: PB communication vs bin width, normalized per graph to the
    largest-width (unblocked-like) value."""
    sweep = _sweep_cache or _bin_width_sweep(graphs, bin_widths, machine, method, engine)
    series = {}
    for name, rows in sweep.items():
        values = [row["requests"] for row in rows]
        peak = max(values)
        series[name] = [v / peak for v in values]
    return FigureResult(
        title="Figure 9: communication vs bin width (normalized to worst width)",
        x_label="bin width (slice bytes)",
        x_values=[w * 4 for w in bin_widths],
        series=series,
    )


def figure10_bin_width_time(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
    _sweep_cache: dict | None = None,
) -> FigureResult:
    """Figure 10: PB modelled time vs bin width, normalized per graph."""
    sweep = _sweep_cache or _bin_width_sweep(graphs, bin_widths, machine, method, engine)
    series = {}
    for name, rows in sweep.items():
        values = [row["time"] for row in rows]
        peak = max(values)
        series[name] = [v / peak for v in values]
    return FigureResult(
        title="Figure 10: execution time vs bin width (normalized to worst width)",
        x_label="bin width (slice bytes)",
        x_values=[w * 4 for w in bin_widths],
        series=series,
    )


def bin_width_sweep(
    graphs: dict[str, CSRGraph],
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    method: str = "pb",
    engine: str = DEFAULT_ENGINE,
    workers: int | None = None,
    options: SweepOptions | None = None,
):
    """Public access to the shared Figure 9/10 sweep (run once, use twice)."""
    return _bin_width_sweep(
        graphs, bin_widths, machine, method, engine, workers, options
    )


def figure11_phase_breakdown(
    graph: CSRGraph,
    bin_widths: list[int],
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    engine: str = DEFAULT_ENGINE,
) -> FigureResult:
    """Figure 11: DPB binning vs accumulate time on urand across bin widths.

    Small bins thrash the L1 with insertion points (binning slows); large
    bins overflow the LLC with sums slices (accumulate slows).  The chosen
    width balances the two.
    """
    binning, accumulate = [], []
    for width in bin_widths:
        kernel = make_kernel(graph, "dpb", machine, bin_width=width)
        counters = kernel.measure(1, engine=engine)
        phases = pb_phase_times(kernel, counters)
        binning.append(phases["binning"])
        accumulate.append(phases["accumulate"])
    return FigureResult(
        title="Figure 11: DPB phase time breakdown vs bin width (urand)",
        x_label="bin width (slice bytes)",
        x_values=[w * 4 for w in bin_widths],
        series={"binning": binning, "accumulate": accumulate},
    )
