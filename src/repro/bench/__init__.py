"""Bench-regression sentinel: gate the ``BENCH_*.json`` trajectory.

The benchmark suite emits schema-versioned ``BENCH_<name>.json``
documents (``benchmarks/emit_bench.py``) that, committed at the repo
root, form the cross-commit performance trajectory.  Before this package
they were an unread artifact; :mod:`repro.bench.sentinel` turns them
into a CI gate: ``repro-pb bench --check`` compares freshly measured
numbers against the committed baselines with configurable noise
tolerances and exits nonzero naming every metric that moved beyond its
tolerance.

Policy (mirrors ``docs/metrics_schema.md``): **simulated quantities are
deterministic** — DRAM line counts, modelled times, cell counts, dedup
ratios reproduce bit-for-bit on any host — so they are gated two-sided
at a tight default tolerance.  **Host wall-clock metrics**
(``wall_seconds/*``, ``*accesses_per_sec``, kernel/engine host timings)
vary machine to machine and are *reported but never gated*, exactly as
the schema doc forbids regression-gating wall time.

This lives outside :mod:`repro.obs` (which imports nothing from the rest
of ``repro``) because re-measuring a baseline means running the plan
layer and the harness.
"""

from repro.bench.sentinel import (
    BENCH_GLOB,
    WALL_CLOCK_PATTERNS,
    BenchComparison,
    MetricCheck,
    compare_documents,
    load_bench_documents,
    measure_plan_dedup,
    parse_noise_overrides,
    run_bench_command,
)

__all__ = [
    "BENCH_GLOB",
    "WALL_CLOCK_PATTERNS",
    "BenchComparison",
    "MetricCheck",
    "compare_documents",
    "load_bench_documents",
    "measure_plan_dedup",
    "parse_noise_overrides",
    "run_bench_command",
]
