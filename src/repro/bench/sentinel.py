"""The bench-regression sentinel behind ``repro-pb bench``.

Three layers, separable for testing:

* **loading** — :func:`load_bench_documents` scans a directory for
  ``BENCH_*.json`` documents, rejecting unknown schema *majors* (the
  committed baselines span several minors of major 1; all load);
* **comparison** — :func:`compare_documents` pairs baseline and current
  documents by bench name and checks every shared metric against its
  tolerance: gated metrics regress when ``|current - baseline|`` exceeds
  ``tolerance * max(|baseline|, tiny)``, wall-clock metrics (see
  :data:`WALL_CLOCK_PATTERNS`) are always reported as ``ungated``;
* **measurement** — :func:`measure_plan_dedup` re-runs the plan-dedup
  benchmark in-process (same scale, seed, and metric names as
  ``benchmarks/bench_plan_dedup.py``) so a bare ``repro-pb bench
  --check`` needs no pytest invocation to have fresh numbers.

Tolerances come from ``--tolerance`` (default) plus repeatable
``--noise PATTERN=TOL`` overrides, matched with :mod:`fnmatch` against
``"<bench>/<metric>"`` — most-specific-wins is simply last-match-wins,
and an override can also *gate* a pattern the defaults leave ungated by
matching it before the wall-clock check (overrides take precedence).
"""

from __future__ import annotations

import fnmatch
import glob
import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.report import SCHEMA_VERSION

__all__ = [
    "BENCH_GLOB",
    "WALL_CLOCK_PATTERNS",
    "MetricCheck",
    "BenchComparison",
    "load_bench_documents",
    "parse_noise_overrides",
    "compare_documents",
    "measure_plan_dedup",
    "run_bench_command",
]

#: File pattern of bench documents (``benchmarks/emit_bench.py``).
BENCH_GLOB = "BENCH_*.json"

#: ``"<bench>/<metric>"`` patterns that are host wall-clock measurements:
#: reported in every comparison, never gated (``docs/metrics_schema.md``
#: forbids regression-gating wall time — it measures the host, not the
#: code).  ``engine_speed`` and ``kernel_speed`` are entirely host-timing
#: benches; everything else is simulated and deterministic.
WALL_CLOCK_PATTERNS = (
    "*/wall_seconds/*",
    "*/host_rss/*",
    "*accesses_per_sec*",
    "*_per_sec*",
    "*seconds_per_iter*",
    "engine_speed/*",
    "kernel_speed/*",
)

#: Denominator floor so a zero baseline still admits a tolerance band.
_TINY = 1e-12


@dataclass(frozen=True)
class MetricCheck:
    """Verdict on one ``bench/metric`` pair."""

    bench: str
    metric: str
    baseline: float | None
    current: float | None
    tolerance: float
    status: str  # ok | regression | ungated | missing | new

    @property
    def key(self) -> str:
        return f"{self.bench}/{self.metric}"

    @property
    def relative_delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return (self.current - self.baseline) / max(abs(self.baseline), _TINY)

    def as_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "tolerance": self.tolerance,
            "relative_delta": self.relative_delta,
            "status": self.status,
        }


@dataclass
class BenchComparison:
    """All checks of one sentinel run plus the pairing leftovers."""

    checks: list[MetricCheck] = field(default_factory=list)
    baseline_only: list[str] = field(default_factory=list)  # bench names
    current_only: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench_comparison",
            "checks": [c.as_dict() for c in self.checks],
            "baseline_only": list(self.baseline_only),
            "current_only": list(self.current_only),
            "regressions": [c.key for c in self.regressions],
            "ok": self.ok,
        }


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_bench_documents(directory: str) -> dict[str, dict[str, Any]]:
    """``{bench_name: document}`` for every bench file in ``directory``.

    Malformed files and unknown schema majors raise: a sentinel that
    silently skips a baseline would pass on exactly the run it should
    have caught.
    """
    documents: dict[str, dict[str, Any]] = {}
    major = SCHEMA_VERSION.split(".", 1)[0]
    for path in sorted(glob.glob(os.path.join(directory, BENCH_GLOB))):
        with open(path) as handle:
            document = json.load(handle)
        if document.get("kind") != "bench":
            raise ValueError(f"{path}: not a bench document")
        version = str(document.get("schema_version", ""))
        if version.split(".", 1)[0] != major:
            raise ValueError(
                f"{path}: unsupported bench schema {version!r} "
                f"(this build reads major {major})"
            )
        name = document.get("bench")
        if not name:
            raise ValueError(f"{path}: bench document without a bench name")
        documents[name] = document
    return documents


def parse_noise_overrides(entries: list[str]) -> list[tuple[str, float]]:
    """Parse repeated ``--noise PATTERN=TOL`` flags, order-preserving."""
    overrides: list[tuple[str, float]] = []
    for entry in entries:
        pattern, sep, value = entry.rpartition("=")
        if not sep or not pattern:
            raise ValueError(
                f"malformed --noise entry {entry!r} (expected PATTERN=TOL)"
            )
        tolerance = float(value)
        if tolerance < 0 or not math.isfinite(tolerance):
            raise ValueError(f"--noise tolerance must be finite and >= 0: {entry!r}")
        overrides.append((pattern, tolerance))
    return overrides


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _tolerance_for(
    key: str, default: float, overrides: list[tuple[str, float]]
) -> tuple[float, bool]:
    """``(tolerance, gated)`` for ``key`` — overrides beat the wall list."""
    for pattern, tolerance in reversed(overrides):  # last match wins
        if fnmatch.fnmatch(key, pattern):
            return tolerance, True
    if any(fnmatch.fnmatch(key, pattern) for pattern in WALL_CLOCK_PATTERNS):
        return default, False
    return default, True


def compare_documents(
    baselines: dict[str, dict[str, Any]],
    currents: dict[str, dict[str, Any]],
    *,
    tolerance: float = 0.01,
    overrides: list[tuple[str, float]] | None = None,
) -> BenchComparison:
    """Check every current metric against its committed baseline.

    The gate is two-sided: simulated metrics are deterministic, so *any*
    movement beyond tolerance is a behavior change worth a red build —
    an unexplained improvement usually means the bench is no longer
    measuring what the baseline did.
    """
    overrides = overrides or []
    comparison = BenchComparison(
        baseline_only=sorted(set(baselines) - set(currents)),
        current_only=sorted(set(currents) - set(baselines)),
    )
    for bench in sorted(set(baselines) & set(currents)):
        base_metrics = baselines[bench].get("metrics", {})
        cur_metrics = currents[bench].get("metrics", {})
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            key = f"{bench}/{metric}"
            tol, gated = _tolerance_for(key, tolerance, overrides)
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            if base is None or cur is None:
                # A gated metric appearing or vanishing is a shape
                # change, not noise — red build; ungated ones are only
                # noted.
                if gated:
                    status = "regression"
                else:
                    status = "missing" if cur is None else "new"
                comparison.checks.append(
                    MetricCheck(bench, metric, base, cur, tol, status)
                )
                continue
            base = float(base)
            cur = float(cur)
            if not gated:
                status = "ungated"
            elif abs(cur - base) <= tol * max(abs(base), _TINY):
                status = "ok"
            else:
                status = "regression"
            comparison.checks.append(
                MetricCheck(bench, metric, base, cur, tol, status)
            )
    return comparison


# ----------------------------------------------------------------------
# in-process measurement (the bare ``bench --check`` path)
# ----------------------------------------------------------------------
#: Kept identical to benchmarks/bench_plan_dedup.py so the in-process
#: rerun is comparable against the committed BENCH_plan_dedup.json.
PLAN_DEDUP_SCALE = 0.25
PLAN_DEDUP_SEED = 42


def measure_plan_dedup(*, workers: int | None = None) -> dict[str, Any]:
    """Re-measure the plan-dedup bench; returns a bench document.

    Compiles the suite-family artifacts (tables II-III, figures 3-6) at
    the bench's scale, executes the plan cold against a throwaway cache,
    then warm — the same protocol (and the same metric names) as
    ``benchmarks/bench_plan_dedup.py::test_plan_dedup``.  The cell
    counts and dedup ratio are deterministic; the wall times land in the
    ungated ``wall_seconds/*`` metrics.
    """
    from repro.graphs import load_suite
    from repro.harness.cache import MeasurementCache
    from repro.harness.figures import (
        figure3_spec,
        figure4_spec,
        figure5_spec,
        figure6_spec,
    )
    from repro.harness.tables import table2_spec, table3_spec
    from repro.plan import compile_plan, execute_plan

    graphs = load_suite(seed=PLAN_DEDUP_SEED, scale=PLAN_DEDUP_SCALE)

    def specs():
        return [
            table2_spec(graphs["urand"]),
            table3_spec(graphs),
            figure3_spec(graphs),
            figure4_spec(graphs),
            figure5_spec(graphs),
            figure6_spec(graphs),
        ]

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache = MeasurementCache(os.path.join(tmp, "cache"))
        cold_plan = compile_plan(specs())
        start = time.perf_counter()
        execute_plan(cold_plan, workers=workers, cache=cache, label="dedup_cold")
        cold_seconds = time.perf_counter() - start
        warm_plan = compile_plan(specs())
        start = time.perf_counter()
        execute_plan(warm_plan, workers=workers, cache=cache, label="dedup_warm")
        warm_seconds = time.perf_counter() - start

    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "bench": "plan_dedup",
        "metrics": {
            "cells/requested": float(cold_plan.cells_requested),
            "cells/unique": float(cold_plan.cells_unique),
            "cells/executed_cold": float(cold_plan.stats.executed),
            "cells/executed_warm": float(warm_plan.stats.executed),
            "cells/cache_hits_warm": float(warm_plan.stats.cache_hits),
            "dedup_ratio": float(cold_plan.dedup_ratio),
            "wall_seconds/cold": float(cold_seconds),
            "wall_seconds/warm": float(warm_seconds),
        },
        "meta": {
            "source": "repro-pb bench (in-process re-measure)",
            "scale": PLAN_DEDUP_SCALE,
            "units": "cells / seconds",
        },
    }


# ----------------------------------------------------------------------
# CLI entry (called from repro.cli._cmd_bench)
# ----------------------------------------------------------------------
def _repo_root() -> str:
    """The checkout root: where the committed BENCH_*.json baselines live."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )


def run_bench_command(args) -> int:
    """Implement ``repro-pb bench [--check] [...]``; returns exit code."""
    from repro.utils import format_table

    try:
        overrides = parse_noise_overrides(args.noise)
    except ValueError as exc:
        print(f"repro-pb bench: error: {exc}")
        return 2
    baseline_dir = args.baseline_dir or _repo_root()
    try:
        baselines = load_bench_documents(baseline_dir)
    except (OSError, ValueError) as exc:
        print(f"repro-pb bench: error: {exc}")
        return 2
    if not baselines:
        print(f"repro-pb bench: error: no {BENCH_GLOB} baselines in {baseline_dir}")
        return 2

    if args.current:
        try:
            currents = load_bench_documents(args.current)
        except (OSError, ValueError) as exc:
            print(f"repro-pb bench: error: {exc}")
            return 2
        if not currents:
            print(f"repro-pb bench: error: no {BENCH_GLOB} documents in {args.current}")
            return 2
    else:
        print("re-measuring plan_dedup in-process (no --current given)...")
        fresh = measure_plan_dedup()
        currents = {fresh["bench"]: fresh}
        # Bare mode compares only what it measured.
        baselines = {k: v for k, v in baselines.items() if k in currents}
        if not baselines:
            print(
                "repro-pb bench: error: no committed baseline for "
                f"'plan_dedup' in {baseline_dir}"
            )
            return 2

    comparison = compare_documents(
        baselines, currents, tolerance=args.tolerance, overrides=overrides
    )

    rows = []
    for check in comparison.checks:
        delta = check.relative_delta
        rows.append(
            [
                check.key,
                "-" if check.baseline is None else f"{check.baseline:g}",
                "-" if check.current is None else f"{check.current:g}",
                "-" if delta is None else f"{delta:+.2%}",
                f"{check.tolerance:g}",
                check.status,
            ]
        )
    print(
        format_table(
            ["bench/metric", "baseline", "current", "delta", "tol", "status"],
            rows,
            title=f"bench sentinel (default tolerance {args.tolerance:g}, "
            "wall-clock metrics ungated)",
        )
    )
    for name in comparison.baseline_only:
        print(f"warning: baseline '{name}' has no current document")
    for name in comparison.current_only:
        print(f"warning: current '{name}' has no committed baseline")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(comparison.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[comparison written to {args.json}]")

    regressions = comparison.regressions
    if regressions:
        print(f"\n{len(regressions)} metric(s) beyond tolerance:")
        for check in regressions:
            base = "-" if check.baseline is None else f"{check.baseline:g}"
            cur = "-" if check.current is None else f"{check.current:g}"
            print(f"  {check.key}: {base} -> {cur} (tolerance {check.tolerance:g})")
        return 1 if args.check else 0
    print("\nno bench regressions")
    return 0
