"""Memory access traces: the interface between kernels and cache engines.

A *trace* is a sequence of :class:`TraceChunk` objects, each describing a
homogeneous burst of cache-line accesses: all reads or all writes, all
belonging to one logical *stream* (edge index, adjacency, contributions,
sums, bins, ...).  Kernels in :mod:`repro.kernels` emit traces; engines in
:mod:`repro.memsim.cache` consume them and count DRAM line transfers, the
paper's "memory requests" metric.

Chunks come in two access modes:

* ``SEQUENTIAL`` — a streaming scan of distinct, consecutive lines that the
  program never revisits (CSR adjacency, edge-list blocks, bins).  Engines
  count these analytically (one compulsory transfer per line) and do **not**
  install them in the simulated cache.  This encodes the standard
  no-pollution assumption for streaming data on a high-associativity LLC,
  and matches the paper's model, which charges streaming structures exactly
  ``words/b`` lines (Section V).
* ``IRREGULAR`` — data-dependent accesses (contribution gathers, sums
  scatters) that go through the simulated LRU state access by access.

Addresses are *cache-line indices* in a flat word-addressed space managed by
:class:`AddressSpace`, which assigns each named array a line-aligned region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_power_of_two

__all__ = [
    "AccessMode",
    "Stream",
    "STREAM_CATEGORY",
    "TraceChunk",
    "Region",
    "AddressSpace",
    "sequential_chunk",
    "irregular_chunk",
    "collapse_consecutive",
    "coalesce_chunks",
]


class AccessMode(enum.Enum):
    """How a chunk's lines interact with the simulated cache."""

    SEQUENTIAL = "sequential"
    IRREGULAR = "irregular"


class Stream(enum.Enum):
    """Logical data stream an access belongs to.

    The edge/vertex split is what Figure 3 plots; the finer breakdown keys
    the per-structure accounting in Table III-style reports.
    """

    EDGE_INDEX = "edge_index"  #: CSR offsets (64-bit pointers, 2 words each)
    EDGE_ADJ = "edge_adj"  #: CSR targets / edge-list blocks
    VERTEX_SCORES = "vertex_scores"  #: PR[:] array
    VERTEX_CONTRIB = "vertex_contrib"  #: contributions array
    VERTEX_SUMS = "vertex_sums"  #: sums array
    VERTEX_DEGREE = "vertex_degree"  #: out-degree array
    BIN_DATA = "bin_data"  #: (contribution, destination) pairs or contributions
    BIN_DEST = "bin_dest"  #: DPB's reusable destination-index arrays
    OTHER = "other"


#: Coarse category per stream: "edge", "vertex", or "bin" traffic.
STREAM_CATEGORY: dict[Stream, str] = {
    Stream.EDGE_INDEX: "edge",
    Stream.EDGE_ADJ: "edge",
    Stream.VERTEX_SCORES: "vertex",
    Stream.VERTEX_CONTRIB: "vertex",
    Stream.VERTEX_SUMS: "vertex",
    Stream.VERTEX_DEGREE: "vertex",
    Stream.BIN_DATA: "bin",
    Stream.BIN_DEST: "bin",
    Stream.OTHER: "other",
}


@dataclass(frozen=True)
class TraceChunk:
    """One homogeneous burst of cache-line accesses.

    Attributes
    ----------
    lines:
        ``int64`` array of cache-line indices, in program order.
    write:
        Whether the burst stores (True) or loads (False).
    stream:
        Logical stream for per-structure accounting.
    mode:
        :class:`AccessMode` — see module docstring.
    streaming_store:
        Non-temporal store semantics (paper Section VII): the line is
        written to DRAM without the write-allocate read.  Only meaningful
        with ``write=True``.
    phase:
        Optional label ("binning", "accumulate", ...) used by the
        phase-breakdown experiment (Figure 11).
    """

    lines: np.ndarray
    write: bool
    stream: Stream
    mode: AccessMode
    streaming_store: bool = False
    phase: str = ""

    def __post_init__(self) -> None:
        lines = np.ascontiguousarray(self.lines, dtype=np.int64)
        if lines.ndim != 1:
            raise ValueError("lines must be a 1-D array")
        object.__setattr__(self, "lines", lines)
        if self.streaming_store and not self.write:
            raise ValueError("streaming_store requires write=True")

    @property
    def num_accesses(self) -> int:
        return int(self.lines.size)


def sequential_chunk(
    lines: np.ndarray,
    *,
    write: bool = False,
    stream: Stream = Stream.OTHER,
    streaming_store: bool = False,
    phase: str = "",
) -> TraceChunk:
    """Build a SEQUENTIAL chunk (one compulsory transfer per distinct line)."""
    return TraceChunk(
        lines, write, stream, AccessMode.SEQUENTIAL, streaming_store, phase
    )


def irregular_chunk(
    lines: np.ndarray,
    *,
    write: bool = False,
    stream: Stream = Stream.OTHER,
    phase: str = "",
) -> TraceChunk:
    """Build an IRREGULAR chunk (simulated access by access)."""
    return TraceChunk(lines, write, stream, AccessMode.IRREGULAR, False, phase)


def collapse_consecutive(lines: np.ndarray) -> tuple[np.ndarray, int]:
    """Collapse runs of identical consecutive lines.

    Returns ``(collapsed, num_removed)``.  Back-to-back accesses to the same
    line are guaranteed cache hits under any LRU cache with >= 1 line, so
    engines may collapse them up front and credit the removed accesses as
    hits; on high-spatial-locality gathers (web graph) this removes most of
    the per-access simulation work.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    if lines.size <= 1:
        return lines, 0
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    if keep.all():
        return lines, 0
    collapsed = lines[keep]
    return collapsed, int(lines.size - collapsed.size)


def coalesce_chunks(trace) -> list[TraceChunk]:
    """Merge adjacent chunks with identical access semantics.

    Two neighbouring chunks fuse iff they agree on ``(write, stream, mode,
    streaming_store, phase)``; the merged chunk is their lines concatenated
    in program order.  Counters are provably unchanged for every engine:
    SEQUENTIAL chunks are counted analytically per access, and IRREGULAR
    chunks replay the exact same access sequence against the same cache
    state — only the per-chunk bookkeeping (and for batching engines the
    number of vectorized passes) shrinks.  Kernels that emit one chunk per
    vertex or per bin benefit the most.
    """
    merged: list[TraceChunk] = []
    group: list[TraceChunk] = []

    def _emit() -> None:
        if not group:
            return
        head = group[0]
        if len(group) == 1:
            merged.append(head)
        else:
            merged.append(
                TraceChunk(
                    np.concatenate([chunk.lines for chunk in group]),
                    head.write,
                    head.stream,
                    head.mode,
                    head.streaming_store,
                    head.phase,
                )
            )
        group.clear()

    for chunk in trace:
        if group and (
            chunk.write != group[0].write
            or chunk.stream is not group[0].stream
            or chunk.mode is not group[0].mode
            or chunk.streaming_store != group[0].streaming_store
            or chunk.phase != group[0].phase
        ):
            _emit()
        group.append(chunk)
    _emit()
    return merged


@dataclass(frozen=True)
class Region:
    """A named, line-aligned span of the simulated address space."""

    name: str
    base_word: int
    num_words: int
    words_per_line: int

    @property
    def base_line(self) -> int:
        return self.base_word // self.words_per_line

    @property
    def num_lines(self) -> int:
        return -(-self.num_words // self.words_per_line)

    def line_of(self, word_indices: np.ndarray) -> np.ndarray:
        """Cache-line index of each word offset into this region."""
        idx = np.asarray(word_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_words):
            raise IndexError(
                f"word indices out of range for region {self.name!r} "
                f"(size {self.num_words})"
            )
        return (self.base_word + idx) // self.words_per_line

    def sequential_lines(
        self, start_word: int = 0, num_words: int | None = None
    ) -> np.ndarray:
        """Distinct line indices covering ``[start_word, start_word+num_words)``."""
        if num_words is None:
            num_words = self.num_words - start_word
        if num_words <= 0:
            return np.empty(0, dtype=np.int64)
        first = (self.base_word + start_word) // self.words_per_line
        last = (self.base_word + start_word + num_words - 1) // self.words_per_line
        return np.arange(first, last + 1, dtype=np.int64)


class AddressSpace:
    """Allocator handing out disjoint line-aligned regions to named arrays.

    Mirrors how the paper's C++ implementation lays out its arrays: every
    structure (scores, contributions, sums, CSR index, adjacency, bins) gets
    its own contiguous allocation, so two structures never share a cache
    line.
    """

    def __init__(self, words_per_line: int = 16) -> None:
        check_power_of_two("words_per_line", words_per_line)
        self.words_per_line = words_per_line
        self._next_word = 0
        self._regions: dict[str, Region] = {}

    def allocate(self, name: str, num_words: int) -> Region:
        """Reserve ``num_words`` (line-aligned) under ``name``."""
        check_positive("num_words", num_words)
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        region = Region(name, self._next_word, int(num_words), self.words_per_line)
        aligned = -(-int(num_words) // self.words_per_line) * self.words_per_line
        self._next_word += aligned
        self._regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def total_words(self) -> int:
        """Words allocated so far (the simulated footprint)."""
        return self._next_word
