"""DRAM traffic counters — the reproduction of Intel PCM's memory counters.

The paper measures "memory reads" and "memory writes" in units of cache-line
transfers using hardware performance counters (Section VI).  Our counters
accumulate the same two quantities from the cache simulator, broken down by
:class:`~repro.memsim.trace.Stream` and by phase so that Figure 3 (edge vs
vertex traffic) and Figure 11 (binning vs accumulate) fall out directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.memsim.trace import STREAM_CATEGORY, Stream

__all__ = ["MemCounters"]


@dataclass
class MemCounters:
    """Accumulated DRAM line transfers and cache hit statistics.

    Attributes
    ----------
    reads, writes:
        Per-stream DRAM line transfers.  ``reads`` includes write-allocate
        fills; ``writes`` includes write-backs of dirty lines and
        non-temporal stores.
    hits, accesses:
        Per-stream cache hits and total accesses (SEQUENTIAL chunks count
        as accesses that always miss).
    phase_reads, phase_writes:
        The same read/write totals keyed by kernel phase label.
    irregular_requests, irregular_accesses:
        Transfers and accesses attributable to IRREGULAR (data-dependent)
        chunks — the requests whose memory-level parallelism is limited by
        the instruction window (the paper's Section VI-A bottleneck
        discussion; used by the MLP-coupled time model).
    """

    reads: dict[Stream, int] = field(default_factory=lambda: defaultdict(int))
    writes: dict[Stream, int] = field(default_factory=lambda: defaultdict(int))
    hits: dict[Stream, int] = field(default_factory=lambda: defaultdict(int))
    accesses: dict[Stream, int] = field(default_factory=lambda: defaultdict(int))
    phase_reads: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    phase_writes: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    irregular_requests: int = 0
    irregular_accesses: int = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        stream: Stream,
        *,
        reads: int = 0,
        writes: int = 0,
        hits: int = 0,
        accesses: int = 0,
        phase: str = "",
        irregular: bool = False,
    ) -> None:
        """Add transfers/hits for one chunk's processing."""
        if reads:
            self.reads[stream] += reads
        if writes:
            self.writes[stream] += writes
        if hits:
            self.hits[stream] += hits
        if accesses:
            self.accesses[stream] += accesses
        if irregular:
            self.irregular_requests += reads + writes
            self.irregular_accesses += accesses
        if phase:
            if reads:
                self.phase_reads[phase] += reads
            if writes:
                self.phase_writes[phase] += writes

    def merge(self, other: "MemCounters") -> None:
        """Accumulate ``other`` into ``self`` (used by multi-phase kernels)."""
        self.irregular_requests += other.irregular_requests
        self.irregular_accesses += other.irregular_accesses
        for src, dst in (
            (other.reads, self.reads),
            (other.writes, self.writes),
            (other.hits, self.hits),
            (other.accesses, self.accesses),
        ):
            for key, value in src.items():
                dst[key] += value
        for src2, dst2 in (
            (other.phase_reads, self.phase_reads),
            (other.phase_writes, self.phase_writes),
        ):
            for key2, value2 in src2.items():
                dst2[key2] += value2

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """DRAM line reads — the paper's "Memory Reads" column."""
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        """DRAM line writes — the paper's "Memory Writes" column."""
        return sum(self.writes.values())

    @property
    def total_requests(self) -> int:
        """Reads + writes — total memory requests (GAIL's communication)."""
        return self.total_reads + self.total_writes

    @property
    def total_hits(self) -> int:
        """Cache hits across all streams (SEQUENTIAL accesses never hit)."""
        return sum(self.hits.values())

    @property
    def total_accesses(self) -> int:
        """Cache accesses across all streams, sequential and irregular."""
        return sum(self.accesses.values())

    def miss_rate(self) -> float:
        """Fraction of all cache accesses served from DRAM.

        Includes SEQUENTIAL streaming accesses (which always miss by
        construction), so this tracks overall DRAM pressure; use
        :meth:`irregular_miss_rate` for the data-dependent accesses whose
        hit rate the cache actually determines.
        """
        accesses = self.total_accesses
        if accesses == 0:
            return 0.0
        return 1.0 - self.total_hits / accesses

    def irregular_miss_rate(self) -> float:
        """Fraction of IRREGULAR accesses that caused a DRAM transfer."""
        if self.irregular_accesses == 0:
            return 0.0
        return self.irregular_requests / self.irregular_accesses

    def category_reads(self, category: str) -> int:
        """DRAM reads for one coarse category ("edge", "vertex", "bin")."""
        return sum(
            count
            for stream, count in self.reads.items()
            if STREAM_CATEGORY[stream] == category
        )

    def category_requests(self, category: str) -> int:
        """DRAM requests (reads+writes) for one coarse category."""
        reads = self.category_reads(category)
        writes = sum(
            count
            for stream, count in self.writes.items()
            if STREAM_CATEGORY[stream] == category
        )
        return reads + writes

    def vertex_read_fraction(self) -> float:
        """Fraction of DRAM *reads* that are vertex traffic — Figure 3's y axis."""
        total = self.total_reads
        if total == 0:
            return 0.0
        return self.category_reads("vertex") / total

    def requests_per_edge(self, num_edges: int) -> float:
        """GAIL communication metric (Figure 6-8's y axis)."""
        if num_edges <= 0:
            raise ValueError(f"num_edges must be positive, got {num_edges}")
        return self.total_requests / num_edges

    def as_dict(self) -> dict[str, float]:
        """Summary dictionary for reports."""
        return {
            "reads": float(self.total_reads),
            "writes": float(self.total_writes),
            "requests": float(self.total_requests),
            "edge_reads": float(self.category_reads("edge")),
            "vertex_reads": float(self.category_reads("vertex")),
            "bin_reads": float(self.category_reads("bin")),
            "vertex_read_fraction": self.vertex_read_fraction(),
        }
