"""Tree pseudo-LRU (PLRU) set-associative cache engine.

Real last-level caches do not implement true LRU: tracking exact recency
across 16-20 ways is too expensive, so hardware uses approximations —
most commonly *tree PLRU*, which keeps ``ways - 1`` direction bits per set
arranged as a binary tree.  A hit flips the bits along its path to point
*away* from the accessed way; the victim is found by following the bits.

This engine exists to bound the idealization error of the default
:class:`~repro.memsim.cache.FullyAssociativeLRU` model: the replacement-
policy ablation (``benchmarks/bench_ablation_engine.py``) shows the
paper's communication-reduction results are insensitive to the policy,
so the cheap exact-LRU model is a safe measurement instrument.

PLRU and true LRU coincide exactly for 2 ways; for more ways PLRU may
evict a recently used line (and, rarely, retain a stale one), which for
these workloads shifts miss counts by at most a few percent.
"""

from __future__ import annotations

from repro.memsim.cache import CacheConfig, _EngineBase
from repro.memsim.counters import MemCounters
from repro.memsim.trace import Stream, TraceChunk, collapse_consecutive
from repro.utils.validation import check_power_of_two

__all__ = ["TreePLRUCache"]


class _PLRUSet:
    """One cache set: ``ways`` slots plus the PLRU direction-bit tree.

    The tree is stored as a flat array of ``ways - 1`` bits in heap order:
    node 0 is the root; node ``i``'s children are ``2i+1`` and ``2i+2``;
    leaves correspond to ways.  Bit value 0 points left, 1 points right,
    always toward the *pseudo*-least-recently-used side.
    """

    __slots__ = ("ways", "levels", "tags", "dirty", "bits", "lookup")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.levels = ways.bit_length() - 1  # log2(ways)
        self.tags: list[int | None] = [None] * ways
        self.dirty = [False] * ways
        self.bits = [0] * max(ways - 1, 1)
        self.lookup: dict[int, int] = {}  # tag -> way

    def _touch(self, way: int) -> None:
        """Flip the path bits to point away from ``way``."""
        node = 0
        span = self.ways
        base = 0
        for _ in range(self.levels):
            span //= 2
            go_right = way >= base + span
            self.bits[node] = 0 if go_right else 1  # point away
            if go_right:
                base += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1

    def _victim(self) -> int:
        """Follow the direction bits to the pseudo-LRU way."""
        # Prefer an empty slot first (cold sets).
        for way, tag in enumerate(self.tags):
            if tag is None:
                return way
        node = 0
        span = self.ways
        base = 0
        for _ in range(self.levels):
            span //= 2
            if self.bits[node]:
                base += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1
        return base

    def access(self, tag: int, write: bool) -> tuple[bool, bool]:
        """Access ``tag``; returns ``(hit, dirty_eviction)``."""
        way = self.lookup.get(tag)
        if way is not None:
            self._touch(way)
            if write:
                self.dirty[way] = True
            return True, False
        way = self._victim()
        evicted_dirty = False
        old = self.tags[way]
        if old is not None:
            evicted_dirty = self.dirty[way]
            del self.lookup[old]
        self.tags[way] = tag
        self.dirty[way] = write
        self.lookup[tag] = way
        self._touch(way)
        return False, evicted_dirty

    def dirty_count(self) -> int:
        return sum(self.dirty[w] for w, t in enumerate(self.tags) if t is not None)

    def clear(self) -> None:
        self.tags = [None] * self.ways
        self.dirty = [False] * self.ways
        self.bits = [0] * max(self.ways - 1, 1)
        self.lookup.clear()


class TreePLRUCache(_EngineBase):
    """Set-associative cache with tree-PLRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        if config.ways is None:
            raise ValueError("TreePLRUCache requires an explicit ways count")
        check_power_of_two("ways", config.ways)
        check_power_of_two("num_sets", config.num_sets)
        self.config = config
        self._sets = [_PLRUSet(config.ways) for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        lines, collapsed = collapse_consecutive(chunk.lines)
        sets = self._sets
        mask = self._set_mask
        write = chunk.write
        hits = collapsed
        dram_reads = 0
        dram_writes = 0
        for line in lines.tolist():
            hit, dirty_eviction = sets[line & mask].access(line, write)
            if hit:
                hits += 1
            else:
                dram_reads += 1
                if dirty_eviction:
                    dram_writes += 1
        counters.record(
            chunk.stream,
            reads=dram_reads,
            writes=dram_writes,
            hits=hits,
            accesses=chunk.num_accesses,
            phase=chunk.phase,
            irregular=True,
        )

    def flush(self, counters: MemCounters) -> None:
        """Write back dirty lines and reset every set."""
        dirty = sum(s.dirty_count() for s in self._sets)
        if dirty:
            counters.record(Stream.OTHER, writes=dirty, phase="flush")
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        """Resident line count (test hook)."""
        return sum(len(s.lookup) for s in self._sets)
