"""Vectorized direct-mapped cache engine.

For large sweeps the per-access Python loop of the exact LRU engines
dominates runtime.  This engine trades the LRU replacement policy for a
direct-mapped one, which admits a fully vectorized O(N log N) NumPy
implementation:

1. concatenate every IRREGULAR access into one array (SEQUENTIAL chunks
   bypass the cache in all engines, so cross-chunk state only involves
   irregular accesses);
2. stable-sort by set index — each set's accesses form a contiguous
   subsequence in program order;
3. within a set's subsequence, an access misses iff its line differs from
   the previous access's line (the set holds exactly one line); runs of
   equal lines form *residencies*, and a residency writes back iff any
   access in it was a store.

Direct-mapped caches suffer conflict misses a 16/20-way LLC would not,
especially when a hot slice coexists with other data, so this engine
slightly *overestimates* traffic for the blocked kernels.  Use it for
quick, large-scale exploration; use :class:`~repro.memsim.cache.
FullyAssociativeLRU` (the default everywhere in the harness) for numbers
you report.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.cache import CacheConfig, _EngineBase
from repro.memsim.counters import MemCounters
from repro.memsim.trace import TraceChunk
from repro.obs.spans import span

__all__ = ["DirectMappedVectorized"]


class DirectMappedVectorized(_EngineBase):
    """Direct-mapped write-back cache evaluated with vectorized NumPy.

    Unlike the exact engines this one buffers irregular chunks and resolves
    them in :meth:`flush` (or when :func:`~repro.memsim.cache.simulate`
    flushes at the end), because vectorization needs the whole access
    sequence at once.  Results are exact *for the direct-mapped policy*.
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.ways not in (None, 1):
            raise ValueError("DirectMappedVectorized supports ways=1 only")
        self.config = CacheConfig(config.capacity_bytes, config.line_bytes, ways=1)
        self._pending: list[TraceChunk] = []

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        self._pending.append(chunk)

    def flush(self, counters: MemCounters) -> None:
        """Resolve all buffered irregular accesses and write back dirty lines."""
        chunks, self._pending = self._pending, []
        if not chunks:
            return
        with span("fastcache_resolve"):
            self._resolve(chunks, counters)

    def _resolve(self, chunks: list[TraceChunk], counters: MemCounters) -> None:
        lines = np.concatenate([c.lines for c in chunks])
        if lines.size == 0:
            return
        writes = np.concatenate(
            [np.full(c.num_accesses, c.write, dtype=bool) for c in chunks]
        )
        stream_codes = np.concatenate(
            [np.full(c.num_accesses, i, dtype=np.int32) for i, c in enumerate(chunks)]
        )

        num_sets = self.config.num_lines  # 1 line per set
        set_idx = lines % num_sets
        order = np.argsort(set_idx, kind="stable")
        s_lines = lines[order]
        s_sets = set_idx[order]
        s_writes = writes[order]
        s_codes = stream_codes[order]

        # A residency starts where the set changes or the line changes.
        boundary = np.empty(s_lines.size, dtype=bool)
        boundary[0] = True
        np.logical_or(
            s_sets[1:] != s_sets[:-1], s_lines[1:] != s_lines[:-1], out=boundary[1:]
        )
        run_id = np.cumsum(boundary) - 1
        num_runs = int(run_id[-1]) + 1

        # Every residency begins with a miss (fill read, incl. write-allocate).
        miss_codes = s_codes[boundary]
        # A residency is dirty iff any access in it stored.
        run_dirty = np.zeros(num_runs, dtype=bool)
        np.logical_or.at(run_dirty, run_id, s_writes)
        # A dirty residency is written back when evicted (next run in the
        # same set) or at the final flush — either way, exactly once.
        writeback_codes = miss_codes[run_dirty]

        hit_mask = ~boundary
        for i, chunk in enumerate(chunks):
            reads = int(np.count_nonzero(miss_codes == i))
            wb = int(np.count_nonzero(writeback_codes == i))
            hits = int(np.count_nonzero(hit_mask & (s_codes == i)))
            counters.record(
                chunk.stream,
                reads=reads,
                writes=wb,
                hits=hits,
                accesses=chunk.num_accesses,
                phase=chunk.phase,
                irregular=True,
            )
