"""Reuse-distance (LRU stack-distance) analysis.

The miss count of a fully-associative LRU cache of *any* capacity follows
from one pass over the trace: an access hits a cache of ``C`` lines iff its
*stack distance* (number of distinct lines touched since the previous access
to the same line) is below ``C``.  Computing the full histogram once
therefore yields the whole miss-ratio curve — the tool behind the "what if
the LLC were bigger/smaller" ablation and a strong oracle for testing the
LRU engines.

The implementation is the classic Bennett–Kruskal algorithm: a Fenwick tree
over access timestamps marks the *last* occurrence of every line; the stack
distance of an access is the count of marked timestamps after its line's
previous occurrence.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import bucket_label

__all__ = [
    "reuse_distance_histogram",
    "misses_for_capacity",
    "miss_ratio_curve",
    "log2_bucketed",
]

COLD = -1  #: histogram key for first-touch (compulsory) accesses


class _Fenwick:
    """Fenwick tree (binary indexed tree) over ``size`` slots."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self.tree
        size = self.size
        while i <= size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``[0, index]``."""
        i = index + 1
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


def reuse_distance_histogram(lines: np.ndarray) -> dict[int, int]:
    """Histogram of LRU stack distances for a line-access sequence.

    Returns ``{distance: count}``; first-touch accesses appear under the
    key :data:`COLD`.  Distance 0 means "re-accessed with no other distinct
    line in between" (always a hit).
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64).tolist()
    n = len(lines)
    fenwick = _Fenwick(n)
    last_seen: dict[int, int] = {}
    histogram: dict[int, int] = {}
    for t, line in enumerate(lines):
        prev = last_seen.get(line)
        if prev is None:
            histogram[COLD] = histogram.get(COLD, 0) + 1
        else:
            # Distinct lines touched in (prev, t) = marked stamps in that window.
            distance = fenwick.prefix_sum(t - 1) - fenwick.prefix_sum(prev)
            histogram[distance] = histogram.get(distance, 0) + 1
            fenwick.add(prev, -1)
        fenwick.add(t, 1)
        last_seen[line] = t
    return histogram


def log2_bucketed(histogram: dict[int, int]) -> dict[str, int]:
    """Collapse an exact ``{distance: count}`` histogram into log2 buckets.

    First-touch accesses (:data:`COLD`) map to the ``"cold"`` bucket; the
    result uses :func:`repro.obs.metrics.bucket_label` labels so it can be
    merged into a report :class:`~repro.obs.metrics.Histogram` directly.
    A cache of ``C`` lines hits every bucket strictly below ``C`` and
    misses every bucket at/above it, up to one straddling bucket — so the
    compressed form still reads as a miss-ratio curve.
    """
    out: dict[str, int] = {}
    for distance, count in histogram.items():
        label = "cold" if distance == COLD else bucket_label(distance)
        out[label] = out.get(label, 0) + count
    return out


def misses_for_capacity(histogram: dict[int, int], capacity_lines: int) -> int:
    """Miss count of a fully-associative LRU cache of ``capacity_lines``."""
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    misses = histogram.get(COLD, 0)
    for distance, count in histogram.items():
        if distance != COLD and distance >= capacity_lines:
            misses += count
    return misses


def miss_ratio_curve(
    lines: np.ndarray, capacities: list[int]
) -> dict[int, float]:
    """Miss ratio of an LRU cache at each capacity (in lines), in one pass."""
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    if lines.size == 0:
        return {c: 0.0 for c in capacities}
    histogram = reuse_distance_histogram(lines)
    return {
        c: misses_for_capacity(histogram, c) / lines.size for c in capacities
    }
