"""Memory-system simulator: the stand-in for hardware performance counters.

Kernels emit cache-line access *traces* (:mod:`repro.memsim.trace`); cache
*engines* (:mod:`repro.memsim.cache`, :mod:`repro.memsim.fastcache`) replay
them against an LLC model and accumulate DRAM transfers into
:class:`~repro.memsim.counters.MemCounters` — the quantity the paper
measures with Intel PCM.  :mod:`repro.memsim.hierarchy` adds L1 effects and
:mod:`repro.memsim.reuse` provides miss-ratio-curve oracles.
"""

from repro.memsim.trace import (
    AccessMode,
    Stream,
    STREAM_CATEGORY,
    TraceChunk,
    Region,
    AddressSpace,
    sequential_chunk,
    irregular_chunk,
    collapse_consecutive,
    coalesce_chunks,
)
from repro.memsim.counters import MemCounters
from repro.memsim.cache import (
    WORD_BYTES,
    CacheConfig,
    FullyAssociativeLRU,
    SetAssociativeLRU,
    simulate,
)
from repro.memsim.fastcache import DirectMappedVectorized
from repro.memsim.plru import TreePLRUCache
from repro.memsim.stackdist import StackDistanceLRU
from repro.memsim.traceio import save_trace, load_trace
from repro.memsim.hierarchy import DEFAULT_L1, L1Model, TwoLevel
from repro.memsim.reuse import (
    reuse_distance_histogram,
    misses_for_capacity,
    miss_ratio_curve,
)

__all__ = [
    "AccessMode",
    "Stream",
    "STREAM_CATEGORY",
    "TraceChunk",
    "Region",
    "AddressSpace",
    "sequential_chunk",
    "irregular_chunk",
    "collapse_consecutive",
    "coalesce_chunks",
    "MemCounters",
    "WORD_BYTES",
    "CacheConfig",
    "FullyAssociativeLRU",
    "SetAssociativeLRU",
    "StackDistanceLRU",
    "simulate",
    "DirectMappedVectorized",
    "TreePLRUCache",
    "save_trace",
    "load_trace",
    "DEFAULT_L1",
    "L1Model",
    "TwoLevel",
    "reuse_distance_histogram",
    "misses_for_capacity",
    "miss_ratio_curve",
    "make_engine",
    "ENGINES",
    "DEFAULT_ENGINE",
]


def _make_plru(config: CacheConfig):
    if config.ways is None:
        config = CacheConfig(
            config.capacity_bytes, config.line_bytes, ways=min(16, config.num_lines)
        )
    return TreePLRUCache(config)


def _make_compiled(config: CacheConfig):
    """Lazy factory for the compiled exact-LRU engine (repro.compiled).

    Exact: bit-identical counters to ``flru``/``stackdist``.  Availability:
    Numba or a C compiler; otherwise it returns a ``stackdist`` engine with
    a one-time warning (identical counters, oracle speed).
    """
    from repro.compiled.engine import make_compiled_engine

    return make_compiled_engine(config)


#: Engine registry: name -> factory taking a :class:`CacheConfig`.
#: ``stackdist`` and ``flru`` are *exact* fully-associative LRU models with
#: bit-identical counters (``flru`` is the per-access oracle loop kept for
#: differential testing); ``compiled`` is the compiled tier of the same
#: exact model (bit-identical counters; needs Numba or a C compiler, else
#: it degrades to ``stackdist``); ``set``/``plru`` model reduced
#: associativity; ``dmap`` is approximate and banned from reported numbers.
ENGINES: dict[str, object] = {
    "stackdist": StackDistanceLRU,
    "flru": FullyAssociativeLRU,
    "compiled": _make_compiled,
    "set": SetAssociativeLRU,
    "plru": _make_plru,
    "dmap": DirectMappedVectorized,
}

#: Engine used for reported numbers when none is requested explicitly: the
#: vectorized exact LRU, validated bit-identical to ``flru`` in CI.
DEFAULT_ENGINE = "stackdist"


def make_engine(name: str, config: CacheConfig):
    """Engine factory; see :data:`ENGINES` for the registry."""
    try:
        factory = ENGINES[name]
    except KeyError:
        options = ", ".join(repr(key) for key in ENGINES)
        raise ValueError(f"unknown engine {name!r}; choose one of {options}") from None
    return factory(config)
