"""Memory-system simulator: the stand-in for hardware performance counters.

Kernels emit cache-line access *traces* (:mod:`repro.memsim.trace`); cache
*engines* (:mod:`repro.memsim.cache`, :mod:`repro.memsim.fastcache`) replay
them against an LLC model and accumulate DRAM transfers into
:class:`~repro.memsim.counters.MemCounters` — the quantity the paper
measures with Intel PCM.  :mod:`repro.memsim.hierarchy` adds L1 effects and
:mod:`repro.memsim.reuse` provides miss-ratio-curve oracles.
"""

from repro.memsim.trace import (
    AccessMode,
    Stream,
    STREAM_CATEGORY,
    TraceChunk,
    Region,
    AddressSpace,
    sequential_chunk,
    irregular_chunk,
    collapse_consecutive,
)
from repro.memsim.counters import MemCounters
from repro.memsim.cache import (
    WORD_BYTES,
    CacheConfig,
    FullyAssociativeLRU,
    SetAssociativeLRU,
    simulate,
)
from repro.memsim.fastcache import DirectMappedVectorized
from repro.memsim.plru import TreePLRUCache
from repro.memsim.traceio import save_trace, load_trace
from repro.memsim.hierarchy import DEFAULT_L1, L1Model, TwoLevel
from repro.memsim.reuse import (
    reuse_distance_histogram,
    misses_for_capacity,
    miss_ratio_curve,
)

__all__ = [
    "AccessMode",
    "Stream",
    "STREAM_CATEGORY",
    "TraceChunk",
    "Region",
    "AddressSpace",
    "sequential_chunk",
    "irregular_chunk",
    "collapse_consecutive",
    "MemCounters",
    "WORD_BYTES",
    "CacheConfig",
    "FullyAssociativeLRU",
    "SetAssociativeLRU",
    "simulate",
    "DirectMappedVectorized",
    "TreePLRUCache",
    "save_trace",
    "load_trace",
    "DEFAULT_L1",
    "L1Model",
    "TwoLevel",
    "reuse_distance_histogram",
    "misses_for_capacity",
    "miss_ratio_curve",
    "make_engine",
]


def make_engine(name: str, config: CacheConfig):
    """Engine factory: ``"flru"`` (default), ``"set"``, ``"plru"`` or ``"dmap"``."""
    if name == "flru":
        return FullyAssociativeLRU(config)
    if name == "set":
        return SetAssociativeLRU(config)
    if name == "plru":
        if config.ways is None:
            config = CacheConfig(
                config.capacity_bytes, config.line_bytes, ways=min(16, config.num_lines)
            )
        return TreePLRUCache(config)
    if name == "dmap":
        return DirectMappedVectorized(config)
    raise ValueError(
        f"unknown engine {name!r}; choose 'flru', 'set', 'plru', or 'dmap'"
    )
