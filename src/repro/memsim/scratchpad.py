"""Software-managed scratchpad (local-store) modelling — paper Section IX.

    "Another benefit of propagation blocking is the predictability of its
    memory access patterns eases its implementation for systems with
    scratchpad memories.  Since the access ranges are bounded, all of the
    necessary data can be transferred in bulk by software between the
    on-chip local store and off-chip memory."

This module makes that argument executable.  For a machine whose on-chip
memory is an explicitly managed scratchpad (Cell SPE local stores, many
DSPs and accelerators), software must *schedule* every transfer:

* :func:`plan_pb_scratchpad` emits the complete bulk-DMA schedule for one
  propagation-blocked PageRank iteration — possible precisely because
  every phase touches statically known, bounded ranges.  The plan's total
  volume matches the cache simulator's within the write-allocate
  differences, i.e. PB loses nothing when caches are replaced by DMA.
* :func:`pull_scratchpad_words` computes what pull-direction PageRank
  would move on the same machine: the contribution gathers are
  data-dependent, so each becomes an individual remote *word* access
  (or a speculative bulk fetch that is mostly waste) — there is no good
  schedule, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.csr import CSRGraph
from repro.kernels.bins import BinLayout
from repro.kernels.layout import INDEX_WORDS_PER_VERTEX
from repro.models.machine import MachineSpec
from repro.utils.validation import check_positive

__all__ = ["DmaTransfer", "ScratchpadPlan", "plan_pb_scratchpad", "pull_scratchpad_words"]


@dataclass(frozen=True)
class DmaTransfer:
    """One bulk transfer between off-chip memory and the local store."""

    phase: str
    direction: str  #: "in" (to scratchpad) or "out" (to memory)
    what: str
    words: int

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"direction must be 'in' or 'out', got {self.direction!r}")
        check_positive("words", self.words)


@dataclass
class ScratchpadPlan:
    """A complete DMA schedule for one kernel iteration."""

    transfers: list[DmaTransfer] = field(default_factory=list)

    def add(self, phase: str, direction: str, what: str, words: int) -> None:
        if words > 0:
            self.transfers.append(DmaTransfer(phase, direction, what, int(words)))

    @property
    def words_in(self) -> int:
        return sum(t.words for t in self.transfers if t.direction == "in")

    @property
    def words_out(self) -> int:
        return sum(t.words for t in self.transfers if t.direction == "out")

    @property
    def total_words(self) -> int:
        return self.words_in + self.words_out

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)

    def max_resident_words(self) -> int:
        """Largest buffer the plan needs resident at once.

        Streams (scores, index, adjacency, bin data) are chunked through
        fixed double-buffers of implementation-chosen size, so only the
        ``slice`` buffers — which must be whole while a bin accumulates
        into them — bound the footprint.
        """
        return max(
            (t.words for t in self.transfers if t.what.startswith("slice")),
            default=0,
        )


def plan_pb_scratchpad(
    graph: CSRGraph, layout: BinLayout, machine: MachineSpec
) -> ScratchpadPlan:
    """Bulk-DMA schedule for one DPB iteration on a scratchpad machine.

    Binning: stream in scores, degrees, index and adjacency (chunked,
    double-buffered — chunk size is an implementation detail that does not
    change volume) and stream out each bin's contribution words.
    Accumulate: per bin, DMA in the sums slice and the bin's data, combine
    locally, DMA the slice out.  Apply: stream sums in, scores out.

    Every range is known before the transfer starts — no per-element
    remote access anywhere.
    """
    n = graph.num_vertices
    m = graph.num_edges
    plan = ScratchpadPlan()
    # Binning phase.
    plan.add("binning", "in", "scores", n)
    plan.add("binning", "in", "degrees", n)
    plan.add("binning", "in", "index", INDEX_WORDS_PER_VERTEX * n)
    plan.add("binning", "in", "adjacency", m)
    for b in range(layout.num_bins):
        count = layout.bin_count(b)
        if count:
            plan.add("binning", "out", f"bin[{b}] contributions", count)
    # Accumulate phase: one slice + one bin resident at a time.
    for b in range(layout.num_bins):
        count = layout.bin_count(b)
        if count == 0:
            continue
        start, stop = layout.bin_slice(b)
        plan.add("accumulate", "in", f"slice[{b}]", stop - start)
        plan.add("accumulate", "in", f"bin[{b}] contributions", count)
        plan.add("accumulate", "in", f"bin[{b}] destinations", count)
        plan.add("accumulate", "out", f"slice[{b}]", stop - start)
    # Apply phase.
    plan.add("apply", "in", "sums", n)
    plan.add("apply", "out", "scores", n)

    # The plan must actually fit: slice + bin buffers within the local store.
    resident = plan.max_resident_words()
    if resident > machine.cache_words:
        raise ValueError(
            f"bin width too large for the local store: a working buffer of "
            f"{resident} words exceeds {machine.cache_words}"
        )
    return plan


def pull_scratchpad_words(graph: CSRGraph) -> dict[str, int]:
    """What pull PageRank moves on a scratchpad machine, per category.

    The streams (index, adjacency, scores) schedule fine; the contribution
    gathers do not — each is a data-dependent remote access, so software
    must fetch a word (in practice, a padded minimum DMA unit) per edge.
    Returns word counts: ``{"streamed", "random"}``.
    """
    n = graph.num_vertices
    m = graph.num_edges
    streamed = (
        n  # scores read (contrib pass)
        + n  # degrees
        + n  # contributions written then re-read... written once
        + INDEX_WORDS_PER_VERTEX * n
        + m  # adjacency
        + n  # scores out
    )
    return {"streamed": streamed, "random": m}
