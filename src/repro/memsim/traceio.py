"""Trace serialization: save a kernel's access trace, replay it later.

Traces are the interface between kernels and cache engines; being able to
persist them enables (a) regression-testing memory behaviour against a
golden trace, (b) replaying one trace against many cache configurations
without re-running the kernel, and (c) exporting workloads to external
cache simulators.

Format: a single ``.npz`` holding the concatenated line addresses plus
per-chunk metadata columns (offsets, flags, stream/phase tables).  Lossless
round trip for every :class:`~repro.memsim.trace.TraceChunk` field.
"""

from __future__ import annotations

import os

import numpy as np

from repro.memsim.trace import AccessMode, Stream, TraceChunk

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(path: str | os.PathLike, trace) -> int:
    """Serialize an iterable of chunks to ``path``; returns the chunk count.

    The trace iterable is consumed.  Phases and streams are interned into
    small lookup tables so the file stays compact.
    """
    chunks = list(trace)
    lines = (
        np.concatenate([c.lines for c in chunks])
        if chunks
        else np.empty(0, dtype=np.int64)
    )
    offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
    np.cumsum([c.num_accesses for c in chunks], out=offsets[1:])
    stream_names = sorted({c.stream.value for c in chunks})
    phase_names = sorted({c.phase for c in chunks})
    stream_index = {name: i for i, name in enumerate(stream_names)}
    phase_index = {name: i for i, name in enumerate(phase_names)}
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        lines=lines,
        offsets=offsets,
        write=np.array([c.write for c in chunks], dtype=bool),
        sequential=np.array(
            [c.mode is AccessMode.SEQUENTIAL for c in chunks], dtype=bool
        ),
        streaming_store=np.array([c.streaming_store for c in chunks], dtype=bool),
        stream_codes=np.array(
            [stream_index[c.stream.value] for c in chunks], dtype=np.int16
        ),
        phase_codes=np.array(
            [phase_index[c.phase] for c in chunks], dtype=np.int16
        ),
        stream_names=np.array(stream_names, dtype=object),
        phase_names=np.array(phase_names, dtype=object),
    )
    return len(chunks)


def load_trace(path: str | os.PathLike) -> list[TraceChunk]:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=True) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace file version {version} (expected {_FORMAT_VERSION})"
            )
        lines = data["lines"]
        offsets = data["offsets"]
        stream_names = [str(s) for s in data["stream_names"]]
        phase_names = [str(p) for p in data["phase_names"]]
        chunks = []
        for i in range(offsets.size - 1):
            mode = (
                AccessMode.SEQUENTIAL
                if bool(data["sequential"][i])
                else AccessMode.IRREGULAR
            )
            chunks.append(
                TraceChunk(
                    lines=lines[offsets[i] : offsets[i + 1]],
                    write=bool(data["write"][i]),
                    stream=Stream(stream_names[int(data["stream_codes"][i])]),
                    mode=mode,
                    streaming_store=bool(data["streaming_store"][i]),
                    phase=phase_names[int(data["phase_codes"][i])],
                )
            )
        return chunks
