"""Multi-level cache modelling.

The paper's communication analysis uses a single level (the LLC), but two
of its results hinge on the *L1*:

* Figure 10 — bins that are too small make the binning phase slow because
  the many bin insertion points no longer fit in L1;
* Figure 11 — "these L1 misses reduce performance, but they do not greatly
  increase memory traffic because they result in mostly L3 hits".

:class:`L1Model` reproduces exactly that effect: it simulates a small L1
over one access stream (the bin insertion pointers) and reports the hit/
miss split, which the time model converts into extra cycles without adding
DRAM traffic.  :class:`TwoLevel` is the general composition — an L1 filter
in front of any LLC engine — provided for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.cache import CacheConfig, _EngineBase
from repro.memsim.counters import MemCounters
from repro.memsim.trace import (
    Stream,
    TraceChunk,
    collapse_consecutive,
    irregular_chunk,
)

__all__ = ["L1Model", "TwoLevel", "DEFAULT_L1"]

#: 32 KiB, 64 B lines — the classic per-core L1D (the paper's Ivy Bridge).
DEFAULT_L1 = CacheConfig(capacity_bytes=32 * 1024, line_bytes=64)


class L1Model:
    """Hit/miss analysis of a single access stream against a small L1.

    The stream is simulated through an exact fully-associative LRU of L1
    size.  Real L1s are 8-way set-associative; for the bin-pointer streams
    this model is driven by (tens to thousands of distinct lines, heavy
    reuse) the associativity difference is negligible next to the capacity
    cliff the experiment is about.
    """

    def __init__(self, config: CacheConfig = DEFAULT_L1) -> None:
        self.config = config

    def analyze(self, lines: np.ndarray) -> dict[str, int]:
        """Return ``{"accesses", "hits", "misses"}`` for the line stream."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        collapsed, pre_hits = collapse_consecutive(lines)
        cache: dict[int, bool] = {}
        capacity = self.config.num_lines
        pop = cache.pop
        misses = 0
        for line in collapsed.tolist():
            if pop(line, None) is None:
                misses += 1
                cache[line] = False
                if len(cache) > capacity:
                    pop(next(iter(cache)))
            else:
                cache[line] = False
        accesses = int(lines.size)
        return {"accesses": accesses, "hits": accesses - misses, "misses": misses}


class TwoLevel(_EngineBase):
    """An exact L1 filter composed in front of an LLC engine.

    IRREGULAR chunks are filtered: L1 hits are absorbed; L1 misses are
    forwarded (in order) to the LLC engine as reads, and dirty L1 evictions
    as writes, modelling an inclusive write-back hierarchy.  SEQUENTIAL
    chunks stream through both levels untouched (they miss everywhere once,
    which is how the base engines already charge them).
    """

    def __init__(self, l1_config: CacheConfig, llc_engine: _EngineBase) -> None:
        if l1_config.capacity_bytes >= llc_engine.config.capacity_bytes:
            raise ValueError("L1 must be smaller than the LLC")
        if l1_config.line_bytes != llc_engine.config.line_bytes:
            raise ValueError("L1 and LLC must share a line size")
        self.config = llc_engine.config
        self.l1_config = l1_config
        self.llc = llc_engine
        self._l1: dict[int, bool] = {}
        self.l1_hits = 0
        self.l1_misses = 0

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        cache = self._l1
        capacity = self.l1_config.num_lines
        write = chunk.write
        pop = cache.pop
        forwarded_reads: list[int] = []
        forwarded_writes: list[int] = []
        hits = 0
        for line in chunk.lines.tolist():
            dirty = pop(line, None)
            if dirty is None:
                forwarded_reads.append(line)
                cache[line] = write
                if len(cache) > capacity:
                    victim = next(iter(cache))
                    if pop(victim):
                        forwarded_writes.append(victim)
            else:
                hits += 1
                cache[line] = dirty or write
        self.l1_hits += hits
        self.l1_misses += len(forwarded_reads)
        if forwarded_reads:
            self.llc.process_chunk(
                irregular_chunk(
                    np.asarray(forwarded_reads, dtype=np.int64),
                    write=False,
                    stream=chunk.stream,
                    phase=chunk.phase,
                ),
                counters,
            )
        if forwarded_writes:
            self.llc.process_chunk(
                irregular_chunk(
                    np.asarray(forwarded_writes, dtype=np.int64),
                    write=True,
                    stream=chunk.stream,
                    phase=chunk.phase,
                ),
                counters,
            )

    def _process_sequential(self, chunk: TraceChunk, counters: MemCounters) -> None:
        self.l1_misses += chunk.num_accesses
        self.llc.process_chunk(chunk, counters)

    def flush(self, counters: MemCounters) -> None:
        """Drain dirty L1 lines into the LLC, then flush the LLC."""
        dirty_lines = [line for line, dirty in self._l1.items() if dirty]
        self._l1.clear()
        if dirty_lines:
            self.llc.process_chunk(
                irregular_chunk(
                    np.asarray(dirty_lines, dtype=np.int64),
                    write=True,
                    stream=Stream.OTHER,
                ),
                counters,
            )
        self.llc.flush(counters)
