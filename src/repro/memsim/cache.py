"""Cache engines: exact LRU simulators that turn traces into DRAM traffic.

The paper's communication metric is the number of cache lines transferred
between the last-level cache and DRAM, measured with hardware counters.
Here that measurement is performed by a software cache model with the same
structure the paper assumes (Section III): a single cache level in front of
DRAM, 64-byte lines, write-back + write-allocate, plus non-temporal-store
semantics for the propagation-blocking bins (Section VII).

Two exact engines are provided:

* :class:`FullyAssociativeLRU` — the default.  An LLC with high
  associativity (the paper's is 20-way) behaves very close to fully
  associative for these workloads; full associativity also matches the
  analytic model's cache abstraction.
* :class:`SetAssociativeLRU` — reference engine with explicit sets/ways,
  used to validate the fully-associative proxy and for associativity
  ablations.

Both engines treat SEQUENTIAL chunks analytically (compulsory transfers
only, no cache installation — see :mod:`repro.memsim.trace` for why) and
simulate IRREGULAR chunks access by access.

A faster vectorized engine with a direct-mapped policy lives in
:mod:`repro.memsim.fastcache`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.memsim.counters import MemCounters
from repro.memsim.trace import (
    AccessMode,
    Stream,
    TraceChunk,
    coalesce_chunks,
    collapse_consecutive,
)
from repro.obs.metrics import current_registry
from repro.obs.spans import span
from repro.obs.trace import current_tracer
from repro.utils.validation import check_positive, check_power_of_two

__all__ = [
    "CacheConfig",
    "FullyAssociativeLRU",
    "SetAssociativeLRU",
    "simulate",
]

WORD_BYTES = 4  #: the paper's 32-bit words


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache-line size (64 B throughout the paper).
    ways:
        Associativity; ``None`` means fully associative.
    """

    capacity_bytes: int
    line_bytes: int = 64
    ways: int | None = None

    def __post_init__(self) -> None:
        check_power_of_two("capacity_bytes", self.capacity_bytes)
        check_power_of_two("line_bytes", self.line_bytes)
        if self.line_bytes > self.capacity_bytes:
            raise ValueError("line_bytes cannot exceed capacity_bytes")
        if self.ways is not None:
            check_positive("ways", self.ways)
            if self.num_lines % self.ways != 0:
                raise ValueError(
                    f"ways ({self.ways}) must divide the line count ({self.num_lines})"
                )

    @property
    def num_lines(self) -> int:
        """Number of cache lines (``capacity / line``)."""
        return self.capacity_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        """The paper's ``b``: 32-bit words per line (16 for 64 B lines)."""
        return self.line_bytes // WORD_BYTES

    @property
    def capacity_words(self) -> int:
        """The paper's ``c``: 32-bit words of cache capacity."""
        return self.capacity_bytes // WORD_BYTES

    @property
    def num_sets(self) -> int:
        """Number of sets (1 way per set slot; fully associative -> 1 set)."""
        if self.ways is None:
            return 1
        return self.num_lines // self.ways


class _EngineBase:
    """Shared SEQUENTIAL-chunk handling and the public `run` entry point."""

    config: CacheConfig

    def process_chunk(self, chunk: TraceChunk, counters: MemCounters) -> None:
        if chunk.mode is AccessMode.SEQUENTIAL:
            self._process_sequential(chunk, counters)
        else:
            self._process_irregular(chunk, counters)

    def _process_sequential(self, chunk: TraceChunk, counters: MemCounters) -> None:
        n = chunk.num_accesses
        if n == 0:
            return
        if not chunk.write:
            counters.record(
                chunk.stream, reads=n, accesses=n, phase=chunk.phase
            )
        elif chunk.streaming_store:
            # Non-temporal store: full-line write straight to DRAM, no
            # read-for-ownership (Section VII).
            counters.record(chunk.stream, writes=n, accesses=n, phase=chunk.phase)
        else:
            # Regular store: write-allocate read, then eventual write-back.
            counters.record(
                chunk.stream, reads=n, writes=n, accesses=n, phase=chunk.phase
            )

    def _process_irregular(
        self, chunk: TraceChunk, counters: MemCounters
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def flush(self, counters: MemCounters) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def sync(self, counters: MemCounters) -> None:
        """Materialize any buffered counters without flushing the cache.

        Loop engines resolve every access eagerly, so the base
        implementation is a no-op; batching engines (e.g.
        :class:`repro.memsim.stackdist.StackDistanceLRU`) override it.
        """


class FullyAssociativeLRU(_EngineBase):
    """Exact fully-associative LRU cache with write-back + write-allocate.

    Implementation: an ``OrderedDict`` mapping line index to a dirty flag;
    its order is recency order (``move_to_end`` on hit, ``popitem(last=
    False)`` evicts the least recently used line).
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.ways is not None and config.ways != config.num_lines:
            raise ValueError(
                "FullyAssociativeLRU requires ways=None (or ways == num_lines); "
                "use SetAssociativeLRU for set-associative configs"
            )
        self.config = config
        self._cache: OrderedDict[int, bool] = OrderedDict()

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        lines, collapsed = collapse_consecutive(chunk.lines)
        cache = self._cache
        capacity = self.config.num_lines
        write = chunk.write
        hits = collapsed
        dram_reads = 0
        dram_writes = 0
        move_to_end = cache.move_to_end
        pop_oldest = cache.popitem
        # Two specialized loops keep the per-access work minimal; this loop
        # dominates simulation time for the gather-heavy kernels.
        if write:
            for line in lines.tolist():
                if line in cache:
                    hits += 1
                    move_to_end(line)
                    cache[line] = True
                else:
                    dram_reads += 1  # write-allocate fill
                    cache[line] = True
                    if len(cache) > capacity:
                        if pop_oldest(last=False)[1]:
                            dram_writes += 1  # dirty write-back
        else:
            for line in lines.tolist():
                if line in cache:
                    hits += 1
                    move_to_end(line)
                else:
                    dram_reads += 1
                    cache[line] = False
                    if len(cache) > capacity:
                        if pop_oldest(last=False)[1]:
                            dram_writes += 1
        counters.record(
            chunk.stream,
            reads=dram_reads,
            writes=dram_writes,
            hits=hits,
            accesses=chunk.num_accesses,
            phase=chunk.phase,
            irregular=True,
        )

    def flush(self, counters: MemCounters) -> None:
        """Write back all remaining dirty lines and empty the cache."""
        dirty_count = sum(1 for dirty in self._cache.values() if dirty)
        if dirty_count:
            counters.record(Stream.OTHER, writes=dirty_count, phase="flush")
        self._cache.clear()

    @property
    def occupancy(self) -> int:
        """Number of resident lines (test hook)."""
        return len(self._cache)


class SetAssociativeLRU(_EngineBase):
    """Exact set-associative LRU cache (reference implementation).

    One small recency dict per set; line -> set mapping uses the low line
    bits, as in real hardware.  Slower than :class:`FullyAssociativeLRU`,
    intended for validation and associativity ablations.
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.ways is None:
            config = CacheConfig(
                config.capacity_bytes, config.line_bytes, ways=config.num_lines
            )
        check_power_of_two("num_sets", config.num_sets)
        self.config = config
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        lines, collapsed = collapse_consecutive(chunk.lines)
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        write = chunk.write
        hits = collapsed
        dram_reads = 0
        dram_writes = 0
        for line in lines.tolist():
            cache = sets[line & mask]
            dirty = cache.pop(line, None)
            if dirty is None:
                dram_reads += 1
                cache[line] = write
                if len(cache) > ways:
                    victim = next(iter(cache))
                    if cache.pop(victim):
                        dram_writes += 1
            else:
                hits += 1
                cache[line] = dirty or write
        counters.record(
            chunk.stream,
            reads=dram_reads,
            writes=dram_writes,
            hits=hits,
            accesses=chunk.num_accesses,
            phase=chunk.phase,
            irregular=True,
        )

    def flush(self, counters: MemCounters) -> None:
        """Write back all remaining dirty lines and empty every set."""
        dirty_count = sum(
            1 for cache in self._sets for dirty in cache.values() if dirty
        )
        if dirty_count:
            counters.record(Stream.OTHER, writes=dirty_count, phase="flush")
        for cache in self._sets:
            cache.clear()

    @property
    def occupancy(self) -> int:
        """Number of resident lines across all sets (test hook)."""
        return sum(len(cache) for cache in self._sets)


#: Max irregular line accesses retained per stream for reuse-distance
#: histograms — bounds the instrumented path's memory on huge traces
#: (the Bennett–Kruskal pass is O(n log n) in this sample size).
REUSE_SAMPLE_CAP = 1 << 18


def simulate(
    trace,
    engine: _EngineBase,
    *,
    flush: bool = True,
    counters: MemCounters | None = None,
    coalesce: bool = True,
) -> MemCounters:
    """Run ``trace`` (an iterable of chunks) through ``engine``.

    ``flush=True`` writes back dirty lines at the end, charging the final
    write-backs the hardware would eventually perform; ``flush=False``
    keeps the cache warm but still syncs batching engines so the returned
    counters are complete.

    ``coalesce=True`` merges adjacent same-semantics chunks first
    (:func:`repro.memsim.trace.coalesce_chunks`) — counters are provably
    unchanged, per-chunk overhead shrinks.

    When a trace recorder (:mod:`repro.obs.trace`) or a metrics registry
    (:mod:`repro.obs.metrics`) is active, a slower instrumented loop runs
    instead: per-phase spans, per-stream DRAM counter tracks, a running
    miss-rate track, and reuse-distance histograms per irregular stream.
    The instrumented loop never coalesces, keeping per-chunk tracks (and
    the golden trace shape) unchanged.
    """
    if counters is None:
        counters = MemCounters()
    tracer = current_tracer()
    registry = current_registry()
    with span(f"simulate[{type(engine).__name__}]"):
        if tracer is None and registry is None:
            if coalesce:
                trace = coalesce_chunks(trace)
            for chunk in trace:
                engine.process_chunk(chunk, counters)
        else:
            _simulate_instrumented(trace, engine, counters, tracer, registry)
        if flush:
            engine.flush(counters)
        else:
            engine.sync(counters)
    return counters


def _simulate_instrumented(trace, engine, counters, tracer, registry) -> None:
    """The observability-enabled simulation loop (see :func:`simulate`)."""
    reuse_lines: dict[Stream, list[int]] | None = (
        {} if registry is not None else None
    )
    phase_span = None
    current_phase: str | None = None
    try:
        for chunk in trace:
            if chunk.phase != current_phase:
                if phase_span is not None:
                    phase_span.__exit__(None, None, None)
                current_phase = chunk.phase
                phase_span = span(f"phase[{current_phase or 'unphased'}]")
                phase_span.__enter__()
            if reuse_lines is not None and chunk.mode is AccessMode.IRREGULAR:
                sample = reuse_lines.setdefault(chunk.stream, [])
                room = REUSE_SAMPLE_CAP - len(sample)
                if room > 0:
                    sample.extend(chunk.lines[:room].tolist())
            engine.process_chunk(chunk, counters)
            if tracer is not None:
                engine.sync(counters)
                stream = chunk.stream
                tracer.counter(
                    f"dram[{stream.value}]",
                    {
                        "reads": counters.reads[stream],
                        "writes": counters.writes[stream],
                    },
                )
                tracer.counter("miss_rate", {"miss_rate": counters.miss_rate()})
    finally:
        if phase_span is not None:
            phase_span.__exit__(None, None, None)
    if reuse_lines:
        from repro.memsim.reuse import log2_bucketed, reuse_distance_histogram

        with span("reuse_histograms"):
            for stream, sample in reuse_lines.items():
                histogram = registry.histogram(f"reuse_distance/{stream.value}")
                buckets = log2_bucketed(reuse_distance_histogram(sample))
                for label, count in buckets.items():
                    histogram.observe_label(label, count)
