"""Vectorized exact fully-associative LRU via stack distances.

:class:`StackDistanceLRU` produces counters **bit-identical** to
:class:`repro.memsim.cache.FullyAssociativeLRU` — per stream, per phase,
including flush write-backs — while resolving buffered irregular chunks in
a handful of NumPy passes instead of a per-access Python loop.

Theory
------
An access hits a fully-associative LRU cache of ``C`` lines iff its *stack
distance* — the number of distinct lines referenced since the previous
access to the same line — is ``< C`` (Mattson et al.; the same fact powers
:func:`repro.memsim.reuse.reuse_distance_histogram`).  Computing exact
stack distances for every access costs an O(n log n) dominance count, which
in NumPy is slower than the tuned OrderedDict loop.  The engine instead
classifies accesses *adaptively*, with every rule exact:

0. **Working set fits => only cold misses.**  If the batch (plus carried
   residents) touches at most ``C`` distinct lines the cache never evicts,
   so every repeat access hits and classification is free.
1. **Short window => hit.**  With ``W = t - prev(t) - 1`` accesses between
   an access and its previous occurrence, the stack distance is at most
   ``W``; ``W < C`` proves a hit.
2. **Dense block => miss.**  The stream is cut into fixed blocks of
   ``_BLOCK`` accesses and each block's distinct-line count is computed with
   one cheap row-wise sort.  Distinct counts are monotone under window
   inclusion, so any fully-contained block with ``>= C`` distinct lines
   proves a miss.  On gather-heavy (cache-thrashing) traces this classifies
   ~99% of accesses.
3. **Stragglers => exact window distinct count.**  Accesses left undecided
   by rule 2 have windows shorter than ``2 * _BLOCK`` (a longer window
   would contain a full block).  Their windows are gathered into a padded
   matrix and each row's distinct-line count is computed exactly with one
   row-wise sort; the pad sentinel collapses to a single extra distinct
   value that is subtracted off.

When the straggler matrix would be too large — traces whose reuse windows
cluster just above the capacity, where no exact vectorization is known —
the engine falls back to a sequential replay for that batch: still exact,
merely no faster than the loop engine.  The adaptive envelope is therefore
"fast where vectorization exists, never wrong anywhere".

Eviction accounting uses two ordering facts (both asserted in the
differential tests): evictions happen exactly at misses whose preceding
distinct-line count is ``>= C``, and the k-th eviction (in time order)
evicts the *residency* — a line's tenure between consecutive misses on it —
with the k-th smallest last-touch time.  Because residency last-touch times
are extracted with ``flatnonzero`` they arrive already time-sorted, so the
pairing is a slice, not a sort.  A residency is charged a write-back iff
any store landed during it (its seed access counts, carrying dirty state
across drains), matching write-back + write-allocate semantics exactly.

State is carried across drains by *seeding*: the resident lines are
replayed, oldest first, as synthetic head accesses whose write flag is the
carried dirty bit.  Seeded replay reproduces the carried LRU state exactly,
so :meth:`StackDistanceLRU.sync` can materialize counters mid-trace (e.g.
for per-iteration instrumentation) without losing exactness.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.memsim.cache import CacheConfig, _EngineBase
from repro.memsim.counters import MemCounters
from repro.memsim.trace import Stream, TraceChunk, collapse_consecutive

__all__ = ["StackDistanceLRU"]

#: Accesses per classification block (rule 2).  512 keeps the row-sort in
#: cache while making dense blocks likely for any capacity <= 512 lines.
_BLOCK = 512
_BLOCK_SHIFT = 9

#: Default drain threshold: buffered accesses before counters are resolved.
_DEFAULT_BATCH = 1 << 21

#: The straggler matrix may hold at most this multiple of the batch size
#: before the engine falls back to sequential replay for the batch.
_PAD_CAP = 4

#: Pad sentinel for the straggler matrix; strictly greater than any line
#: index the vectorized rules accept (``max_line < _PAD`` is checked).
_PAD = np.int32(2**31 - 1)


class StackDistanceLRU(_EngineBase):
    """Exact fully-associative LRU engine, vectorized via stack distances.

    Drop-in replacement for :class:`FullyAssociativeLRU`: identical
    counters, identical flush semantics.  Irregular chunks are buffered and
    resolved in one vectorized pass per drain; call :meth:`sync` (or let
    :func:`repro.memsim.cache.simulate` do it) to materialize counters
    without flushing the simulated cache.
    """

    def __init__(
        self, config: CacheConfig, *, batch_accesses: int = _DEFAULT_BATCH
    ) -> None:
        if config.ways is not None and config.ways != config.num_lines:
            raise ValueError(
                "StackDistanceLRU requires ways=None (or ways == num_lines); "
                "use SetAssociativeLRU for set-associative configs"
            )
        if batch_accesses < 1:
            raise ValueError("batch_accesses must be positive")
        self.config = config
        self.batch_accesses = int(batch_accesses)
        self._pending: list[tuple[np.ndarray, bool, Stream, str, int]] = []
        self._pending_accesses = 0
        self._pending_writes = False
        self._resident_lines = np.empty(0, dtype=np.int64)
        self._resident_dirty = np.empty(0, dtype=bool)
        self._scratch: dict[str, np.ndarray] = {}

    def _buf(self, key: str, size: int, dtype) -> np.ndarray:
        """Reusable uninitialized scratch (avoids first-touch faults per drain)."""
        arr = self._scratch.get(key)
        if arr is None or arr.size < size:
            arr = np.empty(size, dtype=dtype)
            self._scratch[key] = arr
        return arr[:size]

    # ------------------------------------------------------------------
    # engine interface

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        lines, _ = collapse_consecutive(chunk.lines)
        batch = self.batch_accesses
        # Split oversized chunks so every drain sorts at most `batch`
        # accesses: the composite sort is measurably cheaper per element at
        # the batch size than on one huge array, and scratch buffers stay
        # bounded.  Counter totals are unchanged: `record` accumulates, and
        # the collapse credit rides on the first piece.
        start = 0
        credited = chunk.num_accesses - lines.size
        while True:
            stop = min(start + batch, lines.size)
            piece = lines[start:stop]
            self._pending.append(
                (piece, chunk.write, chunk.stream, chunk.phase, piece.size + credited)
            )
            credited = 0
            self._pending_accesses += piece.size
            self._pending_writes |= chunk.write
            if self._pending_accesses >= batch:
                self._drain(counters)
            start = stop
            if start >= lines.size:
                break

    def sync(self, counters: MemCounters) -> None:
        """Resolve all buffered chunks into ``counters`` (cache state kept)."""
        self._drain(counters)

    def flush(self, counters: MemCounters) -> None:
        """Write back all remaining dirty lines and empty the cache."""
        self._drain(counters)
        dirty_count = int(self._resident_dirty.sum())
        if dirty_count:
            counters.record(Stream.OTHER, writes=dirty_count, phase="flush")
        self._resident_lines = np.empty(0, dtype=np.int64)
        self._resident_dirty = np.empty(0, dtype=bool)

    @property
    def occupancy(self) -> int:
        """Number of resident lines after the last drain (test hook).

        Unlike the loop engines this does not force a drain; call
        :meth:`sync` first for an up-to-date value.
        """
        return int(self._resident_lines.size)

    # ------------------------------------------------------------------
    # the vectorized drain

    def _drain(self, counters: MemCounters) -> None:
        if not self._pending:
            return
        pending = self._pending
        capacity = self.config.num_lines
        n_seed = int(self._resident_lines.size)
        carried_dirty = bool(self._resident_dirty.any())

        if n_seed == 0 and len(pending) == 1:
            lines = pending[0][0]
        else:
            lines = np.concatenate(
                [self._resident_lines] + [chunk[0] for chunk in pending]
            )
        n = lines.size
        if n == 0:
            self._pending = []
            self._pending_accesses = 0
            self._pending_writes = False
            return
        nchunks = len(pending)

        order, same, window, max_line = self._line_groups(lines, n)
        miss_sorted, fell_back = self._classify(
            lines, order, same, window, n, n_seed, capacity, max_line
        )

        need_write_path = self._pending_writes or carried_dirty
        if fell_back:
            miss_per_chunk, resident, resident_dirty, wb_per_chunk = (
                self._sequential_replay(capacity, nchunks)
            )
        elif need_write_path:
            miss_per_chunk, resident, resident_dirty, wb_per_chunk = (
                self._account_writes(
                    lines, order, same, miss_sorted, n, capacity, nchunks
                )
            )
        else:
            miss_per_chunk = self._misses_per_chunk(
                order, miss_sorted, n_seed, nchunks
            )
            resident = self._read_only_residents(lines, order, same, capacity)
            resident_dirty = np.zeros(resident.size, dtype=bool)
            wb_per_chunk = np.zeros(nchunks, dtype=np.int64)

        for index, (chunk_lines, _, stream, phase, orig_n) in enumerate(pending):
            misses = int(miss_per_chunk[index])
            counters.record(
                stream,
                reads=misses,
                writes=int(wb_per_chunk[index]),
                hits=orig_n - misses,
                accesses=orig_n,
                phase=phase,
                irregular=True,
            )

        self._resident_lines = resident
        self._resident_dirty = resident_dirty
        self._pending = []
        self._pending_accesses = 0
        self._pending_writes = False

    def _misses_per_chunk(
        self,
        order: np.ndarray,
        miss_sorted: np.ndarray,
        n_seed: int,
        nchunks: int,
    ) -> np.ndarray:
        """Per-chunk miss counts (seed entries are already masked out)."""
        if nchunks == 1:
            return np.array([int(miss_sorted.sum())], dtype=np.int64)
        chunk_of = np.repeat(
            np.arange(nchunks, dtype=np.int32),
            np.array([chunk[0].size for chunk in self._pending], dtype=np.int64),
        )
        miss_t = order[miss_sorted].astype(np.int64)
        miss_t -= n_seed
        return np.bincount(chunk_of[miss_t], minlength=nchunks)

    def _line_groups(self, lines: np.ndarray, n: int):
        """Stable line-grouped order from one composite-key sort.

        Returns ``(order, same, window, max_line)`` where ``order`` holds
        time indices grouped by line (time-ascending within a group),
        ``same`` marks entries preceded by the same line, and ``window``
        holds ``t - prev(t) - 1`` wherever ``same`` (garbage elsewhere —
        every consumer masks with ``same``).
        """
        time_bits = max(int(n - 1).bit_length(), 1)
        comp = self._buf("comp", n, np.int64)
        np.left_shift(lines, time_bits, out=comp)
        stamp = self._scratch.get("stamp")
        if stamp is None or stamp.size < n:
            stamp = np.arange(max(n, self.batch_accesses), dtype=np.int64)
            self._scratch["stamp"] = stamp
        comp |= stamp[:n]
        comp.sort()
        max_line = int(comp[-1] >> time_bits)
        # Low-bits extraction without an int64 temporary: C-style truncation
        # to uint32 keeps every time bit (time_bits <= 31).
        order = self._buf("order", n, np.uint32)
        np.copyto(order, comp, casting="unsafe")
        order &= np.uint32((1 << time_bits) - 1)
        order = order.view(np.int32)
        same = self._buf("same", n, bool)
        same[0] = False
        # Same line iff the high (line) bits of adjacent keys match, i.e.
        # iff the XOR of adjacent keys stays within the time bits.  The raw
        # difference alone is ambiguous: its time component may be negative.
        gap = self._buf("gap", max(n - 1, 1), np.int64)[: n - 1]
        np.bitwise_xor(comp[1:], comp[:-1], out=gap)
        np.less(gap, 1 << time_bits, out=same[1:])
        # Window lengths straight from int32 time indices — no int64 pass.
        window = self._buf("window", n, np.int32)
        window[0] = -1
        np.subtract(order[1:], order[:-1], out=window[1:])
        window[1:] -= 1
        return order, same, window, max_line

    def _classify(
        self,
        lines: np.ndarray,
        order: np.ndarray,
        same: np.ndarray,
        window: np.ndarray,
        n: int,
        n_seed: int,
        capacity: int,
        max_line: int,
    ):
        """Exact per-access miss flags in line-sorted order."""
        # Rule 0 needs the cold count; cold accesses miss, repeats may hit.
        miss_sorted = self._buf("miss", n, bool)
        np.logical_not(same, out=miss_sorted)
        distinct_total = int(miss_sorted.sum())
        if distinct_total <= capacity:
            # Working set fits: the cache never evicts, repeats always hit.
            if n_seed:
                miss_sorted &= order >= n_seed
            return miss_sorted, False

        # Rule 1: short windows are hits; the rest need a distinct count.
        long_window = self._buf("lw", n, bool)
        np.greater_equal(window, capacity, out=long_window)
        long_window &= same
        undecided = long_window

        # Rule 2: a fully-contained dense block proves a miss.
        nblocks = n >> _BLOCK_SHIFT
        use_blocks = nblocks > 0 and capacity <= _BLOCK and max_line < int(_PAD)
        if use_blocks:
            blk = self._buf("blk", nblocks << _BLOCK_SHIFT, np.int32).reshape(
                nblocks, _BLOCK
            )
            np.copyto(blk, lines[: nblocks << _BLOCK_SHIFT].reshape(blk.shape))
            blk.sort(axis=1)
            distinct = (blk[:, 1:] != blk[:, :-1]).sum(axis=1, dtype=np.int32)
            distinct += 1
            # last_dense[b + 1] = latest dense block at or before b; the
            # leading -1 row absorbs accesses in the first block (no block
            # can end before them), replacing a separate bounds mask.
            last_dense = np.empty(nblocks + 1, dtype=np.int32)
            last_dense[0] = -1
            np.maximum.accumulate(
                np.where(distinct >= capacity, np.arange(nblocks, dtype=np.int32), -1),
                out=last_dense[1:],
            )
            block_lo = self._buf("blo", n, np.int32)
            np.subtract(order, window, out=block_lo)  # prev + 1
            block_lo += _BLOCK - 1
            block_lo >>= _BLOCK_SHIFT
            block_hi = self._buf("bhi", n, np.int32)
            np.right_shift(order, _BLOCK_SHIFT, out=block_hi)
            dense_at = self._buf("dat", n, np.int32)
            np.take(last_dense, block_hi, out=dense_at, mode="clip")
            dense_in = self._buf("dense", n, bool)
            np.greater_equal(dense_at, block_lo, out=dense_in)
            dense_in &= long_window
            miss_sorted |= dense_in
            np.logical_xor(long_window, dense_in, out=long_window)
            undecided = long_window

        # Rule 3: exact distinct counts for the straggler windows.
        strag = np.flatnonzero(undecided)
        if strag.size:
            widths = window[strag]
            # With rule 2 active, windows of >= 2 * _BLOCK accesses always
            # contain a full block, so straggler widths are bounded.
            pad_width = 2 * _BLOCK if use_blocks else int(widths.max()) + 1
            if (
                strag.size * pad_width > max(_PAD_CAP * n, 1 << 22)
                or max_line >= int(_PAD)
            ):
                return miss_sorted, True
            lines32 = self._buf("l32", n, np.int32)
            np.copyto(lines32, lines, casting="unsafe")
            start = order[strag] - widths  # prev + 1
            span = np.arange(pad_width, dtype=np.int32)
            mat = lines32.take(start[:, None] + span[None, :], mode="clip")
            np.copyto(mat, _PAD, where=span[None, :] >= widths[:, None])
            mat.sort(axis=1)
            distinct = (mat[:, 1:] != mat[:, :-1]).sum(axis=1, dtype=np.int32)
            distinct += 1
            # The pad block (all == _PAD > any line) adds exactly one
            # distinct value when present.
            distinct -= widths < pad_width
            miss_sorted[strag] = distinct >= capacity

        if n_seed:
            miss_sorted &= order >= n_seed
        return miss_sorted, False

    def _account_writes(
        self,
        lines: np.ndarray,
        order: np.ndarray,
        same: np.ndarray,
        miss_sorted: np.ndarray,
        n: int,
        capacity: int,
        nchunks: int,
    ):
        """Eviction pairing + dirty-residency write-back accounting."""
        n_seed = int(self._resident_lines.size)
        writes_time = np.empty(n, dtype=bool)
        writes_time[:n_seed] = self._resident_dirty
        start = n_seed
        for chunk_lines, write, _, _, _ in self._pending:
            stop = start + chunk_lines.size
            writes_time[start:stop] = write
            start = stop

        miss_time = np.empty(n, dtype=bool)
        miss_time[order] = miss_sorted
        cold_time = np.empty(n, dtype=bool)
        cold_time[order] = ~same

        distinct_before = np.cumsum(cold_time, dtype=np.int32)
        distinct_before -= cold_time
        evict_pos = np.flatnonzero(miss_time & (distinct_before >= capacity))

        # Residency runs in line-sorted order: a run starts at each first
        # occurrence or miss; it ends where the next entry starts a run.
        run_start = ~same | miss_sorted
        writes_sorted = writes_time[order]
        wsum = np.cumsum(writes_sorted, dtype=np.int32)
        run_origin = np.maximum.accumulate(
            np.where(run_start, np.arange(n, dtype=np.int32), -1)
        )
        run_dirty = wsum - wsum[run_origin] + writes_sorted[run_origin] > 0
        tau_mask = np.empty(n, dtype=bool)
        tau_mask[-1] = True
        tau_mask[:-1] = run_start[1:]

        tau_code = np.zeros(n, dtype=np.int8)
        sel = np.flatnonzero(tau_mask)
        tau_code[order[sel]] = 1 + run_dirty[sel]
        taus = np.flatnonzero(tau_code)

        evictions = evict_pos.size
        dirty_evicted = tau_code[taus[:evictions]] == 2

        if nchunks == 1:
            miss_per_chunk = np.array([int(miss_sorted.sum())], dtype=np.int64)
            wb_per_chunk = np.array([int(dirty_evicted.sum())], dtype=np.int64)
        else:
            chunk_of = np.repeat(
                np.arange(nchunks, dtype=np.int32),
                np.array(
                    [chunk[0].size for chunk in self._pending], dtype=np.int64
                ),
            )
            miss_per_chunk = np.bincount(
                chunk_of[miss_time[n_seed:]], minlength=nchunks
            )
            wb_per_chunk = np.bincount(
                chunk_of[evict_pos[dirty_evicted] - n_seed], minlength=nchunks
            )

        survivors = taus[evictions:]
        resident = lines[survivors]
        resident_dirty = tau_code[survivors] == 2
        return miss_per_chunk, resident, resident_dirty, wb_per_chunk

    @staticmethod
    def _read_only_residents(
        lines: np.ndarray, order: np.ndarray, same: np.ndarray, capacity: int
    ) -> np.ndarray:
        """Final resident lines when no write can exist: top-C last touches."""
        last_of_line = np.empty(same.size, dtype=bool)
        last_of_line[-1] = True
        np.logical_not(same[1:], out=last_of_line[:-1])
        last_pos = order[last_of_line]
        if last_pos.size > capacity:
            last_pos = np.partition(last_pos, last_pos.size - capacity)[
                last_pos.size - capacity :
            ]
        last_pos.sort()
        return lines[last_pos]

    def _sequential_replay(self, capacity: int, nchunks: int):
        """Exact fallback for inherently sequential traces: the oracle loop.

        Mirrors :class:`FullyAssociativeLRU`'s specialized per-chunk loops
        so the fallback costs roughly what the loop engine would.
        """
        cache: OrderedDict[int, bool] = OrderedDict()
        for line, dirty in zip(
            self._resident_lines.tolist(), self._resident_dirty.tolist()
        ):
            cache[line] = dirty
        miss_per_chunk = np.zeros(nchunks, dtype=np.int64)
        wb_per_chunk = np.zeros(nchunks, dtype=np.int64)
        move_to_end = cache.move_to_end
        popitem = cache.popitem
        for index, (chunk_lines, write, _, _, _) in enumerate(self._pending):
            misses = 0
            write_backs = 0
            if write:
                for line in chunk_lines.tolist():
                    if line in cache:
                        move_to_end(line)
                        cache[line] = True
                    else:
                        misses += 1
                        cache[line] = True
                        if len(cache) > capacity:
                            if popitem(last=False)[1]:
                                write_backs += 1
            else:
                for line in chunk_lines.tolist():
                    if line in cache:
                        move_to_end(line)
                    else:
                        misses += 1
                        cache[line] = False
                        if len(cache) > capacity:
                            if popitem(last=False)[1]:
                                write_backs += 1
            miss_per_chunk[index] = misses
            wb_per_chunk[index] = write_backs
        resident = np.fromiter(cache.keys(), dtype=np.int64, count=len(cache))
        resident_dirty = np.fromiter(cache.values(), dtype=bool, count=len(cache))
        return miss_per_chunk, resident, resident_dirty, wb_per_chunk
