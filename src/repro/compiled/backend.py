"""Backend selection and bindings for the compiled tier.

Exactly one backend is active per process, chosen at first use:

1. ``numba`` — ``@njit`` versions of the hot loops (``parallel=True`` for
   the two propagation-blocking phases, whose iterations write disjoint
   slots and are therefore exact under any interleaving);
2. ``cc`` — :data:`_C_SOURCE` compiled with the system C compiler into a
   temp-dir shared library (content-addressed by source hash, so repeat
   processes reload instead of recompiling) and bound through ctypes;
3. ``None`` — no backend; callers fall back to the pure-NumPy oracles.

``REPRO_COMPILED_BACKEND`` overrides the ladder: ``numba``/``cc`` force
one rung (``None`` if unavailable), ``none`` disables the tier (used by
the fallback tests).

The first successful build/JIT is wrapped in the span
``compiled_warmup[<backend>]`` so compilation cost lands in run reports
instead of silently inflating the first measured iteration; see
:func:`warmup`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.obs.log import get_logger
from repro.obs.spans import span

__all__ = [
    "BACKEND_ENV",
    "WARMUP_SPAN_PREFIX",
    "available",
    "backend_name",
    "get_backend",
    "warmup",
    "warmup_seconds",
]

log = get_logger(__name__)

#: Environment variable forcing a backend: ``numba``, ``cc``, or ``none``.
BACKEND_ENV = "REPRO_COMPILED_BACKEND"

#: Span recorded around the first backend build/JIT compilation; the full
#: name is ``compiled_warmup[<backend>]`` (``docs/metrics_schema.md``).
WARMUP_SPAN_PREFIX = "compiled_warmup"

#: C implementations of the two hottest loops (propagation-blocking
#: binning/accumulate, Algorithm 3) and an exact fully-associative LRU
#: replay (the per-access semantics of ``FullyAssociativeLRU``).  The LRU
#: state is caller-allocated NumPy buffers: a dense node pool (slots
#: ``0..count-1`` always live because an eviction's slot is immediately
#: reused by the insertion that caused it) forming an intrusive MRU list,
#: plus an open-addressing hash table with tombstone deletion, rebuilt
#: in place when tombstones exceed a quarter of the table.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define EMPTY (-1)
#define TOMB  (-2)

/* ---------------- propagation blocking ---------------- */

/* Binning phase in push (CSR) order: contributions are read sequentially
   and written into the deterministic bin layout via the precomputed slot
   permutation `pos` (the inverse of BinLayout.order) — a small number of
   sequential per-bin write streams, as in the paper. */
void pb_binning(const float *contrib, const int64_t *offsets,
                const int32_t *pos, int64_t n, float *binned) {
    for (int64_t u = 0; u < n; ++u) {
        float c = contrib[u];
        int64_t hi = offsets[u + 1];
        for (int64_t e = offsets[u]; e < hi; ++e)
            binned[pos[e]] = c;
    }
}

/* Accumulate phase: drain the bins in order; the float64 adds happen in
   bin-major slot order, which is exactly the per-bin np.bincount order of
   the NumPy oracle, so the sums are bit-identical. */
void pb_accumulate(const float *binned, const int32_t *dst_sorted,
                   int64_t m, double *sums) {
    for (int64_t j = 0; j < m; ++j)
        sums[dst_sorted[j]] += (double)binned[j];
}

/* ---------------- exact fully-associative LRU ----------------
   hdr: int64[4] = {count, head (MRU), tail (LRU), tombstones}        */

static inline int64_t lru_hash(int64_t key, int64_t mask) {
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return (int64_t)(h & (uint64_t)mask);
}

static void lru_rebuild(int64_t *hdr, int32_t *table, int64_t tsize,
                        const int64_t *line) {
    int64_t mask = tsize - 1;
    memset(table, 0xFF, (size_t)tsize * sizeof(int32_t)); /* all EMPTY */
    for (int64_t s = 0; s < hdr[0]; ++s) {
        int64_t i = lru_hash(line[s], mask);
        while (table[i] != EMPTY)
            i = (i + 1) & mask;
        table[i] = (int32_t)s;
    }
    hdr[3] = 0;
}

void lru_run(int64_t *hdr, int32_t *table, int64_t tsize,
             int64_t *line, int32_t *prev, int32_t *next, uint8_t *dirty,
             int64_t capacity, const int64_t *lines, int64_t n,
             int32_t write, int64_t *out) {
    int64_t mask = tsize - 1;
    int64_t count = hdr[0], head = hdr[1], tail = hdr[2], tombs = hdr[3];
    int64_t misses = 0, writebacks = 0;
    for (int64_t a = 0; a < n; ++a) {
        int64_t key = lines[a];
        int64_t i = lru_hash(key, mask);
        int64_t free_pos = -1;
        int32_t node = EMPTY;
        for (;;) {
            int32_t v = table[i];
            if (v == EMPTY)
                break;
            if (v == TOMB) {
                if (free_pos < 0)
                    free_pos = i;
            } else if (line[v] == key) {
                node = v;
                break;
            }
            i = (i + 1) & mask;
        }
        if (node != EMPTY) {
            /* hit: move to MRU, merge the dirty bit */
            if (write)
                dirty[node] = 1;
            if (head != node) {
                int32_t p = prev[node], nx = next[node];
                if (p >= 0) next[p] = nx;
                if (nx >= 0) prev[nx] = p;
                if (tail == node) tail = p;
                prev[node] = -1;
                next[node] = (int32_t)head;
                if (head >= 0) prev[head] = (int32_t)node;
                head = node;
            }
            continue;
        }
        ++misses;
        int64_t slot;
        if (count == capacity) {
            /* evict the LRU tail; its slot hosts the new line */
            int64_t victim = tail;
            int64_t vkey = line[victim];
            tail = prev[victim];
            if (tail >= 0) next[tail] = -1; else head = -1;
            if (dirty[victim])
                ++writebacks;
            int64_t d = lru_hash(vkey, mask);
            while (table[d] == TOMB || table[d] < 0 || line[table[d]] != vkey)
                d = (d + 1) & mask;
            table[d] = TOMB;
            ++tombs;
            slot = victim;
            if (free_pos < 0 && d == i)
                free_pos = d; /* the key may hash where the victim sat */
        } else {
            slot = count++;
        }
        line[slot] = key;
        dirty[slot] = (uint8_t)write;
        prev[slot] = -1;
        next[slot] = (int32_t)head;
        if (head >= 0) prev[head] = (int32_t)slot;
        head = slot;
        if (tail < 0) tail = slot;
        if (free_pos >= 0) {
            table[free_pos] = (int32_t)slot;
            --tombs;
        } else {
            /* i still points at the terminating slot of the probe */
            while (table[i] >= 0)
                i = (i + 1) & mask;
            if (table[i] == TOMB) --tombs;
            table[i] = (int32_t)slot;
        }
        if (tombs * 4 > tsize) {
            hdr[0] = count;
            lru_rebuild(hdr, table, tsize, line);
            tombs = 0;
        }
    }
    hdr[0] = count;
    hdr[1] = head;
    hdr[2] = tail;
    hdr[3] = tombs;
    out[0] += misses;
    out[1] += writebacks;
}

int64_t lru_flush(int64_t *hdr, int32_t *table, int64_t tsize,
                  const uint8_t *dirty) {
    int64_t dirty_count = 0;
    for (int64_t s = 0; s < hdr[0]; ++s)
        if (dirty[s])
            ++dirty_count;
    hdr[0] = 0;
    hdr[1] = -1;
    hdr[2] = -1;
    hdr[3] = 0;
    memset(table, 0xFF, (size_t)tsize * sizeof(int32_t));
    return dirty_count;
}
"""


def _force() -> str | None:
    value = os.environ.get(BACKEND_ENV, "").strip().lower()
    return value or None


class _CcBackend:
    """ctypes bindings over the compiled :data:`_C_SOURCE` library."""

    name = "cc"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.pb_binning.argtypes = [ctypes.c_void_p] * 3 + [
            ctypes.c_int64,
            ctypes.c_void_p,
        ]
        lib.pb_binning.restype = None
        lib.pb_accumulate.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_void_p,
        ]
        lib.pb_accumulate.restype = None
        lib.lru_run.argtypes = (
            [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64]
            + [ctypes.c_void_p] * 4
            + [ctypes.c_int64, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int32]
            + [ctypes.c_void_p]
        )
        lib.lru_run.restype = None
        lib.lru_flush.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_void_p,
        ]
        lib.lru_flush.restype = ctypes.c_int64

    @staticmethod
    def _ptr(array: np.ndarray) -> int:
        return array.ctypes.data

    def pb_binning(self, contrib, offsets, pos, bounds, binned) -> None:
        self._lib.pb_binning(
            self._ptr(contrib),
            self._ptr(offsets),
            self._ptr(pos),
            ctypes.c_int64(offsets.size - 1),
            self._ptr(binned),
        )

    def pb_accumulate(self, binned, dst_sorted, bounds, sums) -> None:
        self._lib.pb_accumulate(
            self._ptr(binned),
            self._ptr(dst_sorted),
            ctypes.c_int64(dst_sorted.size),
            self._ptr(sums),
        )

    def lru_run(self, state, lines, write: bool) -> tuple[int, int]:
        out = np.zeros(2, dtype=np.int64)
        self._lib.lru_run(
            self._ptr(state.hdr),
            self._ptr(state.table),
            ctypes.c_int64(state.table.size),
            self._ptr(state.line),
            self._ptr(state.prev),
            self._ptr(state.next),
            self._ptr(state.dirty),
            ctypes.c_int64(state.capacity),
            self._ptr(lines),
            ctypes.c_int64(lines.size),
            ctypes.c_int32(1 if write else 0),
            self._ptr(out),
        )
        return int(out[0]), int(out[1])

    def lru_flush(self, state) -> int:
        return int(
            self._lib.lru_flush(
                self._ptr(state.hdr),
                self._ptr(state.table),
                ctypes.c_int64(state.table.size),
                self._ptr(state.dirty),
            )
        )


class _NumbaBackend:
    """``@njit`` twins of the C loops (see :mod:`repro.compiled._numba`)."""

    name = "numba"

    def __init__(self, impl) -> None:
        self._impl = impl

    def pb_binning(self, contrib, offsets, pos, bounds, binned) -> None:
        self._impl.pb_binning(contrib, offsets, pos, binned)

    def pb_accumulate(self, binned, dst_sorted, bounds, sums) -> None:
        self._impl.pb_accumulate(binned, dst_sorted, bounds, sums)

    def lru_run(self, state, lines, write: bool) -> tuple[int, int]:
        misses, writebacks = self._impl.lru_run(
            state.hdr,
            state.table,
            state.line,
            state.prev,
            state.next,
            state.dirty,
            state.capacity,
            lines,
            write,
        )
        return int(misses), int(writebacks)

    def lru_flush(self, state) -> int:
        return int(self._impl.lru_flush(state.hdr, state.table, state.dirty))


def _compiler() -> str | None:
    import shutil

    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_cc() -> _CcBackend | None:
    compiler = _compiler()
    if compiler is None:
        log.debug("compiled tier: no C compiler on PATH")
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_COMPILED_CACHE_DIR") or tempfile.gettempdir()
    suffix = "dll" if sys.platform == "win32" else "so"
    lib_path = os.path.join(cache_dir, f"repro_compiled_{digest}.{suffix}")
    if not os.path.exists(lib_path):
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, f"repro_compiled_{digest}.c")
        with open(src_path, "w") as handle:
            handle.write(_C_SOURCE)
        tmp_path = f"{lib_path}.{os.getpid()}.tmp"
        for flags in (["-O3", "-march=native"], ["-O2"]):
            cmd = [compiler, *flags, "-shared", "-fPIC", "-o", tmp_path, src_path]
            try:
                result = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                log.debug("compiled tier: %s failed: %s", compiler, exc)
                return None
            if result.returncode == 0:
                break
            log.debug(
                "compiled tier: %s failed (%s): %s",
                " ".join(cmd),
                result.returncode,
                result.stderr.strip(),
            )
        else:
            return None
        # Atomic publish so concurrent processes never load a half-written
        # library; losing the race is fine, the content is identical.
        os.replace(tmp_path, lib_path)
    try:
        return _CcBackend(ctypes.CDLL(lib_path))
    except OSError as exc:
        log.debug("compiled tier: loading %s failed: %s", lib_path, exc)
        return None


def _build_numba() -> _NumbaBackend | None:
    try:
        from repro.compiled import _numba as impl
    except Exception as exc:  # the @njit decorators run at import time
        log.debug("compiled tier: numba unusable: %s", exc)
        return None
    backend = _NumbaBackend(impl)
    # Trigger JIT compilation of every entry point now, inside the warmup
    # span, so the first measured iteration is not charged for it.
    impl.compile_all()
    return backend


_backend: object | None = None
_resolved = False
_warmup_seconds = 0.0


def get_backend():
    """The active backend object, or ``None``; builds lazily on first call.

    The build (C compile + load, or Numba JIT of every entry point) runs
    inside the ``compiled_warmup[<backend>]`` span, so when a recorder or
    tracer is active the compilation cost is attributed explicitly.
    """
    global _backend, _resolved, _warmup_seconds
    if _resolved:
        return _backend
    force = _force()
    start = time.perf_counter()
    if force == "none":
        backend = None
    elif force == "numba":
        with span(f"{WARMUP_SPAN_PREFIX}[numba]"):
            backend = _build_numba()
    elif force == "cc":
        with span(f"{WARMUP_SPAN_PREFIX}[cc]"):
            backend = _build_cc()
    else:
        with span(f"{WARMUP_SPAN_PREFIX}[numba]"):
            backend = _build_numba()
        if backend is None:
            with span(f"{WARMUP_SPAN_PREFIX}[cc]"):
                backend = _build_cc()
    _warmup_seconds = time.perf_counter() - start
    _backend = backend
    _resolved = True
    if backend is None:
        log.debug("compiled tier: no backend available (force=%s)", force)
    else:
        log.debug(
            "compiled tier: backend %s ready in %.3fs",
            backend.name,
            _warmup_seconds,
        )
    return _backend


def _reset_backend_for_tests() -> None:
    """Drop the resolved backend so the next call re-reads the environment."""
    global _backend, _resolved, _warmup_seconds
    _backend = None
    _resolved = False
    _warmup_seconds = 0.0


def available() -> bool:
    """Whether a compiled backend (numba or cc) is usable in this process."""
    return get_backend() is not None


def backend_name() -> str:
    """``"numba"``, ``"cc"``, or ``"numpy"`` (the no-backend fallback)."""
    backend = get_backend()
    return backend.name if backend is not None else "numpy"


def warmup() -> dict[str, object]:
    """Eagerly build/JIT the backend; returns what happened.

    Idempotent: only the first call per process compiles (and records the
    ``compiled_warmup[<backend>]`` span); later calls return the cached
    outcome with ``"cached": True``.  Returns ``{"backend", "seconds",
    "cached"}`` — ``backend`` is ``"numpy"`` when no backend is available,
    in which case nothing was compiled and ``seconds`` only covers the
    failed probe.
    """
    cached = _resolved
    get_backend()
    return {
        "backend": backend_name(),
        "seconds": _warmup_seconds,
        "cached": cached,
    }


def warmup_seconds() -> float:
    """Wall-clock seconds the backend build/JIT took (0.0 before warmup)."""
    return _warmup_seconds
