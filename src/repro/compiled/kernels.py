"""Compiled PageRank kernels: ``pb-compiled`` and ``dpb-compiled``.

These subclass the propagation-blocking oracles and override only
:meth:`~repro.kernels.base.PageRankKernel.run` — the trace, instruction
model, and communication model are inherited unchanged, so ``trace()`` and
``measure()`` are *definitionally* identical to the oracle's.  The
compiled ``run`` produces **bit-identical scores** to the oracle because
both execute the same float operations in the same order:

* binning writes each float32 contribution into its deterministic bin
  slot (the oracle reaches the same buffer via
  ``np.repeat(...)[layout.order]``) — no arithmetic, just placement;
* accumulate adds ``float64(binned[j])`` into ``sums`` in bin-major slot
  order, which is exactly the per-destination addition order of the
  oracle's per-bin ``np.bincount`` (the float32→float64 conversion is
  exact, so keeping the binned buffer in float32 — half the traffic, as
  the paper stores 32-bit words — changes nothing);
* apply reuses the oracle's :func:`~repro.kernels.base.apply_damping`.

Availability: requires a backend (Numba or a C compiler) *and*
``num_edges < 2**31`` (bin slots are indexed by int32, matching the
paper's 32-bit ids).  Otherwise :meth:`run` falls back to the oracle with
a one-time warning — same results, oracle speed.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.backend import backend_name, get_backend
from repro.kernels.base import DAMPING, apply_damping, compute_contributions
from repro.kernels.propagation_blocking import (
    DeterministicPBPageRank,
    PropagationBlockingPageRank,
)
from repro.obs.log import get_logger
from repro.obs.spans import span

__all__ = [
    "KERNEL_TIERS",
    "CompiledPBPageRank",
    "CompiledDPBPageRank",
    "resolve_method",
]

log = get_logger(__name__)

#: Kernel tiers selectable via ``--kernel-tier``: ``numpy`` runs the
#: oracle implementations, ``compiled`` maps methods through
#: :func:`resolve_method` to their compiled variants where one exists.
KERNEL_TIERS = ("numpy", "compiled")

#: Oracle method -> compiled variant (identity for everything else).
_COMPILED_METHODS = {"pb": "pb-compiled", "dpb": "dpb-compiled"}


def resolve_method(method: str, tier: str = "numpy") -> str:
    """Map a kernel method name through a tier selection.

    ``resolve_method("pb", "compiled")`` → ``"pb-compiled"``; methods with
    no compiled variant (and every method at tier ``numpy``) pass through
    unchanged.  ``"auto"`` must be resolved to a concrete method first
    (``make_kernel`` does this).
    """
    if tier not in KERNEL_TIERS:
        options = ", ".join(repr(t) for t in KERNEL_TIERS)
        raise ValueError(f"unknown kernel tier {tier!r}; choose one of {options}")
    if tier == "compiled":
        return _COMPILED_METHODS.get(method, method)
    return method


class _CompiledRunMixin:
    """Compiled ``run`` for propagation-blocking kernels (see module doc)."""

    _prepared = None
    _warned_fallback = False

    def _prepare(self):
        """Contiguous int32/int64 views of the layout, computed once.

        ``pos`` is the inverse of ``layout.order``: edge ``e`` of the CSR
        walk lands in bin slot ``pos[e]``.  Scattering through ``pos`` in
        CSR order reads the contributions sequentially and writes each bin
        as its own sequential stream — the access pattern the paper's
        binning phase is designed around.
        """
        if self._prepared is None:
            layout = self.layout
            m = self.graph.num_edges
            pos = np.empty(m, dtype=np.int32)
            pos[layout.order] = np.arange(m, dtype=np.int32)
            self._prepared = (
                np.ascontiguousarray(self.graph.offsets, dtype=np.int64),
                pos,
                np.ascontiguousarray(layout.sorted_dst, dtype=np.int32),
                np.ascontiguousarray(layout.bounds, dtype=np.int64),
                np.empty(m, dtype=np.float32),  # reusable binned buffer
            )
        return self._prepared

    @property
    def backend(self) -> str:
        """Backend ``run`` will use: ``"numba"``, ``"cc"``, or ``"numpy"``."""
        if get_backend() is None or self.graph.num_edges >= 2**31:
            return "numpy"
        return backend_name()

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        backend = get_backend()
        if backend is None or self.graph.num_edges >= 2**31:
            if not type(self)._warned_fallback:
                type(self)._warned_fallback = True
                reason = (
                    "no compiled backend available"
                    if backend is None
                    else "graph exceeds int32 edge indexing"
                )
                log.warning(
                    "%s: %s; falling back to the pure-NumPy oracle "
                    "(identical results, oracle speed)",
                    self.name,
                    reason,
                )
            return super().run(num_iterations, scores=scores, damping=damping)
        offsets, pos, dst_sorted, bounds, binned = self._prepare()
        scores = self._initial_scores(scores)
        n = self.graph.num_vertices
        sums = np.zeros(n, dtype=np.float64)
        for _ in range(num_iterations):
            with span("binning"):
                contributions = compute_contributions(scores, self._out_degrees)
                backend.pb_binning(contributions, offsets, pos, bounds, binned)
            with span("accumulate"):
                sums[:] = 0.0
                backend.pb_accumulate(binned, dst_sorted, bounds, sums)
            with span("apply"):
                scores = apply_damping(sums.astype(np.float32), n, damping)
        return scores


class CompiledPBPageRank(_CompiledRunMixin, PropagationBlockingPageRank):
    """Compiled tier of :class:`PropagationBlockingPageRank` (``"pb"``).

    Accuracy contract: bit-identical scores to the ``pb`` oracle for any
    graph, iteration count, and damping; identical ``trace()``/``measure()``
    by inheritance.  Availability: a compiled backend and int32-indexable
    edges, else transparent oracle fallback (see module docstring).
    """

    name = "pb-compiled"


class CompiledDPBPageRank(_CompiledRunMixin, DeterministicPBPageRank):
    """Compiled tier of :class:`DeterministicPBPageRank` (``"dpb"``).

    Same accuracy contract as :class:`CompiledPBPageRank`; the DPB/PB
    distinction is entirely in the inherited trace and instruction model
    (the executable arithmetic is shared), so one compiled ``run`` serves
    both.
    """

    name = "dpb-compiled"
