"""``@njit`` twins of the C loops in :mod:`repro.compiled.backend`.

Imported only when Numba is installed (the ``fast`` extra); the import is
guarded in :func:`repro.compiled.backend.get_backend`, so this module must
not be imported directly by anything else.

The two propagation-blocking phases use ``parallel=True``: binning
iterations write disjoint bin slots (the slot permutation is a bijection)
and accumulate iterations own disjoint ``sums`` slices (one bin each, in
in-bin order), so the results are bit-identical to the sequential oracle
under any thread interleaving.  The LRU replay is inherently sequential
(each access's outcome depends on the recency state the previous access
left) and is compiled without ``parallel``.

:func:`compile_all` calls every entry point once on tiny inputs with the
production dtypes, forcing JIT compilation inside the caller's
``compiled_warmup[numba]`` span instead of the first measured iteration.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

__all__ = ["pb_binning", "pb_accumulate", "lru_run", "lru_flush", "compile_all"]


@njit(cache=True, parallel=True)
def pb_binning(contrib, offsets, pos, binned):  # pragma: no cover - JIT
    """Binning phase: scatter contributions into the deterministic layout.

    ``pos`` is the inverse of ``BinLayout.order``: slot ``pos[e]`` of the
    bin-major buffer receives edge ``e``'s contribution.  Exact — stores
    the float32 contributions unchanged.
    """
    for u in prange(offsets.shape[0] - 1):
        c = contrib[u]
        for e in range(offsets[u], offsets[u + 1]):
            binned[pos[e]] = c


@njit(cache=True, parallel=True)
def pb_accumulate(binned, dst_sorted, bounds, sums):  # pragma: no cover - JIT
    """Accumulate phase: drain bins into ``sums`` in bin-major slot order.

    Bit-identical to the oracle's per-bin ``np.bincount``: within a bin the
    float64 additions happen in slot order, and bins touch disjoint
    ``sums`` slices, so per-bin parallelism cannot reorder any addition.
    """
    for b in prange(bounds.shape[0] - 1):
        for j in range(bounds[b], bounds[b + 1]):
            sums[dst_sorted[j]] += np.float64(binned[j])


@njit(cache=True, inline="always")
def _hash(key, mask):  # pragma: no cover - JIT
    h = np.uint64(key) * np.uint64(0x9E3779B97F4A7C15)
    h ^= h >> np.uint64(29)
    return np.int64(h & np.uint64(mask))


@njit(cache=True)
def _rebuild(hdr, table, line):  # pragma: no cover - JIT
    mask = np.int64(table.shape[0] - 1)
    table[:] = -1
    for s in range(hdr[0]):
        i = _hash(line[s], mask)
        while table[i] != -1:
            i = (i + 1) & mask
        table[i] = s
    hdr[3] = 0


@njit(cache=True)
def lru_run(
    hdr, table, line, prev, nxt, dirty, capacity, lines, write
):  # pragma: no cover - JIT
    """Replay ``lines`` through the exact LRU state; see the C twin.

    Returns ``(misses, writebacks)``.  Semantics mirror
    ``FullyAssociativeLRU`` exactly: write-back + write-allocate, hits
    refresh recency and merge the dirty bit.
    """
    tsize = np.int64(table.shape[0])
    mask = tsize - 1
    count = hdr[0]
    head = hdr[1]
    tail = hdr[2]
    tombs = hdr[3]
    misses = np.int64(0)
    writebacks = np.int64(0)
    for a in range(lines.shape[0]):
        key = lines[a]
        i = _hash(key, mask)
        free_pos = np.int64(-1)
        node = np.int64(-1)
        while True:
            v = table[i]
            if v == -1:
                break
            if v == -2:
                if free_pos < 0:
                    free_pos = i
            elif line[v] == key:
                node = v
                break
            i = (i + 1) & mask
        if node >= 0:
            if write:
                dirty[node] = np.uint8(1)
            if head != node:
                p = prev[node]
                nx = nxt[node]
                if p >= 0:
                    nxt[p] = nx
                if nx >= 0:
                    prev[nx] = p
                if tail == node:
                    tail = np.int64(p)
                prev[node] = -1
                nxt[node] = np.int32(head)
                if head >= 0:
                    prev[head] = np.int32(node)
                head = node
            continue
        misses += 1
        if count == capacity:
            victim = tail
            vkey = line[victim]
            tail = np.int64(prev[victim])
            if tail >= 0:
                nxt[tail] = -1
            else:
                head = np.int64(-1)
            if dirty[victim]:
                writebacks += 1
            d = _hash(vkey, mask)
            while table[d] < 0 or line[table[d]] != vkey:
                d = (d + 1) & mask
            table[d] = -2
            tombs += 1
            slot = victim
        else:
            slot = count
            count += 1
        line[slot] = key
        dirty[slot] = np.uint8(1) if write else np.uint8(0)
        prev[slot] = -1
        nxt[slot] = np.int32(head)
        if head >= 0:
            prev[head] = np.int32(slot)
        head = np.int64(slot)
        if tail < 0:
            tail = np.int64(slot)
        if free_pos >= 0:
            table[free_pos] = np.int32(slot)
            tombs -= 1
        else:
            while table[i] >= 0:
                i = (i + 1) & mask
            if table[i] == -2:
                tombs -= 1
            table[i] = np.int32(slot)
        if tombs * 4 > tsize:
            hdr[0] = count
            _rebuild(hdr, table, line)
            tombs = np.int64(0)
    hdr[0] = count
    hdr[1] = head
    hdr[2] = tail
    hdr[3] = tombs
    return misses, writebacks


@njit(cache=True)
def lru_flush(hdr, table, dirty):  # pragma: no cover - JIT
    """Count dirty resident lines, then reset the LRU state to empty."""
    dirty_count = np.int64(0)
    for s in range(hdr[0]):
        if dirty[s]:
            dirty_count += 1
    hdr[0] = 0
    hdr[1] = -1
    hdr[2] = -1
    hdr[3] = 0
    table[:] = -1
    return dirty_count


def compile_all() -> None:
    """Force JIT compilation of every entry point on tiny typed inputs."""
    contrib = np.zeros(2, dtype=np.float32)
    offsets = np.array([0, 1, 2], dtype=np.int64)
    pos = np.array([1, 0], dtype=np.int32)
    binned = np.zeros(2, dtype=np.float32)
    pb_binning(contrib, offsets, pos, binned)
    bounds = np.array([0, 2], dtype=np.int64)
    dst = np.array([0, 1], dtype=np.int32)
    sums = np.zeros(2, dtype=np.float64)
    pb_accumulate(binned, dst, bounds, sums)
    hdr = np.array([0, -1, -1, 0], dtype=np.int64)
    table = np.full(16, -1, dtype=np.int32)
    line = np.zeros(4, dtype=np.int64)
    prev = np.full(4, -1, dtype=np.int32)
    nxt = np.full(4, -1, dtype=np.int32)
    dirty = np.zeros(4, dtype=np.uint8)
    lines = np.array([0, 1, 0, 2], dtype=np.int64)
    lru_run(hdr, table, line, prev, nxt, dirty, np.int64(2), lines, 1)
    lru_flush(hdr, table, dirty)
