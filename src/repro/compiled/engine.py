"""Compiled cache engine: the ``"compiled"`` entry in ``ENGINES``.

:class:`CompiledLRU` replays irregular trace chunks through an exact
fully-associative LRU implemented in the compiled backend (open-addressing
hash + intrusive recency list over preallocated NumPy arrays), while
SEQUENTIAL chunks keep the shared analytic handling of
:class:`~repro.memsim.cache._EngineBase`.

Accuracy contract: **bit-identical ``MemCounters``** to the
:class:`~repro.memsim.cache.FullyAssociativeLRU` oracle (and therefore to
``stackdist``) — same write-back + write-allocate semantics, same
consecutive-access collapse credit, same ``flush`` accounting (dirty
write-backs recorded as ``Stream.OTHER`` with phase ``"flush"``).  The
differential suite in ``tests/compiled/test_engine_differential.py``
asserts exact counter equality on randomized and kernel-generated traces.

Availability: requires a compiled backend (Numba or a C compiler).
:func:`make_compiled_engine` — the registry factory — falls back to
:class:`~repro.memsim.stackdist.StackDistanceLRU` with a one-time warning
when none is available: still exact, just the oracle-tier speed.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.backend import get_backend
from repro.memsim.cache import CacheConfig, _EngineBase
from repro.memsim.counters import MemCounters
from repro.memsim.trace import Stream, TraceChunk, collapse_consecutive
from repro.obs.log import get_logger

__all__ = ["CompiledLRU", "make_compiled_engine"]

log = get_logger(__name__)

_warned_fallback = False


class _LRUState:
    """Preallocated LRU state shared with the backend by pointer.

    ``hdr`` = ``[count, head, tail, tombstones]``; node slots ``0..count-1``
    are always live (an eviction's slot is immediately reused), forming a
    doubly-linked recency list via ``prev``/``next``.  ``table`` is an
    open-addressing hash (power-of-two size ≥ 4× capacity, so live load
    stays ≤ 1/4; ``-1`` empty, ``-2`` tombstone).
    """

    __slots__ = ("capacity", "hdr", "table", "line", "prev", "next", "dirty")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        table_size = 16
        while table_size < 4 * self.capacity:
            table_size *= 2
        self.hdr = np.array([0, -1, -1, 0], dtype=np.int64)
        self.table = np.full(table_size, -1, dtype=np.int32)
        self.line = np.zeros(self.capacity, dtype=np.int64)
        self.prev = np.full(self.capacity, -1, dtype=np.int32)
        self.next = np.full(self.capacity, -1, dtype=np.int32)
        self.dirty = np.zeros(self.capacity, dtype=np.uint8)


class CompiledLRU(_EngineBase):
    """Exact fully-associative LRU with a compiled per-access loop.

    Bit-identical counters to :class:`FullyAssociativeLRU`; construction
    raises ``RuntimeError`` when no compiled backend exists — use
    :func:`make_compiled_engine` (what ``ENGINES["compiled"]`` calls) for
    the graceful-fallback behaviour.
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.ways is not None and config.ways != config.num_lines:
            raise ValueError(
                "CompiledLRU requires ways=None (or ways == num_lines); "
                "use SetAssociativeLRU for set-associative configs"
            )
        backend = get_backend()
        if backend is None:
            raise RuntimeError(
                "no compiled backend available; use make_compiled_engine() "
                "for graceful fallback"
            )
        self.config = config
        self._backend = backend
        self._state = _LRUState(config.num_lines)

    def _process_irregular(self, chunk: TraceChunk, counters: MemCounters) -> None:
        lines, collapsed = collapse_consecutive(chunk.lines)
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        misses, writebacks = self._backend.lru_run(
            self._state, lines, bool(chunk.write)
        )
        counters.record(
            chunk.stream,
            reads=misses,  # read misses + write-allocate fills
            writes=writebacks,  # dirty evictions
            hits=collapsed + (lines.size - misses),
            accesses=chunk.num_accesses,
            phase=chunk.phase,
            irregular=True,
        )

    def flush(self, counters: MemCounters) -> None:
        """Write back all remaining dirty lines and empty the cache."""
        dirty_count = self._backend.lru_flush(self._state)
        if dirty_count:
            counters.record(Stream.OTHER, writes=dirty_count, phase="flush")

    @property
    def occupancy(self) -> int:
        """Number of resident lines (test hook)."""
        return int(self._state.hdr[0])


def make_compiled_engine(config: CacheConfig) -> _EngineBase:
    """Factory behind ``ENGINES["compiled"]``.

    Returns :class:`CompiledLRU` when a backend is available, else falls
    back to :class:`~repro.memsim.stackdist.StackDistanceLRU` (exact, so
    results are unchanged — only speed) with a one-time warning.
    """
    global _warned_fallback
    if get_backend() is None:
        if not _warned_fallback:
            _warned_fallback = True
            log.warning(
                "engine 'compiled': no compiled backend available; "
                "falling back to the exact stackdist engine "
                "(identical counters, oracle speed)"
            )
        from repro.memsim.stackdist import StackDistanceLRU

        return StackDistanceLRU(config)
    return CompiledLRU(config)
