"""Compiled execution tier: the same kernels, compiled inner loops.

The pure-NumPy kernels in :mod:`repro.kernels` and the vectorized exact
engines in :mod:`repro.memsim` are the *oracles* — readable, portable, and
the source of truth for every paper claim.  This subpackage provides a
faster executable tier behind the same registries, selected per
availability at import:

* **numba** — ``@njit`` (``parallel=True`` where iterations are provably
  independent) when Numba is importable (``pip install .[fast]``);
* **cc** — a small C library compiled on first use with the system C
  compiler and bound through :mod:`ctypes` when Numba is absent but a
  compiler exists;
* **numpy** — graceful fallback to the existing pure-NumPy paths when
  neither is available.  Selecting the compiled tier then logs a warning
  and runs the oracle code; results are identical, only slower.

Every compiled variant carries the same accuracy contract: **bit-identical
results to its pure-NumPy oracle** — PageRank scores for the kernels
(:mod:`repro.compiled.kernels`), per-stream/per-phase ``MemCounters`` for
the cache engine (:mod:`repro.compiled.engine`).  The differential suite
under ``tests/compiled/`` asserts exactly that, extending the
``tests/memsim/test_stackdist.py`` pattern to the kernel tier.

Compilation cost is never hidden: the first build/JIT of the backend is
recorded as the span ``compiled_warmup[<backend>]`` (see
``docs/metrics_schema.md``), so reports show time-to-solution *including*
warm-up — the accounting "Hardware Assisted Propagation Blocking"
(Balaji & Lucia) insists on.  Call :func:`warmup` eagerly to front-load
it, or let the first kernel call trigger it lazily.

Registry names (see ``docs/performance.md`` for the tier matrix):

* kernels — ``pb-compiled`` / ``dpb-compiled`` in
  :data:`repro.kernels.pagerank.KERNELS`, or ``--kernel-tier compiled``
  on the CLI to map ``pb``/``dpb`` automatically;
* engine — ``compiled`` in :data:`repro.memsim.ENGINES`
  (``--engine compiled``).
"""

from repro.compiled.backend import (
    BACKEND_ENV,
    WARMUP_SPAN_PREFIX,
    available,
    backend_name,
    warmup,
    warmup_seconds,
)
from repro.compiled.kernels import (
    CompiledDPBPageRank,
    CompiledPBPageRank,
    KERNEL_TIERS,
    resolve_method,
)
from repro.compiled.engine import CompiledLRU, make_compiled_engine

__all__ = [
    "BACKEND_ENV",
    "WARMUP_SPAN_PREFIX",
    "available",
    "backend_name",
    "warmup",
    "warmup_seconds",
    "CompiledPBPageRank",
    "CompiledDPBPageRank",
    "KERNEL_TIERS",
    "resolve_method",
    "CompiledLRU",
    "make_compiled_engine",
]
