"""Additional blocking strategies: 2-D cache blocking and CSR segmenting.

Two techniques the paper discusses but does not measure:

* **2-D cache blocking** (Section V): "We do not model 2D cache blocking
  since in our context, 2D cache blocking will not communicate
  significantly less than 1D cache blocking.  As 2D cache blocks are
  processed temporally, they will effectively merge into a 1D cache block
  along the dimension they are being processed along."
  :class:`CacheBlocked2DPageRank` implements real 2-D (source x
  destination) blocking so that claim can be *measured* instead of
  assumed — see ``tests/kernels/test_blocking_variants.py`` and
  ``benchmarks/bench_ablation_blocking_variants.py``.

* **CSR segmenting** (Zhang et al. [36], Section VIII related work):
  "a more efficient means of 1D cache blocking".  The graph's in-edges
  are split into segments by *source* range so each segment's
  contributions slice is cache-resident; every segment produces a dense
  partial-sums vector sequentially, and a final merge pass sums the
  per-segment vectors.  All irregular accesses become cache hits at the
  price of ``2 r n / b`` partial-vector traffic — communication again
  proportional to the number of segments, i.e. to ``n/c``, which is why
  it loses to propagation blocking on large graphs just like CB does.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.partition import choose_block_width, num_blocks_for_width
from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    apply_damping,
    compute_contributions,
)
from repro.kernels.layout import (
    build_regions,
    gather,
    monotone_scan,
    scatter,
    seq_read,
    seq_write,
    streaming_write,
)
from repro.memsim.trace import Stream, TraceChunk, sequential_chunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec

__all__ = ["CacheBlocked2DPageRank", "CSRSegmentingPageRank"]


class CacheBlocked2DPageRank(PageRankKernel):
    """Push-direction PageRank over a 2-D (source x destination) grid.

    Edges are bucketed by ``(src_block, dst_block)`` and the grid is
    processed destination-major: for a fixed destination block, the inner
    loop walks the source blocks in order.  Because the sums slice stays
    resident across the whole inner loop, the processing "effectively
    merges into a 1D cache block along the dimension being processed
    along" — the paper's argument, which the measured traffic confirms.
    """

    name = "cb2d"
    instruction_model = InstructionModel(per_edge=9.0, per_vertex=22.0)

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec = SIMULATED_MACHINE,
        *,
        block_width: int | None = None,
    ) -> None:
        super().__init__(graph, machine)
        if block_width is None:
            block_width = choose_block_width(graph.num_vertices, machine.cache_words)
        self.block_width = block_width
        n = graph.num_vertices
        self.num_blocks = num_blocks_for_width(n, block_width)
        shift = int(block_width).bit_length() - 1
        src = graph.edge_sources()
        dst = graph.targets
        # Grid cell id, destination-major: (dst_block, src_block).
        cell = (dst.astype(np.int64) >> shift) * self.num_blocks + (
            src.astype(np.int64) >> shift
        )
        order = np.argsort(cell, kind="stable")
        self._src = src[order]
        self._dst = dst[order]
        counts = np.bincount(cell, minlength=self.num_blocks * self.num_blocks)
        self._cell_bounds = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_bounds[1:])
        self._out_degrees = graph.out_degrees()

    def _cells(self):
        for j in range(self.num_blocks):  # destination blocks, outer
            for i in range(self.num_blocks):  # source blocks, inner
                cell = j * self.num_blocks + i
                lo = int(self._cell_bounds[cell])
                hi = int(self._cell_bounds[cell + 1])
                if lo != hi:
                    yield j, i, lo, hi

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        n = self.graph.num_vertices
        width = self.block_width
        sums = np.zeros(n, dtype=np.float64)
        for _ in range(num_iterations):
            contributions = compute_contributions(scores, self._out_degrees)
            sums[:] = 0.0
            for j, _i, lo, hi in self._cells():
                start = j * width
                stop = min(start + width, n)
                sums[start:stop] += np.bincount(
                    self._dst[lo:hi] - start,
                    weights=contributions[self._src[lo:hi]].astype(np.float64),
                    minlength=stop - start,
                )
            scores = apply_damping(sums.astype(np.float32), n, damping)
        return scores

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        regions = build_regions(
            self.machine,
            {
                "scores": n,
                "degrees": n,
                "contributions": n,
                "sums": n,
                "cells": max(2 * graph.num_edges, 1),
            },
        )
        for _ in range(num_iterations):
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="contrib")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="contrib")
            yield seq_write(
                regions["contributions"], Stream.VERTEX_CONTRIB, phase="contrib"
            )
            yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="blocks")
            word = 0
            for _j, _i, lo, hi in self._cells():
                count = hi - lo
                yield sequential_chunk(
                    regions["cells"].sequential_lines(word, 2 * count),
                    stream=Stream.EDGE_ADJ,
                    phase="blocks",
                )
                word += 2 * count
                yield monotone_scan(
                    regions["contributions"],
                    self._src[lo:hi],
                    Stream.VERTEX_CONTRIB,
                    phase="blocks",
                )
                yield scatter(
                    regions["sums"], self._dst[lo:hi], Stream.VERTEX_SUMS, phase="blocks"
                )
            yield seq_read(regions["sums"], Stream.VERTEX_SUMS, phase="apply")
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="apply")


class CSRSegmentingPageRank(PageRankKernel):
    """Pull-direction CSR segmenting (Zhang et al. [36]).

    The in-edges are split into ``r`` segments by source range; segment
    ``s`` holds, for every destination vertex, its in-neighbors whose ids
    fall in ``[s*width, (s+1)*width)``.  Processing a segment gathers only
    from its cache-resident contributions slice and writes a dense partial
    sums vector *sequentially*; a final merge pass adds the ``r`` partial
    vectors.  No atomics, no low-locality access at all — but ``2 r n/b``
    lines of partial-vector traffic, so communication grows with ``n/c``
    exactly like 1-D cache blocking.
    """

    name = "csrseg"
    instruction_model = InstructionModel(per_edge=9.0, per_vertex=24.0)

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec = SIMULATED_MACHINE,
        *,
        segment_width: int | None = None,
    ) -> None:
        super().__init__(graph, machine)
        if segment_width is None:
            segment_width = choose_block_width(graph.num_vertices, machine.cache_words)
        self.segment_width = segment_width
        n = graph.num_vertices
        self.num_segments = num_blocks_for_width(n, segment_width)
        shift = int(segment_width).bit_length() - 1
        transpose = graph.transposed()
        in_src = transpose.targets  # the contributing neighbor ids
        in_dst = np.repeat(
            np.arange(n, dtype=np.int32), np.diff(transpose.offsets)
        )
        segment_ids = in_src.astype(np.int64) >> shift
        # Segment-major, destination-minor: within a segment, edges sorted
        # by destination so the partial-vector writes are sequential.
        order = np.argsort(segment_ids * n + in_dst.astype(np.int64), kind="stable")
        self._seg_src = in_src[order]
        self._seg_dst = in_dst[order]
        counts = np.bincount(segment_ids, minlength=self.num_segments)
        self._seg_bounds = np.zeros(self.num_segments + 1, dtype=np.int64)
        np.cumsum(counts, out=self._seg_bounds[1:])
        # Compact per-segment index (Cagra stores only vertices with
        # in-segment neighbors): 2 words per distinct destination.
        self._seg_distinct_dst = np.zeros(self.num_segments, dtype=np.int64)
        for s in range(self.num_segments):
            lo, hi = int(self._seg_bounds[s]), int(self._seg_bounds[s + 1])
            if hi > lo:
                dst = self._seg_dst[lo:hi]
                self._seg_distinct_dst[s] = 1 + int(
                    np.count_nonzero(dst[1:] != dst[:-1])
                )
        self._out_degrees = graph.out_degrees()

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        n = self.graph.num_vertices
        for _ in range(num_iterations):
            contributions = compute_contributions(scores, self._out_degrees)
            totals = np.zeros(n, dtype=np.float64)
            for s in range(self.num_segments):
                lo, hi = int(self._seg_bounds[s]), int(self._seg_bounds[s + 1])
                if lo == hi:
                    continue
                partial = np.bincount(
                    self._seg_dst[lo:hi],
                    weights=contributions[self._seg_src[lo:hi]].astype(np.float64),
                    minlength=n,
                )
                totals += partial  # the merge pass
            scores = apply_damping(totals.astype(np.float32), n, damping)
        return scores

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        index_words = int(2 * self._seg_distinct_dst.sum())
        sizes = {
            "scores": n,
            "degrees": n,
            "contributions": n,
            "totals": n,
            # Compact per-segment CSR indices (2 words per destination
            # with in-segment neighbors) plus the segmented adjacency.
            "seg_index": max(index_words, 1),
            "seg_adjacency": max(graph.num_edges, 1),
        }
        for s in range(self.num_segments):
            sizes[f"partial_{s}"] = n
        regions = build_regions(self.machine, sizes)
        for _ in range(num_iterations):
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="contrib")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="contrib")
            yield seq_write(
                regions["contributions"], Stream.VERTEX_CONTRIB, phase="contrib"
            )
            adj_word = 0
            index_word = 0
            for s in range(self.num_segments):
                lo, hi = int(self._seg_bounds[s]), int(self._seg_bounds[s + 1])
                if lo == hi:
                    continue
                seg_index_words = int(2 * self._seg_distinct_dst[s])
                yield sequential_chunk(
                    regions["seg_index"].sequential_lines(index_word, seg_index_words),
                    stream=Stream.EDGE_INDEX,
                    phase="segments",
                )
                index_word += seg_index_words
                yield sequential_chunk(
                    regions["seg_adjacency"].sequential_lines(adj_word, hi - lo),
                    stream=Stream.EDGE_ADJ,
                    phase="segments",
                )
                adj_word += hi - lo
                # Gathers stay inside the segment's cached slice.
                yield gather(
                    regions["contributions"],
                    self._seg_src[lo:hi],
                    Stream.VERTEX_CONTRIB,
                    phase="segments",
                )
                # Dense partial vector, written sequentially (NT stores).
                yield streaming_write(
                    regions[f"partial_{s}"], Stream.VERTEX_SUMS, phase="segments"
                )
            # Merge pass: read every partial vector + write totals.
            for s in range(self.num_segments):
                if self._seg_bounds[s + 1] > self._seg_bounds[s]:
                    yield seq_read(
                        regions[f"partial_{s}"], Stream.VERTEX_SUMS, phase="merge"
                    )
            yield seq_write(regions["totals"], Stream.VERTEX_SUMS, phase="merge")
            yield seq_read(regions["totals"], Stream.VERTEX_SUMS, phase="apply")
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="apply")
