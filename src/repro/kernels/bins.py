"""Bin layout for propagation blocking (paper Section IV).

A :class:`BinLayout` partitions the *propagations* (edges) of a graph by
destination range: bin ``i`` receives every ``(contribution, destination)``
pair whose destination lies in ``[i * width, (i+1) * width)``.  The width is
a power of two so the bin index is a shift, not a divide (Section VII), and
is chosen so each bin's slice of the ``sums`` array fits comfortably in
cache (the paper lands on 512 KB slices for its 25 MB LLC; the scaled
default follows the same ~1/2-of-LLC rule).

The layout also captures the paper's **deterministic layout** insight: the
position every propagation lands at within its bin is a pure function of
the graph, so the destination indices can be stored once in separate arrays
and reused every iteration (the DPB optimization that halves binning-phase
writes).  Here that fixed layout *is* the stable sort permutation
:attr:`BinLayout.order`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.partition import choose_block_width
from repro.memsim.cache import WORD_BYTES
from repro.models.machine import MachineSpec
from repro.utils.validation import check_power_of_two

__all__ = ["BinLayout", "default_bin_width"]


def default_bin_width(machine: MachineSpec, *, target_fraction: float = 0.5) -> int:
    """The paper's bin-width rule: sums slice ~= ``target_fraction`` of LLC.

    Returns the width in *vertices* (slice bytes = width * 4).
    """
    return choose_block_width(
        num_vertices=1 << 62,  # no graph-size cap; caller may clamp
        cache_words=machine.cache_words,
        target_fraction=target_fraction,
    )


class BinLayout:
    """Destination-range binning of a graph's propagations.

    Parameters
    ----------
    graph:
        The input graph (push direction: propagations follow out-edges).
    bin_width:
        Vertices per bin; power of two.

    Attributes
    ----------
    order:
        Permutation of edge slots: ``order[j]`` is the CSR edge position of
        the j-th propagation in bin-major order.  Stable within a bin, so
        propagations keep source order — this is the deterministic layout.
    sorted_dst:
        Destinations in bin-major order (``dst[order]``).
    bounds:
        ``num_bins + 1`` offsets delimiting each bin's slots.
    """

    def __init__(self, graph: CSRGraph, bin_width: int) -> None:
        check_power_of_two("bin_width", bin_width)
        self.graph = graph
        self.bin_width = int(bin_width)
        self.shift = int(bin_width).bit_length() - 1
        n = graph.num_vertices
        self.num_bins = max(1, -(-n // self.bin_width))
        dst = graph.targets
        bin_ids = dst.astype(np.int64) >> self.shift
        self.order = np.argsort(bin_ids, kind="stable")
        self.sorted_dst = dst[self.order]
        counts = np.bincount(bin_ids, minlength=self.num_bins)
        self.bounds = np.zeros(self.num_bins + 1, dtype=np.int64)
        np.cumsum(counts, out=self.bounds[1:])

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def bin_width_bytes(self) -> int:
        """Slice size in bytes (the x axis of Figures 9-11)."""
        return self.bin_width * WORD_BYTES

    def bin_slice(self, index: int) -> tuple[int, int]:
        """Vertex range ``[start, stop)`` covered by bin ``index``."""
        if not 0 <= index < self.num_bins:
            raise IndexError(f"bin index {index} out of range [0, {self.num_bins})")
        start = index * self.bin_width
        return start, min(start + self.bin_width, self.graph.num_vertices)

    def bin_count(self, index: int) -> int:
        """Number of propagations in bin ``index``."""
        return int(self.bounds[index + 1] - self.bounds[index])

    def bin_destinations(self, index: int) -> np.ndarray:
        """Destination ids stored in bin ``index`` (insertion order)."""
        return self.sorted_dst[self.bounds[index] : self.bounds[index + 1]]

    def edge_bin_ids(self) -> np.ndarray:
        """Bin id of each edge in CSR traversal order.

        This is the sequence of bin-insertion-point touches during the
        binning phase — the stream whose L1 behaviour drives the too-many-
        bins slowdown of Figures 10-11.
        """
        return self.graph.targets.astype(np.int64) >> self.shift

    # ------------------------------------------------------------------
    # invariant checking (used by tests and assertions)
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise ``AssertionError`` if the layout violates its invariants."""
        assert self.bounds[0] == 0
        assert self.bounds[-1] == self.graph.num_edges
        for i in range(self.num_bins):
            dsts = self.bin_destinations(i)
            if dsts.size:
                start, stop = self.bin_slice(i)
                assert dsts.min() >= start and dsts.max() < stop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BinLayout(width={self.bin_width} vertices / "
            f"{self.bin_width_bytes} B, bins={self.num_bins})"
        )
