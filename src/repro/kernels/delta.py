"""PageRank-Delta: frontier-based PageRank on the partial-propagation path.

The classic optimization (Ligra's PageRankDelta, GraphLab's delta caching)
for the late iterations of PageRank: once most vertices have converged,
propagate only the *changes*.  Each round:

1. the frontier is the set of vertices whose score changed by more than
   ``frontier_tolerance`` last round;
2. only frontier vertices propagate ``delta(u)/outdeg(u)`` to neighbors;
3. scores accumulate the damped incoming deltas.

This is exactly the workload Section IX's partial-activity claim is
about: frontiers shrink round over round, and propagation blocking's
communication shrinks with them (measured via
:func:`repro.kernels.partial.partial_trace` — a delta round *is* a partial
propagation), while pull-style delivery keeps paying for the whole graph.

The implementation is exact (no dropped mass): deltas below the frontier
threshold are *retained* in a residual and added to the vertex's next
propagation, so the final scores equal standard PageRank's fixed point to
within the convergence tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, init_scores
from repro.kernels.partial import active_edge_count

__all__ = [
    "DeltaRound",
    "DeltaPageRankResult",
    "pagerank_delta",
    "delta_repropagate",
]


@dataclass(frozen=True)
class DeltaRound:
    """Telemetry for one delta round (the shrinking-frontier series)."""

    round_index: int
    frontier_size: int
    active_edges: int
    max_delta: float


@dataclass(frozen=True)
class DeltaPageRankResult:
    """Outcome of :func:`pagerank_delta`."""

    scores: np.ndarray
    rounds: list[DeltaRound]
    converged: bool

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_active_edges(self) -> int:
        """Propagations performed across all rounds — the work PB's
        communication is proportional to."""
        return sum(r.active_edges for r in self.rounds)


def pagerank_delta(
    graph: CSRGraph,
    *,
    damping: float = DAMPING,
    tolerance: float = 1e-7,
    frontier_tolerance: float | None = None,
    max_rounds: int = 200,
) -> DeltaPageRankResult:
    """Compute PageRank by propagating score deltas from a shrinking frontier.

    Parameters
    ----------
    graph:
        Input graph (out-edges propagate).
    damping:
        PageRank damping factor.
    tolerance:
        Convergence: stop when the largest pending |delta| falls below it.
    frontier_tolerance:
        Vertices with pending |delta| above this propagate each round;
        smaller deltas are retained (not dropped) until they accumulate
        past it.  Defaults to ``tolerance`` (exact) — raising it trades
        rounds for smaller frontiers.
    max_rounds:
        Safety cap.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if frontier_tolerance is None:
        frontier_tolerance = tolerance
    if frontier_tolerance < tolerance:
        raise ValueError("frontier_tolerance must be >= tolerance")
    n = graph.num_vertices
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    sources = graph.edge_sources()
    targets = graph.targets

    scores = init_scores(n).astype(np.float64)
    # Standard power iteration maps s -> base + d*A^T (s/deg).  Seed the
    # delta process with the first full iteration's change.
    base = (1.0 - damping) / n
    contributions = np.divide(
        scores, degrees, out=np.zeros_like(scores), where=degrees > 0
    )
    sums = np.bincount(targets, weights=contributions[sources], minlength=n)
    new_scores = base + damping * sums
    pending = new_scores - scores  # residual delta not yet propagated
    scores = new_scores

    return delta_repropagate(
        graph,
        scores,
        pending,
        damping=damping,
        tolerance=tolerance,
        frontier_tolerance=frontier_tolerance,
        max_rounds=max_rounds,
    )


def delta_repropagate(
    graph: CSRGraph,
    scores: np.ndarray,
    pending: np.ndarray,
    *,
    damping: float = DAMPING,
    tolerance: float = 1e-7,
    frontier_tolerance: float | None = None,
    max_rounds: int = 200,
) -> DeltaPageRankResult:
    """Run the delta rounds from a warm ``(scores, pending)`` state.

    This is the incremental-maintenance entry point (the non-blocking
    dynamic-PageRank pattern): a caller that already holds converged
    scores and knows the *residual* introduced by a change — an
    edge-update batch (:func:`repro.serve.updates.update_residual`), a
    teleport tweak — re-propagates only that residual from its dirty
    frontier instead of recomputing from scratch.  ``pending[v]`` is the
    score change at ``v`` that has been *applied to* ``scores`` but not
    yet propagated to ``v``'s out-neighbors; callers seeding from an
    un-applied residual must add it into ``scores`` first.

    The returned rounds are the shrinking dirty-frontier series; the
    union of their frontiers is exactly the set of vertices whose scores
    moved by at least ``frontier_tolerance`` during re-propagation.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if frontier_tolerance is None:
        frontier_tolerance = tolerance
    if frontier_tolerance < tolerance:
        raise ValueError("frontier_tolerance must be >= tolerance")
    n = graph.num_vertices
    scores = np.asarray(scores, dtype=np.float64).copy()
    pending = np.asarray(pending, dtype=np.float64).copy()
    if scores.shape != (n,) or pending.shape != (n,):
        raise ValueError(
            f"scores and pending must have shape ({n},), got "
            f"{scores.shape} and {pending.shape}"
        )
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    sources = graph.edge_sources()
    targets = graph.targets

    rounds: list[DeltaRound] = []
    converged = False
    for round_index in range(1, max_rounds + 1):
        max_delta = float(np.abs(pending).max()) if n else 0.0
        if max_delta < tolerance:
            converged = True
            break
        frontier = np.abs(pending) >= frontier_tolerance
        if not frontier.any():
            # Everything pending is sub-threshold but above tolerance:
            # flush it all (rare; keeps the algorithm exact).
            frontier = np.abs(pending) > 0
        send = np.where(frontier, pending, 0.0)
        pending = np.where(frontier, 0.0, pending)

        delta_contrib = np.divide(
            send, degrees, out=np.zeros_like(send), where=degrees > 0
        )
        incoming = np.bincount(
            targets, weights=delta_contrib[sources], minlength=n
        )
        change = damping * incoming
        scores = scores + change
        pending = pending + change
        rounds.append(
            DeltaRound(
                round_index=round_index,
                frontier_size=int(frontier.sum()),
                active_edges=active_edge_count(graph, frontier),
                max_delta=max_delta,
            )
        )
    return DeltaPageRankResult(
        scores=scores.astype(np.float32), rounds=rounds, converged=converged
    )
