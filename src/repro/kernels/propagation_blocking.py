"""Propagation blocking — the paper's contribution (Section IV, Algorithm 3).

Instead of blocking the *graph* (cache blocking), block the *propagations*:

**Binning phase** — walk the graph in push order; for each edge ``u -> v``
append the pair ``(contribution(u), v)`` to bin ``v / width``.  Every write
is an append to one of a small number of insertion points, so stores are
sequential full-line writes — issued with non-temporal (streaming) stores
through write-combining buffers, which eliminates even the write-allocate
read (Section VII).

**Accumulate phase** — drain one bin at a time: read its pairs (a
sequential stream) and add each contribution into ``sums[v]``.  A bin's
destination range is narrow enough that its slice of ``sums`` stays in
cache, so these scatters hit.

Communication is therefore proportional to the number of *edges* — unlike
cache blocking, whose traffic grows with the number of blocks ``r ~ n/c``.
That is the whole story of Figures 7 and 8.

**Deterministic propagation blocking (DPB)** exploits the fixed bin layout:
since the slot each propagation lands in never changes across iterations,
the destination ids can be written once into separate arrays and only the
contributions re-binned each iteration — halving binning-phase writes
(Table III's write columns).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    apply_damping,
    compute_contributions,
)
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.layout import (
    scatter,
    seq_read,
    seq_write,
    streaming_write,
)
from repro.memsim.trace import Region, Stream, TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span
from repro.utils.validation import pow2_at_least

__all__ = ["PropagationBlockingPageRank", "DeterministicPBPageRank"]

#: Words per binned propagation: PB stores (contribution, destination).
PB_WORDS_PER_PAIR = 2
#: DPB re-writes only the contribution; destinations are reused.
DPB_WORDS_PER_PAIR = 1


class PropagationBlockingPageRank(PageRankKernel):
    """PageRank via propagation blocking (the paper's "PB").

    Instruction model: binning costs ~2 extra stores plus index arithmetic
    per edge and accumulate re-loads each pair, giving the paper's measured
    ~4x instruction blow-up over the baseline (76.8 G on urand, Table III):
    ``34 m + 25 n``.
    """

    name = "pb"
    phases = ("binning", "accumulate", "apply")
    instruction_model = InstructionModel(per_edge=34.0, per_vertex=25.0)
    #: Split of the per-edge instruction cost between the two phases; the
    #: per-vertex work (contribution compute, apply pass) is charged to
    #: binning/apply respectively.  Used by the Figure 11 breakdown.
    binning_edge_instr = 18.0
    accumulate_edge_instr = 16.0

    #: Words written into a bin per propagation during the binning phase.
    words_per_pair = PB_WORDS_PER_PAIR
    #: Whether separate destination-index arrays are streamed at accumulate.
    reuses_destinations = False

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec = SIMULATED_MACHINE,
        *,
        bin_width: int | None = None,
    ) -> None:
        super().__init__(graph, machine)
        if bin_width is None:
            bin_width = min(
                default_bin_width(machine),
                pow2_at_least(graph.num_vertices),
            )
        # Preprocessing, excluded from measurement like the paper's bin
        # allocation: the stable bin permutation *is* the deterministic
        # layout DPB reuses.
        self.layout = BinLayout(graph, bin_width)
        self._out_degrees = graph.out_degrees()

    # ------------------------------------------------------------------
    # executable
    # ------------------------------------------------------------------
    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        graph = self.graph
        n = graph.num_vertices
        layout = self.layout
        sums = np.zeros(n, dtype=np.float64)
        for _ in range(num_iterations):
            with span("binning"):
                contributions = compute_contributions(scores, self._out_degrees)
                # Binning phase: propagations in bin-major order.  The stable
                # permutation plays the role of the bins' insertion points.
                binned_contribs = np.repeat(contributions, self._out_degrees)[
                    layout.order
                ].astype(np.float64)
            # Accumulate phase: drain one bin (one sums slice) at a time.
            with span("accumulate"):
                sums[:] = 0.0
                for b in range(layout.num_bins):
                    lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
                    if lo == hi:
                        continue
                    start, stop = layout.bin_slice(b)
                    sums[start:stop] += np.bincount(
                        layout.sorted_dst[lo:hi] - start,
                        weights=binned_contribs[lo:hi],
                        minlength=stop - start,
                    )
            with span("apply"):
                scores = apply_damping(sums.astype(np.float32), n, damping)
        return scores

    # ------------------------------------------------------------------
    # trace
    # ------------------------------------------------------------------
    def _bin_regions(self, regions_builder) -> list[Region]:
        """One region per bin, sized for this variant's words per pair."""
        layout = self.layout
        regions = []
        for b in range(layout.num_bins):
            count = layout.bin_count(b)
            words = max(self.words_per_pair * count, 1)
            regions.append(regions_builder(f"bin_{b}", words))
        return regions

    def publish_metrics(self, registry) -> None:
        """Propagations per bin — the balance the bin-width sweep trades on."""
        layout = self.layout
        histogram = registry.histogram(f"bin_occupancy/{self.name}")
        for b in range(layout.num_bins):
            histogram.observe(layout.bin_count(b))

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        layout = self.layout
        from repro.memsim.trace import AddressSpace

        space = AddressSpace(words_per_line=self.machine.words_per_line)
        regions = {
            name: space.allocate(name, words)
            for name, words in {
                "scores": n,
                "degrees": n,
                "sums": n,
                "index": 2 * n,
                "adjacency": max(graph.num_edges, 1),
            }.items()
        }
        bin_regions = self._bin_regions(space.allocate)
        dest_regions = None
        if self.reuses_destinations:
            # DPB's separate destination-index arrays: written once during
            # preprocessing ("computed in advance", Section IV), read every
            # iteration in lockstep with the contributions.
            dest_regions = [
                space.allocate(f"dest_{b}", max(layout.bin_count(b), 1))
                for b in range(layout.num_bins)
            ]

        for _ in range(num_iterations):
            # ---------------- binning phase ----------------
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="binning")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="binning")
            yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="binning")
            if graph.num_edges:
                yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="binning")
            for b in range(layout.num_bins):
                if layout.bin_count(b) == 0:
                    continue
                yield streaming_write(bin_regions[b], Stream.BIN_DATA, phase="binning")

            # ---------------- accumulate phase ----------------
            yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="accumulate")
            for b in range(layout.num_bins):
                lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
                if lo == hi:
                    continue
                yield seq_read(bin_regions[b], Stream.BIN_DATA, phase="accumulate")
                if dest_regions is not None:
                    yield seq_read(dest_regions[b], Stream.BIN_DEST, phase="accumulate")
                yield scatter(
                    regions["sums"],
                    layout.sorted_dst[lo:hi],
                    Stream.VERTEX_SUMS,
                    phase="accumulate",
                )

            # ---------------- apply phase ----------------
            yield seq_read(regions["sums"], Stream.VERTEX_SUMS, phase="apply")
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="apply")

    # ------------------------------------------------------------------
    # phase-level instruction model (Figure 11)
    # ------------------------------------------------------------------
    def phase_instruction_counts(self, num_iterations: int = 1) -> dict[str, float]:
        """Instruction count per phase, summing to :meth:`instruction_count`."""
        n, m = self.graph.num_vertices, self.graph.num_edges
        per_vertex = self.instruction_model.per_vertex
        binning = self.binning_edge_instr * m + (per_vertex - 10.0) * n
        accumulate = self.accumulate_edge_instr * m
        apply_pass = 10.0 * n
        return {
            "binning": num_iterations * binning,
            "accumulate": num_iterations * accumulate,
            "apply": num_iterations * apply_pass,
        }


class DeterministicPBPageRank(PropagationBlockingPageRank):
    """Deterministic propagation blocking (the paper's "DPB").

    Identical propagation order to PB; the binning phase writes only the
    contributions (destinations are pre-stored), halving bin write traffic.
    Instruction model: one fewer store per edge than PB — ``33 m + 25 n``
    (paper: 74.1 G vs PB's 76.8 G on urand).
    """

    name = "dpb"
    instruction_model = InstructionModel(per_edge=33.0, per_vertex=25.0)
    binning_edge_instr = 17.0
    words_per_pair = DPB_WORDS_PER_PAIR
    reuses_destinations = True

