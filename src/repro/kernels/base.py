"""Common infrastructure for PageRank kernels.

Every implementation strategy in the paper (pull baseline, push, cache
blocking, propagation blocking, deterministic propagation blocking, and the
prior-work strategy models) is a :class:`PageRankKernel`.  A kernel is
bound to one graph at construction — preprocessing such as transposing,
partitioning into blocks, or computing the bin layout happens once there,
matching the paper's methodology: "We do not include the time to block the
graph for CB or to allocate the bins for PB, as these can be done in
advance" (Section VI).

A kernel exposes three views of the same algorithm:

* :meth:`PageRankKernel.run` — an executable, vectorized NumPy
  implementation producing actual PageRank scores (all kernels produce
  identical scores; the strategies differ only in memory behaviour);
* :meth:`PageRankKernel.trace` — the cache-line access trace of one or more
  iterations, consumed by :mod:`repro.memsim` to measure communication;
* :meth:`PageRankKernel.instruction_count` — the analytic instruction-count
  model used by the bottleneck time model.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.memsim import DEFAULT_ENGINE
from repro.memsim.cache import simulate
from repro.memsim.counters import MemCounters
from repro.memsim.trace import TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span

__all__ = [
    "DAMPING",
    "InstructionModel",
    "PageRankKernel",
    "init_scores",
    "compute_contributions",
    "apply_damping",
    "reference_pagerank",
    "score_delta",
]

#: The paper's damping factor d = 0.85 (Section II).
DAMPING = 0.85


def init_scores(num_vertices: int) -> np.ndarray:
    """Initial uniform scores ``PR[:] = 1/|V|`` (float32, one 32-bit word each)."""
    return np.full(num_vertices, 1.0 / num_vertices, dtype=np.float32)


def compute_contributions(scores: np.ndarray, out_degrees: np.ndarray) -> np.ndarray:
    """Per-vertex contribution ``PR[u] / outdegree(u)``.

    Vertices with no out-edges contribute nothing (their contribution is
    never propagated), so their entry is set to zero rather than dividing
    by zero.  Like the GAP reference implementation, dangling mass is
    dropped rather than redistributed.
    """
    degrees = np.asarray(out_degrees)
    contributions = np.zeros_like(scores, dtype=np.float32)
    nonzero = degrees > 0
    np.divide(
        scores, degrees.astype(np.float32), out=contributions, where=nonzero
    )
    return contributions


def apply_damping(sums: np.ndarray, num_vertices: int, damping: float = DAMPING) -> np.ndarray:
    """Final per-iteration update ``PR[u] = (1-d)/|V| + d * sums[u]``."""
    base = np.float32((1.0 - damping) / num_vertices)
    return (base + np.float32(damping) * sums).astype(np.float32)


def score_delta(a: np.ndarray, b: np.ndarray) -> float:
    """L1 distance between two score vectors — the convergence criterion."""
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).sum())


def reference_pagerank(
    graph: CSRGraph, num_iterations: int, damping: float = DAMPING
) -> np.ndarray:
    """Slow, obviously-correct float64 PageRank used as the test oracle.

    Propagates edge by edge with ``np.add.at`` in float64; every kernel's
    float32 result must match this within accumulation tolerance.
    """
    n = graph.num_vertices
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    sources = graph.edge_sources()
    base = (1.0 - damping) / n
    for _ in range(num_iterations):
        contributions = np.divide(
            scores, degrees, out=np.zeros_like(scores), where=degrees > 0
        )
        sums = np.zeros(n, dtype=np.float64)
        np.add.at(sums, graph.targets, contributions[sources])
        scores = base + damping * sums
    return scores


@dataclass(frozen=True)
class InstructionModel:
    """Linear instruction-count model ``per_edge * m + per_vertex * n``.

    Constants are calibrated to the paper's measured instruction counts
    (Tables II and III); see each kernel's docstring for its derivation.
    """

    per_edge: float
    per_vertex: float

    def count(self, num_vertices: int, num_edges: int) -> float:
        return self.per_edge * num_edges + self.per_vertex * num_vertices


class PageRankKernel(abc.ABC):
    """One PageRank implementation strategy bound to a graph.

    Subclasses set :attr:`name` and :attr:`instruction_model`, perform any
    preprocessing in ``__init__`` (after calling ``super().__init__``), and
    implement :meth:`run` and :meth:`trace`.
    """

    #: Short identifier used in tables ("baseline", "cb", "pb", "dpb", ...).
    name: str = "abstract"
    #: Phase labels this kernel's trace/run emit, in execution order.
    phases: tuple[str, ...] = ()
    instruction_model: InstructionModel = InstructionModel(0.0, 0.0)

    def __init__(
        self, graph: CSRGraph, machine: MachineSpec = SIMULATED_MACHINE
    ) -> None:
        if graph.num_vertices == 0:
            raise ValueError("PageRank requires at least one vertex")
        self.graph = graph
        self.machine = machine

    # ------------------------------------------------------------------
    # the three views
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        """Execute ``num_iterations`` power iterations and return new scores.

        ``scores`` defaults to the uniform initial vector; passing the
        previous result continues the iteration (used by the convergence
        driver in :mod:`repro.kernels.pagerank`).
        """

    @abc.abstractmethod
    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        """Yield the cache-line access trace of ``num_iterations`` iterations."""

    def instruction_count(self, num_iterations: int = 1) -> float:
        """Analytic instruction count for ``num_iterations`` iterations."""
        return num_iterations * self.instruction_model.count(
            self.graph.num_vertices, self.graph.num_edges
        )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure(
        self, num_iterations: int = 1, engine: str = DEFAULT_ENGINE
    ) -> MemCounters:
        """Simulate the trace against this kernel's machine LLC.

        Returns the DRAM traffic counters — the reproduction of the paper's
        performance-counter measurement of one (or more) iterations.

        When a metrics registry (:mod:`repro.obs.metrics`) is active, the
        trace is simulated iteration by iteration so per-iteration series
        (miss rate, DRAM requests) can be recorded, and the kernel
        publishes its structural distributions via :meth:`publish_metrics`.
        Totals are identical either way: the trace generator is
        deterministic, so ``n`` one-iteration traces through one persistent
        engine equal one ``n``-iteration trace.
        """
        from repro.memsim import make_engine  # local import: avoid cycle at import time
        from repro.obs.metrics import current_registry

        with span(f"measure[{self.name}]"):
            registry = current_registry()
            if registry is None:
                return simulate(
                    self.trace(num_iterations), make_engine(engine, self.machine.llc)
                )
            return self._measure_instrumented(num_iterations, engine, registry)

    def _measure_instrumented(
        self, num_iterations: int, engine: str, registry
    ) -> MemCounters:
        """Per-iteration measurement loop behind an active metrics registry.

        Note: the ``dmap`` engine buffers all irregular accesses until its
        flush, so its per-iteration series are degenerate (all traffic
        lands on the final flush); the exact LRU engines resolve accesses
        in order and give meaningful series.
        """
        from repro.memsim import make_engine

        eng = make_engine(engine, self.machine.llc)
        counters = MemCounters()
        miss_series = registry.series(f"miss_rate/{self.name}")
        request_series = registry.series(f"dram_requests/{self.name}")
        prev_hits = prev_accesses = prev_requests = 0
        for _ in range(num_iterations):
            simulate(self.trace(1), eng, flush=False, counters=counters)
            hits = counters.total_hits
            accesses = counters.total_accesses
            requests = counters.total_requests
            delta_accesses = accesses - prev_accesses
            if delta_accesses:
                miss_series.append(
                    1.0 - (hits - prev_hits) / delta_accesses
                )
            else:
                miss_series.append(0.0)
            request_series.append(requests - prev_requests)
            prev_hits, prev_accesses, prev_requests = hits, accesses, requests
        eng.flush(counters)
        self.publish_metrics(registry)
        return counters

    def publish_metrics(self, registry) -> None:
        """Publish this kernel's structural distributions into ``registry``.

        Called once per instrumented measurement.  The base implementation
        publishes nothing; kernels with interesting layout distributions
        (bin occupancy for PB/DPB, block occupancy for CB, in-degree for
        the pull baseline) override this.
        """

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _initial_scores(self, scores: np.ndarray | None) -> np.ndarray:
        if scores is None:
            return init_scores(self.graph.num_vertices)
        scores = np.asarray(scores, dtype=np.float32)
        if scores.shape != (self.graph.num_vertices,):
            raise ValueError(
                f"scores must have shape ({self.graph.num_vertices},), got {scores.shape}"
            )
        return scores

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(graph={self.graph!r})"
