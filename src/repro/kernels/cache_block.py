"""1-D cache blocking in the push direction (the paper's "CB").

The graph is partitioned into destination-range blocks whose ``sums`` slice
fits in cache (:mod:`repro.graphs.partition`).  Each block is stored as an
edge list — the paper's choice for sparse graphs, since per-block CSR would
re-read the whole index per block (``k < 2r`` rule, Section V-A) — with
edges sorted by source, so the per-block contribution reads form an
ascending scan.

Communication trade-off (Section V-A): the contributions array is re-read
once per block, so traffic grows with ``r = n / block_width`` — for a fixed
cache, proportional to the number of vertices.  This is the scaling that
loses to propagation blocking on large sparse graphs (Figures 7-8).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.partition import choose_block_width, partition_by_destination
from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    apply_damping,
    compute_contributions,
)
from repro.kernels.layout import (
    build_regions,
    monotone_scan,
    scatter,
    seq_read,
    seq_write,
    streaming_write,
)
from repro.memsim.trace import sequential_chunk
from repro.memsim.trace import Stream, TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span

__all__ = ["CacheBlockedPageRank"]


class CacheBlockedPageRank(PageRankKernel):
    """Push-direction PageRank over 1-D destination blocks (edge-list storage).

    Instruction model: per edge the block loop loads a (src, dst) pair and
    the source contribution and accumulates into the cached slice (~8
    instructions), plus the contribution and apply passes and per-block
    loop overhead: ``8 m + 20 n``.  The paper does not report CB
    instruction counts; these constants sit between the baseline's 7/edge
    and PB's 34/edge, consistent with CB's intermediate speedups (Fig. 4).
    """

    name = "cb"
    phases = ("contrib", "blocks", "apply")
    instruction_model = InstructionModel(per_edge=8.0, per_vertex=20.0)

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec = SIMULATED_MACHINE,
        *,
        block_width: int | None = None,
    ) -> None:
        super().__init__(graph, machine)
        if block_width is None:
            block_width = choose_block_width(
                graph.num_vertices, machine.cache_words
            )
        # Preprocessing (excluded from measurement, per the paper).
        self.block_width = block_width
        self.partition = partition_by_destination(
            graph, block_width, storage="edgelist"
        )
        self._out_degrees = graph.out_degrees()

    @property
    def num_blocks(self) -> int:
        """The paper's ``r``."""
        return self.partition.num_blocks

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        n = self.graph.num_vertices
        sums = np.zeros(n, dtype=np.float64)
        for _ in range(num_iterations):
            with span("contrib"):
                contributions = compute_contributions(scores, self._out_degrees)
            with span("blocks"):
                sums[:] = 0.0
                for block in self.partition.blocks:
                    if block.num_edges == 0:
                        continue
                    width = block.dst_stop - block.dst_start
                    sums[block.dst_start : block.dst_stop] += np.bincount(
                        block.dst - block.dst_start,
                        weights=contributions[block.src].astype(np.float64),
                        minlength=width,
                    )
            with span("apply"):
                scores = apply_damping(sums.astype(np.float32), n, damping)
        return scores

    def publish_metrics(self, registry) -> None:
        """Edges per destination block — how evenly the 1-D partition fills."""
        histogram = registry.histogram(f"block_occupancy/{self.name}")
        for block in self.partition.blocks:
            histogram.observe(block.num_edges)

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        regions = build_regions(
            self.machine,
            {
                "scores": n,
                "degrees": n,
                "contributions": n,
                "sums": n,
                # All blocks' edge lists, 2 words (src, dst) per edge.
                "blocks": max(2 * graph.num_edges, 1),
            },
        )
        blocks_region = regions["blocks"]
        for _ in range(num_iterations):
            # Contributions pass (push blocking re-reads contributions per
            # block, so they must be materialized once per iteration).
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="contrib")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="contrib")
            yield seq_write(
                regions["contributions"], Stream.VERTEX_CONTRIB, phase="contrib"
            )
            yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="blocks")
            word = 0
            for block in self.partition.blocks:
                if block.num_edges == 0:
                    continue
                # Stream the block's edge list.
                yield sequential_chunk(
                    blocks_region.sequential_lines(word, 2 * block.num_edges),
                    stream=Stream.EDGE_ADJ,
                    phase="blocks",
                )
                word += 2 * block.num_edges
                # Source contributions: ascending scan (edges sorted by src).
                yield monotone_scan(
                    regions["contributions"],
                    block.src,
                    Stream.VERTEX_CONTRIB,
                    phase="blocks",
                )
                # Destination sums: irregular, but confined to the cached slice.
                yield scatter(
                    regions["sums"], block.dst, Stream.VERTEX_SUMS, phase="blocks"
                )
            yield seq_read(regions["sums"], Stream.VERTEX_SUMS, phase="apply")
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="apply")
