"""Generalized SpMV with propagation blocking (paper Section IX).

PageRank's propagation step is SpMV on a square binary matrix; the paper
notes propagation blocking "can be easily extended to handle more general
forms of SpMV, such as SpMV on non-square matrices and non-binary matrices.
To support weighted graphs, the weights can be read in lockstep with the
adjacencies and applied directly to the contributions during the binning
phase."  This module implements exactly that extension:

* :class:`SparseMatrix` — a minimal CSR sparse matrix (rows x cols, float32
  values) with a cached CSC view;
* :func:`spmv` — ``y = A @ x`` by either strategy:

  - ``"row"`` (row-major / pull-like): per-row dot products gathering
    ``x[j]`` — the irregular stream is the *input* vector;
  - ``"pb"`` (propagation blocking): column-major traversal bins the
    products ``A[i,j] * x[j]`` by destination-row range, then accumulates
    one cached slice of ``y`` at a time.

Both strategies have traced counterparts for communication measurement.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.kernels.layout import build_regions, gather, scatter, seq_read, seq_write, streaming_write
from repro.memsim.trace import Stream, TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import check_power_of_two

__all__ = ["SparseMatrix", "spmv", "spmv_trace"]


class SparseMatrix:
    """CSR sparse matrix (float32 values, int32 column ids, int64 offsets)."""

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        offsets: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.columns = np.ascontiguousarray(columns, dtype=np.int32)
        self.values = np.ascontiguousarray(values, dtype=np.float32)
        if self.offsets.size != self.num_rows + 1 or self.offsets[0] != 0:
            raise ValueError("offsets must have num_rows + 1 entries starting at 0")
        if self.offsets[-1] != self.columns.size or self.columns.size != self.values.size:
            raise ValueError("columns/values must match offsets[-1]")
        if self.columns.size and (
            self.columns.min() < 0 or self.columns.max() >= self.num_cols
        ):
            raise ValueError(f"column ids must be in [0, {self.num_cols})")
        self._csc: "SparseMatrix | None" = None

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        num_rows: int,
        num_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> "SparseMatrix":
        """Assemble from coordinate triples (duplicates are summed)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols, values must have equal shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
            raise ValueError(f"row ids must be in [0, {num_rows})")
        key = rows * num_cols + cols
        unique_key, inverse = np.unique(key, return_inverse=True)
        summed = np.zeros(unique_key.size, dtype=np.float64)
        np.add.at(summed, inverse, values)
        u_rows = unique_key // num_cols
        u_cols = (unique_key % num_cols).astype(np.int32)
        offsets = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(u_rows, minlength=num_rows), out=offsets[1:])
        return cls(num_rows, num_cols, offsets, u_cols, summed.astype(np.float32))

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.columns.size)

    def row_ids(self) -> np.ndarray:
        """Row id of each stored nonzero, in CSR order."""
        return np.repeat(
            np.arange(self.num_rows, dtype=np.int32), np.diff(self.offsets)
        )

    def transposed(self) -> "SparseMatrix":
        """The CSC view as a CSR matrix of the transpose (cached)."""
        if self._csc is None:
            order = np.argsort(self.columns, kind="stable")
            t_offsets = np.zeros(self.num_cols + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.columns, minlength=self.num_cols), out=t_offsets[1:]
            )
            self._csc = SparseMatrix(
                self.num_cols,
                self.num_rows,
                t_offsets,
                self.row_ids()[order],
                self.values[order],
            )
        return self._csc

    def dense(self) -> np.ndarray:
        """Dense float64 copy (tests / tiny matrices only)."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        out[self.row_ids(), self.columns] = self.values.astype(np.float64)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseMatrix({self.num_rows}x{self.num_cols}, nnz={self.nnz})"


def _check_x(matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float32)
    if x.shape != (matrix.num_cols,):
        raise ValueError(f"x must have shape ({matrix.num_cols},), got {x.shape}")
    return x


def spmv(
    matrix: SparseMatrix,
    x: np.ndarray,
    *,
    method: str = "row",
    bin_width: int = 4096,
) -> np.ndarray:
    """``y = A @ x`` (float32) with the selected strategy.

    ``method="row"`` gathers ``x`` per row (pull); ``method="pb"`` bins the
    products by destination-row range and accumulates per slice (push with
    propagation blocking).  Both return identical results up to rounding.
    """
    x = _check_x(matrix, x)
    if method == "row":
        products = matrix.values.astype(np.float64) * x[matrix.columns]
        y = np.zeros(matrix.num_rows, dtype=np.float64)
        np.add.at(y, matrix.row_ids(), products)  # segmented sum, row order
        return y.astype(np.float32)
    if method == "pb":
        check_power_of_two("bin_width", bin_width)
        csc = matrix.transposed()  # iterate column-major: scatter rows
        dest_rows = csc.columns  # row ids, column-major order
        # Binning phase: weights applied to x in lockstep with adjacencies.
        products = csc.values.astype(np.float64) * np.repeat(
            x.astype(np.float64), np.diff(csc.offsets)
        )
        shift = bin_width.bit_length() - 1
        bin_ids = dest_rows.astype(np.int64) >> shift
        num_bins = max(1, -(-matrix.num_rows // bin_width))
        order = np.argsort(bin_ids, kind="stable")
        binned_rows = dest_rows[order]
        binned_products = products[order]
        bounds = np.zeros(num_bins + 1, dtype=np.int64)
        np.cumsum(np.bincount(bin_ids, minlength=num_bins), out=bounds[1:])
        # Accumulate phase: one slice of y at a time.
        y = np.zeros(matrix.num_rows, dtype=np.float64)
        for b in range(num_bins):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            start = b * bin_width
            stop = min(start + bin_width, matrix.num_rows)
            y[start:stop] += np.bincount(
                binned_rows[lo:hi] - start,
                weights=binned_products[lo:hi],
                minlength=stop - start,
            )
        return y.astype(np.float32)
    raise ValueError(f"unknown method {method!r}; choose 'row' or 'pb'")


def spmv_trace(
    matrix: SparseMatrix,
    *,
    method: str = "row",
    bin_width: int = 4096,
    machine: MachineSpec = SIMULATED_MACHINE,
) -> Iterator[TraceChunk]:
    """Cache-line trace of one ``y = A @ x`` under the selected strategy.

    Unlike PageRank's binary matrix, general SpMV streams a value word with
    every adjacency word, and PB bins carry ``(product, destination)``
    pairs.
    """
    nnz = matrix.nnz
    if method == "row":
        regions = build_regions(
            machine,
            {
                "x": matrix.num_cols,
                "y": matrix.num_rows,
                "index": 2 * matrix.num_rows,
                "adjacency": max(nnz, 1),
                "values": max(nnz, 1),
            },
        )
        yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="spmv")
        if nnz:
            yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="spmv")
            yield seq_read(regions["values"], Stream.EDGE_ADJ, phase="spmv")
            yield gather(regions["x"], matrix.columns, Stream.VERTEX_CONTRIB, phase="spmv")
        yield seq_write(regions["y"], Stream.VERTEX_SUMS, phase="spmv")
        return
    if method != "pb":
        raise ValueError(f"unknown method {method!r}; choose 'row' or 'pb'")
    check_power_of_two("bin_width", bin_width)
    csc = matrix.transposed()
    dest_rows = csc.columns
    shift = bin_width.bit_length() - 1
    bin_ids = dest_rows.astype(np.int64) >> shift
    num_bins = max(1, -(-matrix.num_rows // bin_width))
    order = np.argsort(bin_ids, kind="stable")
    binned_rows = dest_rows[order]
    bounds = np.zeros(num_bins + 1, dtype=np.int64)
    np.cumsum(np.bincount(bin_ids, minlength=num_bins), out=bounds[1:])

    from repro.memsim.trace import AddressSpace

    space = AddressSpace(words_per_line=machine.words_per_line)
    regions = {
        name: space.allocate(name, words)
        for name, words in {
            "x": matrix.num_cols,
            "y": matrix.num_rows,
            "index": 2 * matrix.num_cols,
            "adjacency": max(nnz, 1),
            "values": max(nnz, 1),
        }.items()
    }
    bin_regions = [
        space.allocate(f"bin_{b}", max(2 * int(bounds[b + 1] - bounds[b]), 1))
        for b in range(num_bins)
    ]
    # Binning: stream x, adjacencies and weights; NT-store the pairs.
    yield seq_read(regions["x"], Stream.VERTEX_CONTRIB, phase="binning")
    yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="binning")
    if nnz:
        yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="binning")
        yield seq_read(regions["values"], Stream.EDGE_ADJ, phase="binning")
    for b in range(num_bins):
        if bounds[b + 1] - bounds[b] > 0:
            yield streaming_write(bin_regions[b], Stream.BIN_DATA, phase="binning")
    # Accumulate: drain bins into y slices.
    yield streaming_write(regions["y"], Stream.VERTEX_SUMS, phase="accumulate")
    for b in range(num_bins):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        if lo == hi:
            continue
        yield seq_read(bin_regions[b], Stream.BIN_DATA, phase="accumulate")
        yield scatter(regions["y"], binned_rows[lo:hi], Stream.VERTEX_SUMS, phase="accumulate")
    yield seq_read(regions["y"], Stream.VERTEX_SUMS, phase="apply")
