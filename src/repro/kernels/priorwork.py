"""Strategy models of the prior-work codebases compared in Table II.

The paper validates its baseline against four established systems — Ligra,
GraphMat, Galois, and CSB — showing that the simple pull implementation
communicates least and executes by far the fewest instructions, while the
others are throttled by instruction overhead (their memory bandwidth
utilization "is bottlenecked by the instruction window size", Section VI-A).

Re-running those four multi-hundred-kLoC C++ frameworks is out of scope for
a Python reproduction; instead each is modelled as a kernel that reproduces
the framework's *strategy-level* memory behaviour and instruction profile:

============ ==============================================================
system       behaviour modelled
============ ==============================================================
Ligra        dense pull edgeMap computing ``p_curr[ngh]/outdeg(ngh)`` on
             the fly — **two** low-locality gathers per edge instead of the
             baseline's one precomputed-contribution gather, plus frontier
             bookkeeping and a double-buffered score vector
GraphMat     SpMV-style message passing: baseline traffic plus send /
             process / apply vertex passes over message and result vectors,
             with a heavily abstracted inner loop (~40 instr/edge)
Galois       speculative worklist runtime: baseline traffic plus ~2 words
             of per-edge work-item/runtime metadata, ~20 instr/edge
CSB          compressed-sparse-blocks SpMV: baseline traffic plus ~1.75
             words/edge of block-coordinate index overhead, ~26 instr/edge
============ ==============================================================

Instruction constants are calibrated so a full-scale urand run reproduces
Table II's instruction column (within a few percent); the traffic terms
reproduce its memory-reads column.  All four produce *correct scores*
(their executable path shares the pull mathematics).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.kernels.base import InstructionModel
from repro.kernels.layout import build_regions, seq_read, seq_write
from repro.kernels.pull import PullPageRank
from repro.memsim.trace import Stream, TraceChunk, irregular_chunk

__all__ = [
    "LigraStyle",
    "GraphMatStyle",
    "GaloisStyle",
    "CSBStyle",
    "PRIOR_WORK",
]


class LigraStyle(PullPageRank):
    """Ligra's dense pull edgeMap (Shun & Blelloch, PPoPP'13).

    Ligra's PageRank does not precompute contributions: the edgeMap functor
    evaluates ``p_curr[ngh] / V[ngh].getOutDegree()`` per incoming edge, so
    both the score and the degree of every neighbor are gathered — two
    low-locality streams interleaved per edge, which is why Ligra reads
    ~1.75x the baseline's lines (3 983 M vs 2 269 M on urand) while still
    sustaining high bandwidth.
    """

    name = "ligra"
    instruction_model = InstructionModel(per_edge=16.0, per_vertex=20.0)

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        transpose = graph.transposed()
        regions = build_regions(
            self.machine,
            {
                "p_curr": n,
                "p_next": n,
                "degrees": n,
                "frontier": n,  # dense frontier bytes, rounded up to words
                "index": 2 * n,
                "adjacency": max(graph.num_edges, 1),
            },
        )
        neighbors = transpose.targets
        score_lines = regions["p_curr"].line_of(neighbors)
        degree_lines = regions["degrees"].line_of(neighbors)
        # The two gathers interleave access by access in the edgeMap loop.
        interleaved = np.empty(2 * neighbors.size, dtype=np.int64)
        interleaved[0::2] = score_lines
        interleaved[1::2] = degree_lines
        for _ in range(num_iterations):
            yield seq_read(regions["frontier"], Stream.OTHER, phase="edgemap")
            yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="edgemap")
            if graph.num_edges:
                yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="edgemap")
                yield irregular_chunk(
                    interleaved, stream=Stream.VERTEX_CONTRIB, phase="edgemap"
                )
            yield seq_write(regions["p_next"], Stream.VERTEX_SCORES, phase="edgemap")
            # vertexMap: damping + swap of the double-buffered vectors.
            yield seq_read(regions["p_next"], Stream.VERTEX_SCORES, phase="vertexmap")
            yield seq_write(regions["p_curr"], Stream.VERTEX_SCORES, phase="vertexmap")


class _PullWithOverhead(PullPageRank):
    """Baseline traffic plus a framework-specific streaming overhead.

    Subclasses set ``extra_edge_words`` / ``extra_vertex_words`` — the
    additional words streamed per edge / per vertex and iteration by the
    framework's data structures.
    """

    extra_edge_words: float = 0.0
    extra_vertex_words: float = 0.0
    overhead_stream: Stream = Stream.OTHER

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        extra_words = int(
            self.extra_edge_words * graph.num_edges
            + self.extra_vertex_words * graph.num_vertices
        )
        overhead = None
        if extra_words:
            overhead = build_regions(self.machine, {"overhead": extra_words})[
                "overhead"
            ]
        for chunk_iter in range(num_iterations):
            yield from super().trace(1)
            if overhead is not None:
                yield seq_read(overhead, self.overhead_stream, phase="overhead")


class GraphMatStyle(_PullWithOverhead):
    """GraphMat's SpMV message-passing backend (Sundaram et al., VLDB'15).

    Extra passes: send-message (write), SpMV result (read+write), apply
    (read) — about four extra vertex-length vector streams per iteration —
    and a generalized inner loop costing ~40 instructions per edge (88.8 G
    on urand, the most instruction-hungry system in Table II).
    """

    name = "graphmat"
    instruction_model = InstructionModel(per_edge=40.0, per_vertex=30.0)
    extra_vertex_words = 4.0


class GaloisStyle(_PullWithOverhead):
    """Galois's speculative worklist runtime (Nguyen et al., SOSP'13).

    The amorphous-data-parallelism machinery moves ~2 extra words per edge
    of work-item and conflict-detection metadata (+266 M lines on urand)
    and executes ~20 instructions per edge.
    """

    name = "galois"
    instruction_model = InstructionModel(per_edge=20.0, per_vertex=15.0)
    extra_edge_words = 2.0


class CSBStyle(_PullWithOverhead):
    """Compressed Sparse Blocks SpMV (Buluç et al., SPAA'09).

    CSB stores within-block coordinates for every nonzero, ~1.75 extra
    words per edge of index traffic (+235 M lines on urand), with a
    blocked recursive traversal costing ~26 instructions per edge.  As in
    the paper, this models plain SpMV — it omits PageRank's extra
    per-vertex work, overestimating CSB's performance slightly.
    """

    name = "csb"
    instruction_model = InstructionModel(per_edge=26.0, per_vertex=20.0)
    extra_edge_words = 1.75
    overhead_stream = Stream.EDGE_ADJ


#: Table II row order (after the baseline).
PRIOR_WORK: dict[str, type[PullPageRank]] = {
    "csb": CSBStyle,
    "galois": GaloisStyle,
    "graphmat": GraphMatStyle,
    "ligra": LigraStyle,
}
