"""Simulated memory layout shared by the traced kernels.

Each kernel lays out its data structures in a fresh simulated address space
(one line-aligned region per array, as the C++ implementation's allocator
would) and emits trace chunks against those regions.  The helpers here keep
that emission declarative: ``seq_read(region)`` is "stream this whole array
once", ``gather(region, indices)`` is "access these elements in this
order".

Word accounting follows the paper (Section V): scores, contributions,
sums, degrees and adjacency entries are one 32-bit word each; CSR index
pointers are 64-bit, i.e. **two** words per vertex.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.memsim.trace import (
    AddressSpace,
    Region,
    Stream,
    TraceChunk,
    irregular_chunk,
    sequential_chunk,
)
from repro.models.machine import MachineSpec

__all__ = [
    "build_regions",
    "seq_read",
    "seq_write",
    "streaming_write",
    "gather",
    "scatter",
    "monotone_scan",
    "csr_stream_words",
]

#: CSR index pointers are 64-bit (paper Section V) = 2 words per entry.
INDEX_WORDS_PER_VERTEX = 2


def csr_stream_words(graph: CSRGraph) -> tuple[int, int]:
    """(index_words, adjacency_words) for streaming a CSR graph once."""
    return INDEX_WORDS_PER_VERTEX * graph.num_vertices, graph.num_edges


def build_regions(
    machine: MachineSpec, sizes: dict[str, int]
) -> dict[str, Region]:
    """Allocate one region per named array in a fresh address space."""
    space = AddressSpace(words_per_line=machine.words_per_line)
    return {name: space.allocate(name, words) for name, words in sizes.items()}


def seq_read(region: Region, stream: Stream, phase: str = "") -> TraceChunk:
    """Stream every line of ``region`` once (sequential read)."""
    return sequential_chunk(region.sequential_lines(), stream=stream, phase=phase)


def seq_write(region: Region, stream: Stream, phase: str = "") -> TraceChunk:
    """Stream every line of ``region`` once (regular write: allocate + write-back)."""
    return sequential_chunk(
        region.sequential_lines(), write=True, stream=stream, phase=phase
    )


def streaming_write(
    region: Region,
    stream: Stream,
    phase: str = "",
    *,
    num_words: int | None = None,
    start_word: int = 0,
) -> TraceChunk:
    """Non-temporal full-line writes of (part of) ``region``.

    Models the paper's AVX streaming stores through write-combining buffers
    (Section VII): whole lines go straight to DRAM with no allocate read.
    """
    return sequential_chunk(
        region.sequential_lines(start_word, num_words),
        write=True,
        stream=stream,
        streaming_store=True,
        phase=phase,
    )


def gather(
    region: Region, indices: np.ndarray, stream: Stream, phase: str = ""
) -> TraceChunk:
    """Data-dependent reads of ``region[indices]`` in the given order."""
    return irregular_chunk(region.line_of(indices), stream=stream, phase=phase)


def scatter(
    region: Region, indices: np.ndarray, stream: Stream, phase: str = ""
) -> TraceChunk:
    """Data-dependent read-modify-writes of ``region[indices]`` in order."""
    return irregular_chunk(
        region.line_of(indices), write=True, stream=stream, phase=phase
    )


def monotone_scan(
    region: Region, sorted_indices: np.ndarray, stream: Stream, phase: str = ""
) -> TraceChunk:
    """Ascending-index reads of ``region[sorted_indices]``.

    A monotone access pattern never revisits a line once the scan has moved
    past it, so each distinct line costs exactly one transfer regardless of
    cache size — the SEQUENTIAL chunk semantics.  Used for cache blocking's
    per-block contribution scan, where edges are sorted by source.
    """
    idx = np.asarray(sorted_indices)
    if idx.size and np.any(np.diff(idx) < 0):
        raise ValueError("monotone_scan requires non-decreasing indices")
    lines = region.line_of(idx)
    # Distinct lines only (ascending, so consecutive dedup is global dedup).
    if lines.size:
        keep = np.empty(lines.size, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        lines = lines[keep]
    return sequential_chunk(lines, stream=stream, phase=phase)
