"""The pull-direction baseline (Algorithm 1; the paper's "Baseline").

The GAP Benchmark Suite reference implementation: one pass computes every
vertex's contribution ``PR[u]/outdeg(u)``; a second pass walks each vertex's
*incoming* neighbors, gathers their contributions, and reduces them into the
new score.  The sum lives in a register (perfect temporal locality); the
contribution gathers are the low-locality stream — on a low-locality graph
nearly every gather misses the LLC and wastes most of each transferred
line, which is precisely the inefficiency propagation blocking removes.

Table II shows why this simple strategy is the right baseline: it executes
the fewest instructions of any established codebase and saturates memory
bandwidth, so beating it is meaningful (Section VI-A).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    apply_damping,
    compute_contributions,
)
from repro.kernels.layout import (
    build_regions,
    csr_stream_words,
    gather,
    seq_read,
    seq_write,
)
from repro.memsim.trace import Stream, TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span

__all__ = ["PullPageRank", "segment_sums"]


def segment_sums(values: np.ndarray, offsets: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum ``values`` within CSR segments, tolerating empty segments.

    ``np.add.reduceat`` mishandles empty segments (it returns the element
    *at* the boundary), so empty rows are masked out first; between two
    consecutive non-empty rows any skipped rows contribute no elements, so
    the reduceat segments still line up.
    """
    sums = np.zeros(num_segments, dtype=np.float32)
    if values.size == 0:
        return sums
    lengths = np.diff(offsets)
    nonempty = lengths > 0
    if not nonempty.any():
        return sums
    starts = offsets[:-1][nonempty]
    sums[nonempty] = np.add.reduceat(values, starts)
    return sums


class PullPageRank(PageRankKernel):
    """Pull-direction PageRank over the transpose graph.

    Instruction model: the paper measures 16.2 G instructions for one
    iteration on urand (2 147.5 M edges, 134.2 M vertices — Table II),
    i.e. ~7 instructions/edge for the gather-and-accumulate inner loop plus
    per-vertex work for the two vertex passes: ``7 m + 12 n``.
    """

    name = "baseline"
    phases = ("contrib", "gather")
    instruction_model = InstructionModel(per_edge=7.0, per_vertex=12.0)

    def __init__(
        self, graph: CSRGraph, machine: MachineSpec = SIMULATED_MACHINE
    ) -> None:
        super().__init__(graph, machine)
        # Preprocessing (excluded from measurement, like the paper's):
        # pull needs incoming adjacency.
        self._transpose = graph.transposed()
        self._out_degrees = graph.out_degrees()
        self._in_offsets = self._transpose.offsets

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        n = self.graph.num_vertices
        t = self._transpose
        for _ in range(num_iterations):
            with span("contrib"):
                contributions = compute_contributions(scores, self._out_degrees)
            with span("gather"):
                incoming = contributions[t.targets]
                sums = segment_sums(incoming, t.offsets, n)
                scores = apply_damping(sums, n, damping)
        return scores

    def publish_metrics(self, registry) -> None:
        """In-degree distribution — how skewed the gather workload is."""
        degrees = np.diff(self._in_offsets)
        histogram = registry.histogram(f"in_degree/{self.name}")
        for value, count in zip(*np.unique(degrees, return_counts=True)):
            histogram.observe(int(value), int(count))

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        index_words, adj_words = csr_stream_words(self._transpose)
        regions = build_regions(
            self.machine,
            {
                "scores": n,
                "degrees": n,
                "contributions": n,
                "index": index_words,
                "adjacency": max(adj_words, 1),
            },
        )
        # The gather stream: for each vertex u (in order), the contributions
        # of its incoming neighbors — i.e. the transpose's targets in CSR
        # order.
        gather_targets = self._transpose.targets
        for _ in range(num_iterations):
            # Pass 1: contributions[u] = scores[u] / degree[u] (all streaming).
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="contrib")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="contrib")
            yield seq_write(
                regions["contributions"], Stream.VERTEX_CONTRIB, phase="contrib"
            )
            # Pass 2: gather + reduce per vertex; sums stay in registers.
            yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="gather")
            if adj_words:
                yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="gather")
                yield gather(
                    regions["contributions"],
                    gather_targets,
                    Stream.VERTEX_CONTRIB,
                    phase="gather",
                )
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="gather")
