"""Partial (active-subset) propagation — paper Section IX.

Many iterative graph algorithms (delta-stepping PageRank, label
propagation, SpMSpV-style kernels) propagate from only an *active* subset
of vertices per round.  The paper claims a structural advantage for
propagation blocking there:

    "Since the amount of communication for propagation blocking is
    proportional to the number of propagations, unlike cache blocking,
    propagation blocking experiences no loss in communication efficiency
    if only a subset of the vertices are active."

The asymmetry, made concrete by the traced strategies below:

* **pull** must read *every* vertex's full in-neighbor list — it cannot
  know which in-neighbors are active without looking — so its traffic is
  independent of the active fraction;
* **cache blocking** stores the graph pre-blocked as per-block edge lists;
  each block's whole list must be streamed to find its active edges, so
  edge traffic is also independent of the active fraction (only the
  vertex-value traffic shrinks);
* **propagation blocking** starts from CSR, jumps directly to the active
  vertices' adjacency ranges, and bins only active propagations — every
  term of its traffic scales with the number of active edges.

:func:`partial_propagate` computes the actual sums (all strategies agree);
:func:`partial_trace` emits each strategy's memory trace for measurement.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.partition import choose_block_width, partition_by_destination
from repro.kernels.base import compute_contributions
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.layout import (
    build_regions,
    gather,
    monotone_scan,
    scatter,
    seq_read,
    streaming_write,
)
from repro.memsim.trace import AddressSpace, Stream, TraceChunk, sequential_chunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import pow2_at_least

__all__ = ["active_edge_count", "partial_propagate", "partial_trace", "PARTIAL_METHODS"]

PARTIAL_METHODS = ("pull", "push", "cb", "pb")


def _check_active(graph: CSRGraph, active: np.ndarray) -> np.ndarray:
    active = np.asarray(active, dtype=bool)
    if active.shape != (graph.num_vertices,):
        raise ValueError(
            f"active mask must have shape ({graph.num_vertices},), got {active.shape}"
        )
    return active


def active_edge_count(graph: CSRGraph, active: np.ndarray) -> int:
    """Number of propagations a round with this active set performs."""
    active = _check_active(graph, active)
    return int(np.asarray(graph.out_degrees())[active].sum())


def partial_propagate(
    graph: CSRGraph, active: np.ndarray, scores: np.ndarray | None = None
) -> np.ndarray:
    """One propagation round from the active vertices only.

    Returns ``sums`` where ``sums[v] = sum of contributions of v's active
    in-neighbors``.  Strategy-independent reference semantics (all traced
    strategies compute exactly this).
    """
    active = _check_active(graph, active)
    n = graph.num_vertices
    if scores is None:
        scores = np.full(n, 1.0 / n, dtype=np.float32)
    contributions = compute_contributions(scores, graph.out_degrees())
    contributions = np.where(active, contributions, np.float32(0.0))
    sources = graph.edge_sources()
    per_edge = contributions[sources].astype(np.float64)
    return np.bincount(graph.targets, weights=per_edge, minlength=n).astype(np.float32)


def _active_adjacency_lines(
    graph: CSRGraph, active_mask: np.ndarray, region
) -> np.ndarray:
    """Distinct adjacency-region lines covering the active vertices' ranges.

    Active edge slots are an ascending union of CSR ranges, so mapping
    each slot to its line and deduplicating consecutive repeats yields the
    exact never-revisited scan the binning phase performs.
    """
    edge_active = active_mask[graph.edge_sources()]
    positions = np.flatnonzero(edge_active)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    lines = (region.base_word + positions) // region.words_per_line
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


def partial_trace(
    graph: CSRGraph,
    active: np.ndarray,
    method: str,
    machine: MachineSpec = SIMULATED_MACHINE,
) -> Iterator[TraceChunk]:
    """Memory trace of one partial propagation round under ``method``."""
    active = _check_active(graph, active)
    if method not in PARTIAL_METHODS:
        raise ValueError(f"method must be one of {PARTIAL_METHODS}, got {method!r}")
    n = graph.num_vertices
    active_ids = np.flatnonzero(active).astype(np.int64)

    if method == "pull":
        yield from _partial_pull(graph, machine, n)
    elif method == "push":
        yield from _partial_push(graph, active, active_ids, machine, n)
    elif method == "cb":
        yield from _partial_cb(graph, active, machine, n)
    else:
        yield from _partial_pb(graph, active_ids, machine, n)


def _partial_pull(graph: CSRGraph, machine: MachineSpec, n: int):
    """Pull ignores activity: the full gather pass runs regardless.

    (Contributions of inactive vertices are zeroed, but pull still reads
    every in-neighbor's entry to find that out.)
    """
    transpose = graph.transposed()
    regions = build_regions(
        machine,
        {
            "contributions": n,
            "index": 2 * n,
            "adjacency": max(transpose.num_edges, 1),
            "sums": n,
        },
    )
    yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="partial")
    if transpose.num_edges:
        yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="partial")
        yield gather(
            regions["contributions"],
            transpose.targets,
            Stream.VERTEX_CONTRIB,
            phase="partial",
        )
    yield sequential_chunk(
        regions["sums"].sequential_lines(),
        write=True,
        stream=Stream.VERTEX_SUMS,
        phase="partial",
    )


def _partial_push(
    graph: CSRGraph,
    active: np.ndarray,
    active_ids: np.ndarray,
    machine: MachineSpec,
    n: int,
):
    """Unblocked push from the active set (vertex-centric engines' default).

    Edge traffic scales with activity (CSR lets push jump to active
    ranges), but every propagation is an unblocked read-modify-write into
    the full sums range — the low-locality scatter PB exists to fix.
    """
    regions = build_regions(
        machine,
        {
            "contributions": n,
            "index": 2 * n,
            "adjacency": max(graph.num_edges, 1),
            "sums": n,
        },
    )
    index_lines = (
        regions["index"].line_of(
            np.repeat(2 * active_ids, 2) + np.tile([0, 1], active_ids.size)
        )
        if active_ids.size
        else np.empty(0, dtype=np.int64)
    )
    yield sequential_chunk(
        np.unique(index_lines), stream=Stream.EDGE_INDEX, phase="partial"
    )
    adj_lines = _active_adjacency_lines(graph, active, regions["adjacency"])
    yield sequential_chunk(adj_lines, stream=Stream.EDGE_ADJ, phase="partial")
    yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="partial")
    if active_ids.size:
        yield monotone_scan(
            regions["contributions"], active_ids, Stream.VERTEX_CONTRIB, phase="partial"
        )
        edge_active = active[graph.edge_sources()]
        yield scatter(
            regions["sums"],
            graph.targets[edge_active],
            Stream.VERTEX_SUMS,
            phase="partial",
        )


def _partial_cb(graph: CSRGraph, active: np.ndarray, machine: MachineSpec, n: int):
    """CB streams every pre-blocked edge list; only vertex traffic shrinks."""
    width = choose_block_width(n, machine.cache_words)
    partition = partition_by_destination(graph, width, storage="edgelist")
    regions = build_regions(
        machine,
        {
            "contributions": n,
            "sums": n,
            "blocks": max(2 * graph.num_edges, 1),
        },
    )
    yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="partial")
    word = 0
    for block in partition.blocks:
        if block.num_edges == 0:
            continue
        # The whole block edge list streams through to find active edges.
        yield sequential_chunk(
            regions["blocks"].sequential_lines(word, 2 * block.num_edges),
            stream=Stream.EDGE_ADJ,
            phase="partial",
        )
        word += 2 * block.num_edges
        live = active[block.src]
        if not live.any():
            continue
        # Contributions of active sources only (ascending scan with gaps).
        yield monotone_scan(
            regions["contributions"],
            block.src[live],
            Stream.VERTEX_CONTRIB,
            phase="partial",
        )
        yield scatter(
            regions["sums"], block.dst[live], Stream.VERTEX_SUMS, phase="partial"
        )


def _partial_pb(graph: CSRGraph, active_ids: np.ndarray, machine: MachineSpec, n: int):
    """PB touches only the active vertices' CSR ranges and propagations."""
    layout = BinLayout(
        graph, min(default_bin_width(machine), pow2_at_least(n))
    )
    space = AddressSpace(words_per_line=machine.words_per_line)
    regions = {
        name: space.allocate(name, words)
        for name, words in {
            "contributions": n,
            "sums": n,
            "index": 2 * n,
            "adjacency": max(graph.num_edges, 1),
        }.items()
    }
    # Active edges in bin-major order: filter the layout's permutation.
    sources = graph.edge_sources()
    active_mask = np.zeros(n, dtype=bool)
    active_mask[active_ids] = True
    binned_active = active_mask[sources[layout.order]]
    binned_dst = layout.sorted_dst[binned_active]
    # Per-bin counts of active propagations.
    per_bin = np.empty(layout.num_bins, dtype=np.int64)
    pos = 0
    bin_bounds = []
    for b in range(layout.num_bins):
        lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
        count = int(np.count_nonzero(binned_active[lo:hi]))
        per_bin[b] = count
        bin_bounds.append((pos, pos + count))
        pos += count
    bin_regions = [
        space.allocate(f"bin_{b}", max(2 * int(per_bin[b]), 1))
        for b in range(layout.num_bins)
    ]

    # Binning phase: index + adjacency of active vertices only (CSR lets
    # the kernel jump straight to their ranges), contributions scan of the
    # active ids, NT stores of the active pairs.
    index_lines = regions["index"].line_of(
        np.repeat(2 * active_ids, 2) + np.tile([0, 1], active_ids.size)
    ) if active_ids.size else np.empty(0, dtype=np.int64)
    yield sequential_chunk(
        np.unique(index_lines), stream=Stream.EDGE_INDEX, phase="partial"
    )
    adj_lines = _active_adjacency_lines(graph, active_mask, regions["adjacency"])
    yield sequential_chunk(adj_lines, stream=Stream.EDGE_ADJ, phase="partial")
    if active_ids.size:
        yield monotone_scan(
            regions["contributions"], active_ids, Stream.VERTEX_CONTRIB, phase="partial"
        )
    for b in range(layout.num_bins):
        if per_bin[b]:
            yield streaming_write(bin_regions[b], Stream.BIN_DATA, phase="partial")

    # Accumulate phase: drain non-empty bins into their sums slices.
    yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="partial")
    for b in range(layout.num_bins):
        lo, hi = bin_bounds[b]
        if lo == hi:
            continue
        yield seq_read(bin_regions[b], Stream.BIN_DATA, phase="partial")
        yield scatter(
            regions["sums"], binned_dst[lo:hi], Stream.VERTEX_SUMS, phase="partial"
        )

