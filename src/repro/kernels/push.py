"""The push-direction kernel (Algorithm 2).

Each vertex adds its contribution to the running sums of its *outgoing*
neighbors; a final pass converts sums to scores.  The contribution has
perfect locality (computed once per vertex, register-resident) but the
scatter into ``sums[v]`` is the low-locality stream — and unlike pull's
gathers, these are read-modify-*writes*, which in a parallel setting also
require atomics (why the paper calls pull "often more efficient",
Section II).

Push is not one of the paper's measured configurations, but it is the
starting point both CB and PB transform (both "compute in the push
direction"), so it is included as a substrate and for ablations.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    apply_damping,
    compute_contributions,
)
from repro.kernels.layout import (
    build_regions,
    csr_stream_words,
    scatter,
    seq_read,
    seq_write,
    streaming_write,
)
from repro.memsim.trace import Stream, TraceChunk
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span

__all__ = ["PushPageRank"]


class PushPageRank(PageRankKernel):
    """Push-direction PageRank with unblocked scatter-adds.

    Instruction model: like the pull baseline plus a read-modify-write per
    edge (~1 extra instruction) and the extra sums pass: ``8 m + 16 n``.
    """

    name = "push"
    phases = ("scatter", "apply")
    instruction_model = InstructionModel(per_edge=8.0, per_vertex=16.0)

    def __init__(
        self, graph: CSRGraph, machine: MachineSpec = SIMULATED_MACHINE
    ) -> None:
        super().__init__(graph, machine)
        self._out_degrees = graph.out_degrees()

    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        graph = self.graph
        n = graph.num_vertices
        degrees = self._out_degrees
        for _ in range(num_iterations):
            with span("scatter"):
                contributions = compute_contributions(scores, degrees)
                per_edge = np.repeat(contributions, degrees)
                sums = np.bincount(
                    graph.targets, weights=per_edge.astype(np.float64), minlength=n
                ).astype(np.float32)
            with span("apply"):
                scores = apply_damping(sums, n, damping)
        return scores

    def trace(self, num_iterations: int = 1) -> Iterator[TraceChunk]:
        graph = self.graph
        n = graph.num_vertices
        index_words, adj_words = csr_stream_words(graph)
        regions = build_regions(
            self.machine,
            {
                "scores": n,
                "degrees": n,
                "sums": n,
                "index": index_words,
                "adjacency": max(adj_words, 1),
            },
        )
        for _ in range(num_iterations):
            # sums[:] = 0 — a large memset, modelled as streaming stores.
            yield streaming_write(regions["sums"], Stream.VERTEX_SUMS, phase="scatter")
            # Scatter pass: contribution is computed on the fly from the
            # score and degree streams, then added to each out-neighbor.
            yield seq_read(regions["scores"], Stream.VERTEX_SCORES, phase="scatter")
            yield seq_read(regions["degrees"], Stream.VERTEX_DEGREE, phase="scatter")
            yield seq_read(regions["index"], Stream.EDGE_INDEX, phase="scatter")
            if adj_words:
                yield seq_read(regions["adjacency"], Stream.EDGE_ADJ, phase="scatter")
                yield scatter(
                    regions["sums"], graph.targets, Stream.VERTEX_SUMS, phase="scatter"
                )
            # Final pass: scores from sums.
            yield seq_read(regions["sums"], Stream.VERTEX_SUMS, phase="apply")
            yield seq_write(regions["scores"], Stream.VERTEX_SCORES, phase="apply")
