"""PageRank kernels: the paper's contribution and every compared strategy.

============== =========================================== =================
name           class                                       paper role
============== =========================================== =================
``baseline``   :class:`~repro.kernels.pull.PullPageRank`   reference (pull)
``push``       :class:`~repro.kernels.push.PushPageRank`   substrate
``cb``         :class:`~repro.kernels.cache_block.\
CacheBlockedPageRank`                                       1-D cache blocking
``pb``         :class:`~repro.kernels.propagation_blocking.\
PropagationBlockingPageRank`                                **contribution**
``dpb``        :class:`~repro.kernels.propagation_blocking.\
DeterministicPBPageRank`                                    **contribution**
``ligra`` ...  :mod:`repro.kernels.priorwork`              Table II rows
============== =========================================== =================

Use :func:`~repro.kernels.pagerank.pagerank` for the high-level API and
:func:`~repro.kernels.pagerank.make_kernel` for direct access to a
strategy.  :mod:`repro.kernels.spmv` generalizes propagation blocking to
weighted, non-square SpMV (paper Section IX).
"""

from repro.kernels.base import (
    DAMPING,
    InstructionModel,
    PageRankKernel,
    init_scores,
    compute_contributions,
    apply_damping,
    reference_pagerank,
    score_delta,
)
from repro.kernels.pull import PullPageRank
from repro.kernels.push import PushPageRank
from repro.kernels.cache_block import CacheBlockedPageRank
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.propagation_blocking import (
    PropagationBlockingPageRank,
    DeterministicPBPageRank,
)
from repro.kernels.priorwork import (
    LigraStyle,
    GraphMatStyle,
    GaloisStyle,
    CSBStyle,
    PRIOR_WORK,
)
from repro.kernels.pagerank import (
    KERNELS,
    PageRankResult,
    make_kernel,
    select_method,
    pagerank,
)
from repro.kernels.spmv import SparseMatrix, spmv, spmv_trace
from repro.kernels.partial import (
    PARTIAL_METHODS,
    active_edge_count,
    partial_propagate,
    partial_trace,
)
from repro.kernels.delta import (
    DeltaPageRankResult,
    DeltaRound,
    delta_repropagate,
    pagerank_delta,
)
from repro.kernels.personalized import (
    multi_personalized_pagerank,
    personalized_pagerank,
    restart_teleport,
    uniform_teleport,
)

__all__ = [
    "DAMPING",
    "InstructionModel",
    "PageRankKernel",
    "init_scores",
    "compute_contributions",
    "apply_damping",
    "reference_pagerank",
    "score_delta",
    "PullPageRank",
    "PushPageRank",
    "CacheBlockedPageRank",
    "BinLayout",
    "default_bin_width",
    "PropagationBlockingPageRank",
    "DeterministicPBPageRank",
    "LigraStyle",
    "GraphMatStyle",
    "GaloisStyle",
    "CSBStyle",
    "PRIOR_WORK",
    "KERNELS",
    "PageRankResult",
    "make_kernel",
    "select_method",
    "pagerank",
    "SparseMatrix",
    "spmv",
    "spmv_trace",
    "PARTIAL_METHODS",
    "active_edge_count",
    "partial_propagate",
    "partial_trace",
    "DeltaPageRankResult",
    "DeltaRound",
    "pagerank_delta",
    "delta_repropagate",
    "personalized_pagerank",
    "multi_personalized_pagerank",
    "restart_teleport",
    "uniform_teleport",
]
