"""Personalized PageRank on the propagation substrate.

PageRank's teleport term need not be uniform: with a *teleport
distribution* ``t`` the update becomes

    PR'(u) = (1 - d) * t(u) + d * sum of incoming contributions.

Everything the paper studies — the propagation of contributions and its
memory behaviour — is unchanged; only the final per-vertex apply differs.
This module provides the general driver over the same two delivery
strategies (pull gather vs propagation-blocked binning), demonstrating
that the optimization composes with the standard PageRank variants.

Multi-source batching
---------------------
:func:`multi_personalized_pagerank` answers a *batch* of personalized
queries in one kernel invocation.  The graph-wide preprocessing — the
propagation-blocking :class:`~repro.kernels.bins.BinLayout` (an
``O(m log m)`` destination sort) for ``dpb``, the transpose for ``pull``
— is built **once** and shared by every query in the batch: exactly the
paper's amortization argument (binning setup is paid in advance and
reused), applied across concurrent queries instead of across iterations.
Each query's iteration loop is the *same code path* as a single-seed
:func:`personalized_pagerank` run over the shared structures, so batched
answers are bit-identical to one-at-a-time runs by construction; the
differential suite ``tests/serve/test_batch_equivalence.py`` pins that
contract so future vectorized batch paths must preserve it.

``tier="compiled"`` routes the ``dpb`` propagate through the compiled
backend's ``pb_binning``/``pb_accumulate`` primitives when one is
available (:mod:`repro.compiled.backend`) — bit-identical sums, see
``docs/performance.md`` — and falls back to the NumPy oracle otherwise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, compute_contributions, score_delta
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.pagerank import PageRankResult
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import pow2_at_least

__all__ = [
    "personalized_pagerank",
    "multi_personalized_pagerank",
    "uniform_teleport",
    "restart_teleport",
]


def uniform_teleport(num_vertices: int) -> np.ndarray:
    """The standard PageRank teleport: uniform over all vertices."""
    return np.full(num_vertices, 1.0 / num_vertices, dtype=np.float64)


def restart_teleport(num_vertices: int, seeds) -> np.ndarray:
    """Random-walk-with-restart teleport: uniform over ``seeds`` only.

    This is the personalization used for similarity search ("rank pages
    relative to my bookmarks"): the walker always restarts at a seed.
    Duplicate seeds are rejected (they would silently lose restart mass
    under the uniform assignment); callers coalescing user input should
    deduplicate first (:func:`repro.serve.canonical_seeds` does).
    """
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("seeds must be non-empty")
    if seeds.min() < 0 or seeds.max() >= num_vertices:
        raise ValueError(f"seeds must be in [0, {num_vertices})")
    if np.unique(seeds).size != seeds.size:
        raise ValueError("seeds must be distinct")
    teleport = np.zeros(num_vertices, dtype=np.float64)
    teleport[seeds] = 1.0 / seeds.size
    return teleport


def _propagate_pull(graph: CSRGraph, contributions: np.ndarray) -> np.ndarray:
    transpose = graph.transposed()
    incoming = contributions[transpose.targets].astype(np.float64)
    return np.bincount(
        np.repeat(
            np.arange(graph.num_vertices), np.diff(transpose.offsets)
        ),
        weights=incoming,
        minlength=graph.num_vertices,
    )


def _propagate_pb(
    graph: CSRGraph, layout: BinLayout, contributions: np.ndarray
) -> np.ndarray:
    n = graph.num_vertices
    binned = np.repeat(contributions, graph.out_degrees())[layout.order].astype(
        np.float64
    )
    sums = np.zeros(n, dtype=np.float64)
    for b in range(layout.num_bins):
        lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
        if lo == hi:
            continue
        start, stop = layout.bin_slice(b)
        sums[start:stop] += np.bincount(
            layout.sorted_dst[lo:hi] - start,
            weights=binned[lo:hi],
            minlength=stop - start,
        )
    return sums


class _Propagator:
    """One batch's shared propagation state: layout, degrees, buffers.

    Building this once and reusing it across every query of a batch (and
    every iteration of every query) is the multi-source amortization —
    the bin layout is the expensive part of ``dpb`` and depends only on
    the graph, never on the teleport.
    """

    def __init__(
        self,
        graph: CSRGraph,
        method: str,
        machine: MachineSpec,
        tier: str = "numpy",
    ) -> None:
        if method not in ("pull", "dpb"):
            raise ValueError(f"method must be 'pull' or 'dpb', got {method!r}")
        self.graph = graph
        self.method = method
        self.degrees = graph.out_degrees()
        self.layout = None
        self._compiled = None
        if method == "dpb":
            n = graph.num_vertices
            self.layout = BinLayout(
                graph, min(default_bin_width(machine), pow2_at_least(max(n, 1)))
            )
            if tier == "compiled":
                self._compiled = self._prepare_compiled()
        if method == "pull":
            graph.transposed()  # build (or alias) the transpose once

    def _prepare_compiled(self):
        """Compiled-backend scatter/drain state, or ``None`` to fall back.

        Same availability rule as the compiled kernels: a backend must be
        importable and edges must be int32-indexable; otherwise the NumPy
        oracle runs (identical sums, oracle speed).
        """
        try:
            from repro.compiled.backend import get_backend
        except Exception:  # pragma: no cover - compiled tier unimportable
            return None
        backend = get_backend()
        if backend is None or self.graph.num_edges >= 2**31:
            return None
        m = self.graph.num_edges
        pos = np.empty(m, dtype=np.int32)
        pos[self.layout.order] = np.arange(m, dtype=np.int32)
        return (
            backend,
            np.ascontiguousarray(self.graph.offsets, dtype=np.int64),
            pos,
            np.ascontiguousarray(self.layout.sorted_dst, dtype=np.int32),
            np.ascontiguousarray(self.layout.bounds, dtype=np.int64),
            np.empty(m, dtype=np.float32),
        )

    def propagate(self, contributions: np.ndarray) -> np.ndarray:
        if self.method == "pull":
            return _propagate_pull(self.graph, contributions)
        if self._compiled is not None:
            backend, offsets, pos, dst_sorted, bounds, binned = self._compiled
            sums = np.zeros(self.graph.num_vertices, dtype=np.float64)
            backend.pb_binning(contributions, offsets, pos, bounds, binned)
            backend.pb_accumulate(binned, dst_sorted, bounds, sums)
            return sums
        return _propagate_pb(self.graph, self.layout, contributions)


def _check_teleport(teleport: np.ndarray, n: int) -> np.ndarray:
    teleport = np.asarray(teleport, dtype=np.float64)
    if teleport.shape != (n,):
        raise ValueError(f"teleport must have shape ({n},), got {teleport.shape}")
    if teleport.min() < 0 or not np.isclose(teleport.sum(), 1.0, atol=1e-6):
        raise ValueError("teleport must be a probability distribution")
    return teleport


def _solve_one(
    propagator: _Propagator,
    teleport: np.ndarray,
    damping: float,
    tolerance: float,
    max_iterations: int,
) -> PageRankResult:
    """The per-query iteration loop, over shared propagation state.

    This is the *only* solve loop — single-seed and batched entry points
    both run it, which is what makes batched answers bit-identical to
    serial ones.
    """
    scores = teleport.astype(np.float32)  # start at the restart distribution
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contributions = compute_contributions(scores, propagator.degrees)
        sums = propagator.propagate(contributions)
        new_scores = ((1.0 - damping) * teleport + damping * sums).astype(np.float32)
        if score_delta(new_scores, scores) < tolerance:
            scores = new_scores
            converged = True
            break
        scores = new_scores
    return PageRankResult(
        scores=scores,
        iterations=iterations,
        converged=converged,
        method=propagator.method,
    )


def personalized_pagerank(
    graph: CSRGraph,
    teleport: np.ndarray | None = None,
    *,
    method: str = "dpb",
    damping: float = DAMPING,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    machine: MachineSpec = SIMULATED_MACHINE,
    tier: str = "numpy",
) -> PageRankResult:
    """Personalized PageRank (random walk with restart).

    ``teleport`` is any probability distribution over vertices (defaults
    to uniform, recovering standard PageRank).  ``method`` selects the
    propagation strategy: ``"pull"`` or ``"dpb"`` — identical results, the
    usual different memory behaviour.  ``tier="compiled"`` routes the
    ``dpb`` propagate through the compiled backend when available
    (bit-identical scores, oracle fallback otherwise).
    """
    n = graph.num_vertices
    if teleport is None:
        teleport = uniform_teleport(n)
    teleport = _check_teleport(teleport, n)
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    propagator = _Propagator(graph, method, machine, tier=tier)
    return _solve_one(propagator, teleport, damping, tolerance, max_iterations)


def multi_personalized_pagerank(
    graph: CSRGraph,
    teleports: Sequence[np.ndarray],
    *,
    method: str = "dpb",
    damping: float = DAMPING,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    machine: MachineSpec = SIMULATED_MACHINE,
    tier: str = "numpy",
) -> list[PageRankResult]:
    """A batch of personalized-PageRank queries as one multi-source run.

    ``teleports`` is a sequence of teleport distributions (one per query;
    build them with :func:`restart_teleport`).  All queries share one
    graph preprocessing pass (bin layout / transpose — see the module
    docstring) and run the identical per-query solve loop, so the ``i``-th
    result is **bit-identical** to
    ``personalized_pagerank(graph, teleports[i], ...)`` with the same
    parameters.  Returns one :class:`PageRankResult` per query, in input
    order.
    """
    n = graph.num_vertices
    if len(teleports) == 0:
        return []
    checked = [_check_teleport(t, n) for t in teleports]
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    propagator = _Propagator(graph, method, machine, tier=tier)
    return [
        _solve_one(propagator, teleport, damping, tolerance, max_iterations)
        for teleport in checked
    ]
