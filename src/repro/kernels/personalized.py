"""Personalized PageRank on the propagation substrate.

PageRank's teleport term need not be uniform: with a *teleport
distribution* ``t`` the update becomes

    PR'(u) = (1 - d) * t(u) + d * sum of incoming contributions.

Everything the paper studies — the propagation of contributions and its
memory behaviour — is unchanged; only the final per-vertex apply differs.
This module provides the general driver over the same two delivery
strategies (pull gather vs propagation-blocked binning), demonstrating
that the optimization composes with the standard PageRank variants.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, compute_contributions, score_delta
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.pagerank import PageRankResult
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import pow2_at_least

__all__ = ["personalized_pagerank", "uniform_teleport", "restart_teleport"]


def uniform_teleport(num_vertices: int) -> np.ndarray:
    """The standard PageRank teleport: uniform over all vertices."""
    return np.full(num_vertices, 1.0 / num_vertices, dtype=np.float64)


def restart_teleport(num_vertices: int, seeds) -> np.ndarray:
    """Random-walk-with-restart teleport: uniform over ``seeds`` only.

    This is the personalization used for similarity search ("rank pages
    relative to my bookmarks"): the walker always restarts at a seed.
    """
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("seeds must be non-empty")
    if seeds.min() < 0 or seeds.max() >= num_vertices:
        raise ValueError(f"seeds must be in [0, {num_vertices})")
    teleport = np.zeros(num_vertices, dtype=np.float64)
    teleport[seeds] = 1.0 / seeds.size
    return teleport


def _propagate_pull(graph: CSRGraph, contributions: np.ndarray) -> np.ndarray:
    transpose = graph.transposed()
    incoming = contributions[transpose.targets].astype(np.float64)
    return np.bincount(
        np.repeat(
            np.arange(graph.num_vertices), np.diff(transpose.offsets)
        ),
        weights=incoming,
        minlength=graph.num_vertices,
    )


def _propagate_pb(
    graph: CSRGraph, layout: BinLayout, contributions: np.ndarray
) -> np.ndarray:
    n = graph.num_vertices
    binned = np.repeat(contributions, graph.out_degrees())[layout.order].astype(
        np.float64
    )
    sums = np.zeros(n, dtype=np.float64)
    for b in range(layout.num_bins):
        lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
        if lo == hi:
            continue
        start, stop = layout.bin_slice(b)
        sums[start:stop] += np.bincount(
            layout.sorted_dst[lo:hi] - start,
            weights=binned[lo:hi],
            minlength=stop - start,
        )
    return sums


def personalized_pagerank(
    graph: CSRGraph,
    teleport: np.ndarray | None = None,
    *,
    method: str = "dpb",
    damping: float = DAMPING,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    machine: MachineSpec = SIMULATED_MACHINE,
) -> PageRankResult:
    """Personalized PageRank (random walk with restart).

    ``teleport`` is any probability distribution over vertices (defaults
    to uniform, recovering standard PageRank).  ``method`` selects the
    propagation strategy: ``"pull"`` or ``"dpb"`` — identical results, the
    usual different memory behaviour.
    """
    n = graph.num_vertices
    if teleport is None:
        teleport = uniform_teleport(n)
    teleport = np.asarray(teleport, dtype=np.float64)
    if teleport.shape != (n,):
        raise ValueError(f"teleport must have shape ({n},), got {teleport.shape}")
    if teleport.min() < 0 or not np.isclose(teleport.sum(), 1.0, atol=1e-6):
        raise ValueError("teleport must be a probability distribution")
    if method not in ("pull", "dpb"):
        raise ValueError(f"method must be 'pull' or 'dpb', got {method!r}")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")

    layout = None
    if method == "dpb":
        layout = BinLayout(
            graph, min(default_bin_width(machine), pow2_at_least(max(n, 1)))
        )
    degrees = graph.out_degrees()
    scores = teleport.astype(np.float32)  # start at the restart distribution
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contributions = compute_contributions(scores, degrees)
        if method == "pull":
            sums = _propagate_pull(graph, contributions)
        else:
            sums = _propagate_pb(graph, layout, contributions)
        new_scores = ((1.0 - damping) * teleport + damping * sums).astype(np.float32)
        if score_delta(new_scores, scores) < tolerance:
            scores = new_scores
            converged = True
            break
        scores = new_scores
    return PageRankResult(
        scores=scores, iterations=iterations, converged=converged, method=method
    )

