"""Weighted PageRank via the generalized-SpMV extension (paper Section IX).

On a weighted graph the random surfer follows edge ``(u, v)`` with
probability proportional to its weight, so the propagation becomes

    PR'(v) = (1-d)/n + d * sum over in-edges (w(u,v) / W(u)) * PR(u)

where ``W(u)`` is ``u``'s total outgoing weight.  This is SpMV on the
row-normalized weighted adjacency — precisely the "non-binary matrices"
case the paper says propagation blocking extends to: "the weights can be
read in lockstep with the adjacencies and applied directly to the
contributions during the binning phase."

Both strategies are provided (row-major pull, propagation-blocked push);
the PB path normalizes and bins in one pass, as the paper prescribes.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, score_delta
from repro.kernels.bins import BinLayout, default_bin_width
from repro.kernels.pagerank import PageRankResult
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.utils.validation import pow2_at_least

__all__ = ["weighted_pagerank", "weighted_out_strength"]


def weighted_out_strength(graph: CSRGraph) -> np.ndarray:
    """Total outgoing edge weight per vertex (``W(u)``), float64."""
    if graph.weights is None:
        raise ValueError("graph must carry edge weights")
    if graph.weights.size:
        if not np.isfinite(graph.weights).all():
            raise ValueError("edge weights must be finite")
        if float(graph.weights.min()) < 0:
            raise ValueError("edge weights must be non-negative")
    strength = np.zeros(graph.num_vertices, dtype=np.float64)
    np.add.at(strength, graph.edge_sources(), graph.weights.astype(np.float64))
    return strength


def weighted_pagerank(
    graph: CSRGraph,
    *,
    method: str = "dpb",
    damping: float = DAMPING,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    machine: MachineSpec = SIMULATED_MACHINE,
) -> PageRankResult:
    """PageRank with weight-proportional transition probabilities.

    ``method`` is ``"pull"`` (row-major gather) or ``"dpb"``
    (propagation-blocked: the per-edge normalized weights ride with the
    deterministic bin layout, computed once).  Identical results either
    way; vertices with zero outgoing weight drop their mass like the
    unweighted kernels drop dangling vertices.
    """
    if method not in ("pull", "dpb"):
        raise ValueError(f"method must be 'pull' or 'dpb', got {method!r}")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_vertices
    strength = weighted_out_strength(graph)
    sources = graph.edge_sources()
    # Per-edge transition probability w(u,v)/W(u), CSR order.
    with np.errstate(divide="ignore", invalid="ignore"):
        transition = np.where(
            strength[sources] > 0,
            graph.weights.astype(np.float64) / strength[sources],
            0.0,
        )

    layout = None
    binned_transition = None
    if method == "dpb":
        layout = BinLayout(
            graph, min(default_bin_width(machine), pow2_at_least(max(n, 1)))
        )
        binned_transition = transition[layout.order]

    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float32)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        values = scores.astype(np.float64)
        if method == "pull":
            sums = np.bincount(
                graph.targets, weights=transition * values[sources], minlength=n
            )
        else:
            sums = np.zeros(n, dtype=np.float64)
            contributions = binned_transition * values[sources[layout.order]]
            for b in range(layout.num_bins):
                lo, hi = int(layout.bounds[b]), int(layout.bounds[b + 1])
                if lo == hi:
                    continue
                start, stop = layout.bin_slice(b)
                sums[start:stop] += np.bincount(
                    layout.sorted_dst[lo:hi] - start,
                    weights=contributions[lo:hi],
                    minlength=stop - start,
                )
        new_scores = (base + damping * sums).astype(np.float32)
        if score_delta(new_scores, scores) < tolerance:
            scores = new_scores
            converged = True
            break
        scores = new_scores
    return PageRankResult(
        scores=scores, iterations=iterations, converged=converged, method=method
    )

