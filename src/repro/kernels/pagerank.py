"""Public PageRank API: method selection and the convergence driver.

The paper's evaluation times single iterations, but a real user wants
"PageRank until converged" with the right strategy chosen for them.
:func:`pagerank` provides that, including the runtime heuristic the paper
sketches in Section VI-C: the topological parameters that decide between
the pull baseline, CB, and DPB — the number of vertices relative to the
cache and the directed degree — "are easy to access and the decision to
use DPB or CB could be made dynamically at runtime".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, PageRankKernel, init_scores, score_delta
from repro.kernels.cache_block import CacheBlockedPageRank
from repro.kernels.propagation_blocking import (
    DeterministicPBPageRank,
    PropagationBlockingPageRank,
)
from repro.kernels.pull import PullPageRank
from repro.kernels.push import PushPageRank
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span
from repro.obs.trace import counter_sample, current_tracer

__all__ = ["KERNELS", "PageRankResult", "make_kernel", "select_method", "pagerank"]

def _compiled_pb(graph, machine=SIMULATED_MACHINE, **kwargs):
    """Lazy factory for ``pb-compiled`` (avoids importing repro.compiled
    unless the compiled tier is actually requested)."""
    from repro.compiled.kernels import CompiledPBPageRank

    return CompiledPBPageRank(graph, machine, **kwargs)


def _compiled_dpb(graph, machine=SIMULATED_MACHINE, **kwargs):
    """Lazy factory for ``dpb-compiled``."""
    from repro.compiled.kernels import CompiledDPBPageRank

    return CompiledDPBPageRank(graph, machine, **kwargs)


#: Registry of the measured implementation strategies, keyed by table name.
#: Values are the kernel class or an equivalent factory ``(graph, machine,
#: **kwargs) -> PageRankKernel``.  The ``*-compiled`` entries run the
#: compiled execution tier (:mod:`repro.compiled`): bit-identical scores
#: and traces to their oracles, requiring Numba or a C compiler (they fall
#: back to the oracle path with a warning when neither is available).
KERNELS: dict[str, object] = {
    "baseline": PullPageRank,
    "pull": PullPageRank,
    "push": PushPageRank,
    "cb": CacheBlockedPageRank,
    "pb": PropagationBlockingPageRank,
    "dpb": DeterministicPBPageRank,
    "pb-compiled": _compiled_pb,
    "dpb-compiled": _compiled_dpb,
}


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of a :func:`pagerank` call.

    Attributes
    ----------
    scores:
        Final PageRank vector (float32, sums to <= 1; dangling mass is
        dropped as in the GAP reference).
    iterations:
        Number of power iterations performed.
    converged:
        Whether the L1 delta fell below the tolerance before ``max_iterations``.
    method:
        Name of the strategy that actually ran (after "auto" resolution).
    deltas:
        L1 score change after each iteration — the convergence history
        recorded in run reports (:mod:`repro.obs.report`).
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    method: str
    deltas: tuple[float, ...] = ()


def select_method(graph: CSRGraph, machine: MachineSpec = SIMULATED_MACHINE) -> str:
    """The paper's dynamic strategy choice (Sections V-C and VI-C).

    * Vertex values fit in cache (``n <= c``): nothing to block — pull.
    * Otherwise blocking pays; between CB and DPB, propagation blocking
      wins when the graph is sparse enough.  From the models, CB-EL beats
      DPB only when ``r >= 2k + 2`` fails, i.e. for high degree relative
      to the block count, so choose DPB when ``k <= (r - 2) / 2``.
    """
    n = graph.num_vertices
    c = machine.cache_words
    if n <= c:
        return "baseline"
    from repro.graphs.partition import choose_block_width, num_blocks_for_width

    width = choose_block_width(n, c)
    r = num_blocks_for_width(n, width)
    k = graph.average_degree
    return "dpb" if k <= (r - 2) / 2 else "cb"


def make_kernel(
    graph: CSRGraph,
    method: str = "auto",
    machine: MachineSpec = SIMULATED_MACHINE,
    *,
    tier: str = "numpy",
    **kwargs,
) -> PageRankKernel:
    """Instantiate a kernel by name (``"auto"`` applies :func:`select_method`).

    ``tier="compiled"`` maps the (possibly auto-selected) method to its
    compiled variant where one exists (``pb``/``dpb`` →
    ``pb-compiled``/``dpb-compiled``; others run unchanged) — the CLI's
    ``--kernel-tier`` lands here.  Extra keyword arguments reach the
    kernel constructor (``bin_width`` for PB/DPB, ``block_width`` for CB).
    """
    if method == "auto":
        method = select_method(graph, machine)
    if tier != "numpy":
        from repro.compiled.kernels import resolve_method

        method = resolve_method(method, tier)
    if method not in KERNELS:
        raise KeyError(
            f"unknown method {method!r}; choose from {sorted(KERNELS)} or 'auto'"
        )
    return KERNELS[method](graph, machine, **kwargs)


def pagerank(
    graph: CSRGraph,
    *,
    method: str = "auto",
    damping: float = DAMPING,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
    machine: MachineSpec = SIMULATED_MACHINE,
    **kwargs,
) -> PageRankResult:
    """Compute PageRank scores, iterating to convergence.

    Parameters
    ----------
    graph:
        Input graph (CSR).  Directed graphs use out-edges for propagation.
    method:
        ``"auto"`` (default, the paper's runtime heuristic) or one of
        ``"pull"``/``"baseline"``, ``"push"``, ``"cb"``, ``"pb"``, ``"dpb"``.
    damping:
        The PageRank damping factor ``d`` (paper uses 0.85).
    tolerance:
        Stop when the L1 change of the score vector falls below this.
    max_iterations:
        Iteration cap.

    Every method returns identical scores (up to float32 rounding); they
    differ only in memory behaviour.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    kernel = make_kernel(graph, method, machine, **kwargs)
    scores = init_scores(graph.num_vertices)
    converged = False
    iterations = 0
    deltas: list[float] = []
    tracer = current_tracer()
    for iterations in range(1, max_iterations + 1):
        with span(f"iteration[{kernel.name}]"):
            new_scores = kernel.run(1, scores=scores, damping=damping)
            delta = score_delta(new_scores, scores)
        deltas.append(delta)
        if tracer is not None:
            # Solver counter tracks: the L1 residual and how many vertex
            # scores still moved this iteration.
            counter_sample("residual", {"residual": delta})
            counter_sample(
                "active_vertices",
                {"active": int(np.count_nonzero(new_scores != scores))},
            )
        scores = new_scores
        if delta < tolerance:
            converged = True
            break
    return PageRankResult(
        scores=scores,
        iterations=iterations,
        converged=converged,
        method=kernel.name,
        deltas=tuple(deltas),
    )
