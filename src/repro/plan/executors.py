"""Executor protocol: *how* a plan's cells run, as a pluggable seam.

:func:`repro.plan.executor.execute_plan` owns the plan-level concerns —
cache partition, checkpoint adapters, stats accounting, result fan-out —
and delegates the actual running of the cache-miss cells to an
:class:`Executor`.  Two implementations exist:

* :class:`LocalExecutor` — the historical in-process path: an optional
  shared-memory graph plane plus one resilient
  :func:`repro.parallel.sweep.run_cells` sweep (process pools, retries,
  timeouts, checkpoint/resume, fault injection).  This is the default
  and is bit-identical to the pre-protocol inline code: fingerprints,
  checkpoints, caches, events, and artifacts are unchanged.
* :class:`repro.cluster.DistributedExecutor` — a socket-based worker
  fleet (coordinator leases cells by fingerprint, workers write results
  through the shared :class:`repro.harness.cache.MeasurementCache`),
  registered lazily under the name ``"distributed"``.

The seam is deliberately narrow: an executor receives one
:class:`ExecutionRequest` — the miss cells in submission order plus the
sweep stack's knobs — and must return ``{cell.key: result}`` with the
same semantics :func:`~repro.parallel.sweep.run_cells` guarantees
(submission-order folding, :class:`~repro.parallel.resilience.
CellFailedError` raised only after every other cell had its chance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.log import get_logger
from repro.parallel.resilience import SweepStats, default_workers
from repro.parallel.sweep import SweepCell, run_cells

__all__ = [
    "ExecutionRequest",
    "Executor",
    "LocalExecutor",
    "EXECUTORS",
    "make_executor",
]

log = get_logger("plan.executors")


@dataclass
class ExecutionRequest:
    """Everything an executor needs to run one plan's miss cells.

    ``cells`` are in submission order; the returned dict must fold by
    that order (last duplicate key wins), exactly like
    :func:`repro.parallel.sweep.run_cells`.  ``checkpoint`` is the
    duck-typed recorder (``has``/``result_for``/``record``) the plan
    layer builds — it both resumes and write-backs into the cache.

    ``result_fingerprints`` maps each cell's *sweep* fingerprint
    (function + key + args) to the *content* fingerprint (function +
    args) its result is cached under; ``cache`` is the plan's
    content-addressed result store.  The local path ignores both (its
    cache write-back rides the checkpoint recorder); a distributed
    executor uses them so remote workers can write results straight
    into the shared cache directory.
    """

    cells: list[SweepCell]
    label: str = "plan"
    workers: int | None = None
    policy: Any = None
    fault_plan: Any = None
    checkpoint: Any = None
    stats: SweepStats | None = None
    shm: bool | None = None
    cache: Any = None
    result_fingerprints: dict[str, str] = field(default_factory=dict)


class Executor(ABC):
    """One way of running sweep cells.  Stateless across plans."""

    #: Registry name (``repro-pb``'s ``--executor`` vocabulary).
    name = "abstract"

    @abstractmethod
    def run(self, request: ExecutionRequest) -> dict[Any, Any]:
        """Run every cell of ``request`` and return ``{cell.key: result}``.

        Must raise :class:`repro.parallel.resilience.CellFailedError`
        when a cell exhausts its retries — after letting every other
        cell finish (whatever completed must already be checkpointed).
        """


def _pool_mode(workers: int | None, cells: int) -> bool:
    """Whether this sweep will actually run on a process pool.

    Mirrors the resilient engine's own resolution (``0`` = auto, ``None``
    / ``1`` = serial, capped by the cell count) so the executor can
    decide *before* dispatch whether the shared-memory graph plane will
    pay for itself — the serial path must never touch shm.
    """
    resolved = default_workers() if workers == 0 else (workers or 1)
    return min(resolved, cells) > 1


class LocalExecutor(Executor):
    """The in-process pool path, extracted verbatim from ``execute_plan``.

    In pool mode every distinct graph argument is published once into a
    :class:`~repro.parallel.shm.GraphStore` and cells ship
    :class:`~repro.parallel.shm.GraphRef` handles instead of pickled
    arrays — cell fingerprints, checkpoints, caches, and results are
    identical either way.  The cells then run through one
    :func:`repro.parallel.sweep.run_cells` call, inheriting the whole
    resilience stack.
    """

    name = "local"

    def run(self, request: ExecutionRequest) -> dict[Any, Any]:
        from repro.parallel.shm import GraphStore

        sweep_cells = request.cells
        label = request.label
        store = None
        if request.shm is not False and _pool_mode(
            request.workers, len(sweep_cells)
        ):
            try:
                store = GraphStore(label=label)
            except Exception as exc:  # noqa: BLE001 — no shm on this platform
                log.warning(
                    "%s: shared-memory graph plane unavailable (%s); "
                    "shipping graphs by value",
                    label,
                    exc,
                )
                store = None
        if store is not None:
            # Publish each distinct graph once; the sweep fingerprints
            # are unchanged (a ref hashes as its graph), so checkpoint
            # resume and fault plans line up with by-value runs.
            sweep_cells = [store.publish_cell(cell) for cell in sweep_cells]

        try:
            return run_cells(
                sweep_cells,
                workers=request.workers,
                label=label,
                policy=request.policy,
                fault_plan=request.fault_plan,
                checkpoint=request.checkpoint,
                stats=request.stats,
                affinity=True,
            )
        finally:
            if store is not None:
                store.close()


def _make_distributed(**kwargs: Any) -> Executor:
    from repro.cluster import DistributedExecutor

    return DistributedExecutor(**kwargs)


#: Executor factories by registry name.  ``"distributed"`` imports the
#: cluster package lazily so the plan layer stays import-light.
EXECUTORS: dict[str, Callable[..., Executor]] = {
    "local": LocalExecutor,
    "distributed": _make_distributed,
}


def make_executor(name: str, **kwargs: Any) -> Executor:
    """Instantiate a registered executor by name."""
    try:
        factory = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise ValueError(f"unknown executor {name!r} (known: {known})") from None
    return factory(**kwargs)
