"""Plan compiler: merge experiment specs into one deduplicated cell DAG.

:func:`compile_plan` walks every spec's requested cells, fingerprints
each by content, and keeps exactly one :class:`~repro.plan.spec.Cell`
per fingerprint.  The resulting :class:`CompiledPlan` records, for every
spec, which fingerprint satisfies each of its local keys — so after a
single execution every artifact can be assembled from the shared result
pool.  Compilation performs no simulation; it is cheap enough for the
``repro-pb plan`` subcommand to run it purely for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.plan.spec import Cell, ExperimentSpec

__all__ = ["PlanStats", "CompiledPlan", "compile_plan"]


@dataclass
class PlanStats:
    """Counters describing one compiled (and possibly executed) plan.

    ``as_dict()`` is the ``plan`` section of a run report
    (``docs/metrics_schema.md``, schema 1.3).  ``cache_hits`` /
    ``resumed`` / ``executed`` stay zero until
    :func:`repro.plan.executor.execute_plan` fills them in.
    """

    cells_requested: int = 0
    cells_unique: int = 0
    cache_hits: int = 0
    resumed: int = 0
    executed: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Requested over unique cells; > 1.0 means sharing paid off."""
        if self.cells_unique == 0:
            return 1.0
        return self.cells_requested / self.cells_unique

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells_requested": self.cells_requested,
            "cells_unique": self.cells_unique,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "executed": self.executed,
            "dedup_ratio": self.dedup_ratio,
        }


@dataclass
class CompiledPlan:
    """The deduplicated cell DAG behind a set of experiment specs.

    ``cells`` maps fingerprint to the unique cell (insertion order =
    first request order, which execution preserves); ``requests`` maps
    each spec name to its ``{local_key: fingerprint}`` resolution table;
    ``labels`` gives every unique cell a readable ``"spec:local_key"``
    name taken from its *first* requester (used as the sweep key, so
    span paths and checkpoint records stay human-readable).
    """

    specs: tuple[ExperimentSpec, ...]
    cells: dict[str, Cell]
    requests: dict[str, dict[Any, str]]
    labels: dict[str, str]
    stats: PlanStats = field(default_factory=PlanStats)

    @property
    def cells_requested(self) -> int:
        return self.stats.cells_requested

    @property
    def cells_unique(self) -> int:
        return self.stats.cells_unique

    @property
    def dedup_ratio(self) -> float:
        return self.stats.dedup_ratio

    def spec(self, name: str) -> ExperimentSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no spec named {name!r} in this plan")

    def summary_rows(self) -> list[list[Any]]:
        """Per-spec DAG summary: requested / owned / shared cell counts.

        A cell is *owned* by the spec that requested it first and
        *shared* for every later requester — so the owned column sums to
        ``cells_unique`` and requested sums to ``cells_requested``.
        """
        rows = []
        for spec in self.specs:
            fingerprints = self.requests[spec.name].values()
            owned = sum(
                1
                for fp in fingerprints
                if self.labels[fp].split(":", 1)[0] == spec.name
            )
            rows.append([spec.name, len(self.requests[spec.name]), owned,
                         len(self.requests[spec.name]) - owned])
        return rows


def compile_plan(specs: Iterable[ExperimentSpec]) -> CompiledPlan:
    """Merge ``specs`` into one deduplicated :class:`CompiledPlan`.

    Duplicate spec names are an error (the fan-out would be ambiguous);
    duplicate *cells* are the entire point and are merged silently.
    """
    specs = tuple(specs)
    seen_names: set[str] = set()
    cells: dict[str, Cell] = {}
    requests: dict[str, dict[Any, str]] = {}
    labels: dict[str, str] = {}
    requested = 0
    for spec in specs:
        if spec.name in seen_names:
            raise ValueError(f"duplicate spec name {spec.name!r} in plan")
        seen_names.add(spec.name)
        resolution: dict[Any, str] = {}
        for local_key, cell in spec.cells.items():
            fingerprint = cell.fingerprint()
            requested += 1
            if fingerprint not in cells:
                cells[fingerprint] = cell
                labels[fingerprint] = f"{spec.name}:{local_key}"
            resolution[local_key] = fingerprint
        requests[spec.name] = resolution
    stats = PlanStats(cells_requested=requested, cells_unique=len(cells))
    return CompiledPlan(
        specs=specs, cells=cells, requests=requests, labels=labels, stats=stats
    )
