"""Declarative experiment plans: specs -> deduplicated cell DAG -> results.

The paper's evaluation is one coherent grid — (graph x strategy x engine
x parameter) measurement cells feeding Tables I-III and Figures 3-11 —
and several artifacts request the *same* cells (figures 4-6, table 3 and
figure 3 all need the suite's baseline measurements).  This package makes
that sharing structural instead of ad hoc:

* :class:`~repro.plan.spec.Cell` — one fingerprinted, picklable
  measurement request (a module-level function plus plain-data
  arguments, identified by :func:`repro.utils.fingerprint.stable_digest`
  of its content, so equal work has equal identity no matter who asks);
* :class:`~repro.plan.spec.ExperimentSpec` — one artifact: the cells it
  needs (under artifact-local keys) plus a ``build`` function that turns
  the cell results into the artifact value;
* :func:`~repro.plan.compiler.compile_plan` — merges any set of specs
  into one deduplicated :class:`~repro.plan.compiler.CompiledPlan`
  (each unique cell appears once, with every requester recorded);
* :func:`~repro.plan.executor.execute_plan` — runs the compiled plan
  through the fault-tolerant sweep stack
  (:func:`repro.parallel.sweep.run_cells`: retries, checkpoints,
  process pools) exactly once per unique cell, warm-starting from an
  optional content-addressed result cache
  (:class:`repro.harness.cache.MeasurementCache`), and fans results
  back out to per-artifact views.
"""

from repro.plan.compiler import CompiledPlan, PlanStats, compile_plan
from repro.plan.executor import PlanResults, execute_plan
from repro.plan.executors import (
    ExecutionRequest,
    Executor,
    LocalExecutor,
    make_executor,
)
from repro.plan.spec import Cell, ExperimentSpec

__all__ = [
    "Cell",
    "ExperimentSpec",
    "CompiledPlan",
    "PlanStats",
    "compile_plan",
    "PlanResults",
    "execute_plan",
    "ExecutionRequest",
    "Executor",
    "LocalExecutor",
    "make_executor",
]
