"""Declarative experiment specs: cells and the artifacts built from them.

A :class:`Cell` is the unit of measurement work — a picklable
module-level function plus plain-data arguments — and its identity is
its *content* fingerprint (:func:`repro.utils.fingerprint.stable_digest`
over function, args, and kwargs).  Two specs that request the same
simulation therefore request the *same* cell, which is what lets the
compiler deduplicate across artifacts: figure 4's ``("urand",
"baseline")`` measurement and table III's are one cell, computed once.

An :class:`ExperimentSpec` declares one artifact: the cells it needs,
keyed by artifact-local names, and a ``build`` function mapping the
resolved ``{local_key: result}`` dict to the artifact value (a
``FigureResult``, ``TableResult``, or anything else).  ``build`` runs in
the parent process after execution, so unlike cell functions it may be a
closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.utils.fingerprint import stable_digest

__all__ = ["Cell", "ExperimentSpec"]


@dataclass(frozen=True)
class Cell:
    """One fingerprinted measurement request.

    Attributes
    ----------
    fn:
        Module-level callable executed (possibly in a worker process, so
        it must pickle by reference — no lambdas or closures).
    args / kwargs:
        Plain-data arguments forwarded to ``fn``.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Content identity of this cell: function + arguments, no key.

        Deliberately excludes any requester-side name (unlike
        :func:`repro.utils.fingerprint.cell_fingerprint`, which covers
        the sweep key): the same work requested by different artifacts
        must share one fingerprint for cross-artifact deduplication and
        for content-addressed cache lookups to work.
        """
        return stable_digest((self.fn, tuple(self.args), dict(self.kwargs)))


@dataclass(frozen=True)
class ExperimentSpec:
    """One artifact: the cells it needs plus how to assemble the result.

    Attributes
    ----------
    name:
        Artifact identifier, unique within a plan (``"fig4"``,
        ``"table3"``, ...).
    cells:
        ``{local_key: Cell}`` — the measurements this artifact needs,
        under names meaningful to ``build`` (e.g. ``("urand", "pb")``).
        May be empty for artifacts that need no simulation (Table I).
    build:
        Called with ``{local_key: result}`` once every cell is resolved;
        returns the artifact value.  Runs in-process (closures are fine).
    """

    name: str
    cells: Mapping[Any, Cell]
    build: Callable[[Mapping[Any, Any]], Any]
