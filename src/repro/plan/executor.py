"""Plan executor: run a compiled plan once, fan results back to artifacts.

:func:`execute_plan` is the single choke point through which every
figure, table, bench, and ``reproduce`` run now performs measurement:

1. **cache partition** — each unique cell's content fingerprint is
   looked up in an optional result cache (duck-typed ``get``/``put``; in
   practice :class:`repro.harness.cache.MeasurementCache`).  Hits skip
   execution entirely — a warm rerun of the whole suite executes zero
   cells.
2. **one executor dispatch** — the misses run through a pluggable
   :class:`~repro.plan.executors.Executor` (default
   :class:`~repro.plan.executors.LocalExecutor`: a single
   :func:`repro.parallel.sweep.run_cells` sweep inheriting the whole
   PR-3/PR-4 stack — process pools, retry with backoff, per-cell
   timeouts, checkpoint/resume, fault injection; alternatively
   :class:`repro.cluster.DistributedExecutor`, which leases the same
   cells to a socket-connected worker fleet).  Each unique cell
   executes exactly once per plan, keyed by its readable
   first-requester label.
3. **cache write-back** — completed (and checkpoint-resumed) cells are
   written into the cache as they finish, so even an interrupted run
   warms future ones.
4. **fan-out** — :meth:`PlanResults.artifact` resolves any spec's local
   keys against the shared result pool and calls its ``build``.

The executor deliberately takes the cache as a duck-typed parameter
instead of importing ``repro.harness.cache`` — the harness imports this
package to declare its specs, and the plan layer must not import the
harness back.
"""

from __future__ import annotations

from typing import Any

from repro.obs import events as _events
from repro.obs.log import get_logger
from repro.obs.spans import current_recorder, span
from repro.parallel.resilience import SweepOptions
from repro.parallel.sweep import SweepCell
from repro.plan.compiler import CompiledPlan, PlanStats
from repro.plan.executors import ExecutionRequest, Executor, LocalExecutor
from repro.utils.fingerprint import cell_fingerprint

__all__ = ["PlanResults", "execute_plan"]

log = get_logger("plan.executor")


class PlanResults:
    """Resolved results of one plan execution, viewable per artifact."""

    def __init__(
        self, plan: CompiledPlan, results: dict[str, Any], stats: PlanStats
    ) -> None:
        self.plan = plan
        self.results = results  # fingerprint -> cell result
        self.stats = stats

    def values_for(self, name: str) -> dict[Any, Any]:
        """``{local_key: result}`` for the spec called ``name``."""
        return {
            local_key: self.results[fingerprint]
            for local_key, fingerprint in self.plan.requests[name].items()
        }

    def artifact(self, name: str) -> Any:
        """Build and return the artifact of the spec called ``name``."""
        return self.plan.spec(name).build(self.values_for(name))


class _CacheRecorder:
    """Checkpoint adapter that also write-backs results into the cache.

    The resilient engine talks to one duck-typed checkpoint
    (``has``/``result_for``/``record``) keyed by *sweep* fingerprints
    (function + key + args).  This adapter forwards those calls to the
    real checkpoint (when ``--resume`` is active) and mirrors every
    completed or resumed result into the content-addressed cache under
    the cell's *plan* fingerprint (function + args, no key).
    """

    def __init__(self, checkpoint, cache, plan_fp_for: dict[str, str]) -> None:
        self._checkpoint = checkpoint
        self._cache = cache
        self._plan_fp_for = plan_fp_for  # sweep fingerprint -> plan fingerprint

    def has(self, fingerprint: str) -> bool:
        return self._checkpoint is not None and self._checkpoint.has(fingerprint)

    def result_for(self, fingerprint: str):
        record = self._checkpoint.result_for(fingerprint)
        if self._cache is not None:
            self._cache.put(
                self._plan_fp_for[fingerprint], record.result, record.seconds
            )
        return record

    def record(self, fingerprint: str, key: Any, result: Any, seconds: float) -> None:
        if self._checkpoint is not None:
            self._checkpoint.record(fingerprint, key, result, seconds)
        if self._cache is not None:
            self._cache.put(self._plan_fp_for[fingerprint], result, seconds)


def execute_plan(
    plan: CompiledPlan,
    *,
    workers: int | None = None,
    options: SweepOptions | None = None,
    cache=None,
    label: str = "plan",
    shm: bool | None = None,
    executor: Executor | None = None,
) -> PlanResults:
    """Execute every unique cell of ``plan`` once and return the results.

    ``workers``/``options`` carry the sweep stack's knobs exactly as
    :func:`repro.parallel.sweep.run_cells` understands them
    (``options.workers`` wins over ``workers`` when both are given, so
    the reproduce driver's ``--workers`` flag applies uniformly).
    ``cache`` is an optional content-addressed result store with
    ``get(fingerprint) -> entry | None`` (entry carries ``result`` and
    ``seconds``) and ``put(fingerprint, result, seconds)``.

    ``shm`` (``options.shm`` wins when set) controls the shared-memory
    graph plane: in pool mode every distinct graph argument is published
    once into a :class:`~repro.parallel.shm.GraphStore` and cells ship
    :class:`~repro.parallel.shm.GraphRef` handles instead of pickled
    arrays — cell fingerprints, checkpoints, caches, and results are
    identical either way.  The default (``None``, auto) enables it
    exactly when a pool will run; the serial path never touches shm.
    Pool dispatch also groups cells by graph into affinity lanes so each
    graph is materialized on as few workers as possible.

    ``executor`` selects *how* the cache-miss cells run: ``None`` (the
    default) uses :class:`~repro.plan.executors.LocalExecutor`, the
    historical in-process pool path; a
    :class:`repro.cluster.DistributedExecutor` leases the same cells to
    a socket-connected worker fleet instead.  Fingerprints, checkpoint
    lines, cache entries, and artifacts are identical across executors.

    A failing cell propagates :class:`repro.parallel.resilience.
    CellFailedError` after the other cells finish; everything completed
    by then has already been checkpointed and cached.
    """
    stats = plan.stats
    options = options or SweepOptions()
    recorder = current_recorder()
    with span(f"plan[{label}]") as plan_span:
        base = getattr(plan_span, "path", None)
        prefix = f"{base}/" if base else ""

        _events.emit(
            "plan_started",
            cell=label,
            cells_unique=plan.cells_unique,
            cells_requested=plan.cells_requested,
            workers=options.workers if options.workers is not None else workers,
        )
        results: dict[str, Any] = {}
        misses: list[str] = []
        for fingerprint in plan.cells:
            entry = cache.get(fingerprint) if cache is not None else None
            if entry is not None:
                results[fingerprint] = entry.result
                stats.cache_hits += 1
                if recorder is not None:
                    recorder.record(
                        f"{prefix}cache_hit[{plan.labels[fingerprint]}]",
                        entry.seconds,
                    )
                hit_payload: dict[str, Any] = {"seconds": entry.seconds}
                gail = _events.gail_payload(entry.result)
                if gail is not None:
                    hit_payload["gail"] = gail
                _events.emit(
                    "cache_hit",
                    cell=plan.labels[fingerprint],
                    fingerprint=fingerprint,
                    **hit_payload,
                )
            else:
                misses.append(fingerprint)

        if misses:
            sweep_cells = []
            plan_fp_for: dict[str, str] = {}
            for fingerprint in misses:
                cell = plan.cells[fingerprint]
                key = plan.labels[fingerprint]
                sweep_cells.append(
                    SweepCell(key=key, fn=cell.fn, args=cell.args, kwargs=cell.kwargs)
                )
                plan_fp_for[
                    cell_fingerprint(cell.fn, key, cell.args, cell.kwargs)
                ] = fingerprint

            effective_workers = (
                options.workers if options.workers is not None else workers
            )
            use_shm = options.shm if options.shm is not None else shm

            checkpoint = None
            if options.checkpoint_dir:
                from repro.harness.checkpoint import open_checkpoint

                checkpoint = open_checkpoint(options.checkpoint_dir, label)
            sweep_stats = options.stats
            if sweep_stats is None:
                from repro.parallel.resilience import SweepStats

                sweep_stats = SweepStats()
            completed_before = sweep_stats.completed
            resumed_before = sweep_stats.resumed

            request = ExecutionRequest(
                cells=sweep_cells,
                label=label,
                workers=effective_workers,
                policy=options.policy,
                fault_plan=options.fault_plan,
                checkpoint=_CacheRecorder(checkpoint, cache, plan_fp_for)
                if (checkpoint is not None or cache is not None)
                else None,
                stats=sweep_stats,
                shm=use_shm,
                cache=cache,
                result_fingerprints=plan_fp_for,
            )
            try:
                outcomes = (executor or LocalExecutor()).run(request)
            finally:
                # Count execution even when a cell failed permanently: the
                # run report's plan section must reflect the work that DID
                # happen (and was checkpointed/cached) before the abort.
                stats.executed += sweep_stats.completed - completed_before
                stats.resumed += sweep_stats.resumed - resumed_before
            for fingerprint in misses:
                results[fingerprint] = outcomes[plan.labels[fingerprint]]

    return PlanResults(plan, results, stats)
