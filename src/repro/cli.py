"""Command-line interface: ``repro-pb``.

A thin front end over the library for the common workflows:

* ``repro-pb suite`` — regenerate Table I (the scaled graph suite);
* ``repro-pb pagerank --graph urand --method auto`` — compute PageRank;
* ``repro-pb measure --graph urand --method dpb`` — simulate one
  iteration's DRAM traffic and modelled time;
* ``repro-pb compare --graph urand`` — all four strategies side by side;
* ``repro-pb model --vertices 131072 --degree 16`` — query the Section V
  analytic models for a planned workload;
* ``repro-pb report before.json after.json`` — diff two run reports and
  flag traffic/time regressions.

Every subcommand prints an aligned text table to stdout; ``measure``,
``pagerank`` and ``compare`` additionally emit machine-readable
schema-versioned JSON run reports via ``--json`` / ``--report-dir``
(schema: ``docs/metrics_schema.md``).  The CLI only *reads* graphs it
generates itself (deterministic under ``--seed``), so it is safe to run
anywhere.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.graphs import SUITE_NAMES, load_graph, load_suite
from repro.graphs.partition import choose_block_width, num_blocks_for_width
from repro.harness import run_experiment, table1
from repro.kernels import KERNELS, pagerank
from repro.models import (
    ModelParams,
    SIMULATED_MACHINE,
    paper_cb_edgelist_reads,
    paper_pb_reads,
    paper_pb_writes,
    paper_pull_reads,
)
from repro.obs import (
    Convergence,
    GraphMeta,
    RunConfig,
    RunReport,
    diff_report_sets,
    load_reports,
    recording,
    report_from_measurement,
    save_reports,
)
from repro.utils import format_table

__all__ = ["main", "build_parser"]

ENGINE_NAMES = ("flru", "set", "plru", "dmap")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-pb",
        description=(
            "Propagation-blocking PageRank reproduction "
            "(Beamer, Asanović, Patterson — IPDPS 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="regenerate the Table I graph suite")
    p_suite.add_argument("--scale", type=float, default=1.0)
    p_suite.add_argument("--seed", type=int, default=42)

    def add_graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--graph", choices=SUITE_NAMES, default="urand")
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seed", type=int, default=42)

    def add_report_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json",
            metavar="PATH",
            help="write a machine-readable run report (docs/metrics_schema.md)",
        )
        p.add_argument(
            "--report-dir",
            metavar="DIR",
            help="write one report file per run into DIR",
        )

    p_pr = sub.add_parser("pagerank", help="compute PageRank on a suite graph")
    add_graph_args(p_pr)
    p_pr.add_argument("--method", choices=[*sorted(KERNELS), "auto"], default="auto")
    p_pr.add_argument("--tolerance", type=float, default=1e-6)
    p_pr.add_argument("--max-iterations", type=int, default=100)
    p_pr.add_argument("--top", type=int, default=5, help="print the top-N vertices")
    add_report_args(p_pr)

    p_measure = sub.add_parser(
        "measure", help="simulate one iteration's memory traffic"
    )
    add_graph_args(p_measure)
    p_measure.add_argument(
        "--method", choices=sorted(KERNELS), default="dpb"
    )
    p_measure.add_argument("--engine", choices=ENGINE_NAMES, default="flru")
    add_report_args(p_measure)

    p_compare = sub.add_parser("compare", help="all strategies on one graph")
    add_graph_args(p_compare)
    p_compare.add_argument("--engine", choices=ENGINE_NAMES, default="flru")
    add_report_args(p_compare)

    p_model = sub.add_parser("model", help="query the Section V analytic models")
    p_model.add_argument("--vertices", type=int, required=True)
    p_model.add_argument("--degree", type=float, required=True)

    p_describe = sub.add_parser(
        "describe", help="characterize a graph and recommend a strategy"
    )
    add_graph_args(p_describe)

    p_report = sub.add_parser(
        "report", help="diff two run-report files and flag regressions"
    )
    p_report.add_argument("before", help="report file of the reference run")
    p_report.add_argument("after", help="report file of the candidate run")
    p_report.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative growth on any metric that counts as a regression "
        "(default 0.05 = 5%%)",
    )

    return parser


def _write_reports(args: argparse.Namespace, reports: list[RunReport]) -> None:
    """Honour ``--json`` / ``--report-dir`` for the run(s) just performed."""
    if args.json:
        save_reports(reports, args.json)
        print(f"\n[report written to {args.json}]")
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
        for report in reports:
            name = f"{report.kind}_{report.graph.name}_{report.config.method}.json"
            path = os.path.join(args.report_dir, name)
            report.save(path)
            print(f"[report written to {path}]")


def _cmd_suite(args: argparse.Namespace) -> int:
    graphs = load_suite(scale=args.scale, seed=args.seed)
    print(table1(graphs).render())
    return 0


def _cmd_pagerank(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    with recording() as rec:
        result = pagerank(
            graph,
            method=args.method,
            tolerance=args.tolerance,
            max_iterations=args.max_iterations,
        )
    status = "converged" if result.converged else "iteration cap reached"
    print(
        f"{args.graph}: n={graph.num_vertices} m={graph.num_edges} "
        f"method={result.method} iterations={result.iterations} ({status})"
    )
    top = np.argsort(result.scores)[::-1][: max(args.top, 0)]
    rows = [[int(v), float(result.scores[v])] for v in top]
    print(format_table(["vertex", "score"], rows, title=f"top {len(rows)} vertices"))
    report = RunReport(
        kind="pagerank",
        graph=GraphMeta(
            name=args.graph,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            scale=args.scale,
            seed=args.seed,
        ),
        config=RunConfig(
            method=result.method,
            num_iterations=result.iterations,
            options={"requested_method": args.method},
        ),
        convergence=Convergence(
            iterations=result.iterations,
            converged=result.converged,
            tolerance=args.tolerance,
            deltas=result.deltas,
        ),
        wall_spans=rec.as_dict(),
    )
    _write_reports(args, [report])
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    with recording() as rec:
        m = run_experiment(graph, args.method, graph_name=args.graph, engine=args.engine)
    rows = [
        ["DRAM reads (lines)", m.reads],
        ["DRAM writes (lines)", m.writes],
        ["requests / edge", round(m.gail().requests_per_edge, 4)],
        ["instructions (M)", round(m.instructions / 1e6, 2)],
        ["modelled time (ms)", round(m.seconds * 1e3, 4)],
        ["bottleneck", m.time.bottleneck],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.method} on {args.graph} (one iteration, simulated)",
        )
    )
    report = report_from_measurement(
        m,
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        wall_spans=rec.as_dict(),
    )
    _write_reports(args, [report])
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    rows = []
    reports = []
    baseline = None
    for method in ("baseline", "cb", "pb", "dpb"):
        with recording() as rec:
            m = run_experiment(graph, method, graph_name=args.graph, engine=args.engine)
        reports.append(
            report_from_measurement(
                m,
                scale=args.scale,
                seed=args.seed,
                engine=args.engine,
                wall_spans=rec.as_dict(),
            )
        )
        if baseline is None:
            baseline = m
        rows.append(
            [
                method,
                m.reads,
                m.writes,
                round(m.gail().requests_per_edge, 3),
                round(m.communication_reduction_over(baseline), 2),
                round(m.speedup_over(baseline), 2),
            ]
        )
    print(
        format_table(
            ["method", "reads", "writes", "req/edge", "comm reduction", "speedup"],
            rows,
            title=f"strategy comparison on {args.graph} "
            f"(n={graph.num_vertices}, m={graph.num_edges})",
        )
    )
    _write_reports(args, reports)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        before = load_reports(args.before)
        after = load_reports(args.after)
    except (OSError, ValueError) as exc:
        print(f"repro-pb report: error: {exc}", file=sys.stderr)
        return 2
    diff = diff_report_sets(before, after, threshold=args.threshold)
    rows = [
        [
            d.key,
            d.metric,
            f"{d.before:g}",
            f"{d.after:g}",
            f"{d.ratio:.3f}",
            d.status,
        ]
        for d in diff.deltas
    ]
    print(
        format_table(
            ["run", "metric", "before", "after", "after/before", "status"],
            rows,
            title=f"report diff (threshold {args.threshold:.0%})",
        )
    )
    for key in diff.unmatched_before:
        print(f"warning: {key} present only in {args.before}")
    for key in diff.unmatched_after:
        print(f"warning: {key} present only in {args.after}")
    if not diff.deltas:
        print("warning: no comparable runs between the two files")
    regressions = diff.regressions
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
        for d in regressions:
            print(f"  {d.key} {d.metric}: {d.before:g} -> {d.after:g} (x{d.ratio:.3f})")
        return 1
    print("\nno regressions")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    machine = SIMULATED_MACHINE
    p = ModelParams(
        n=args.vertices,
        k=args.degree,
        b=machine.words_per_line,
        c=machine.cache_words,
    )
    width = choose_block_width(args.vertices, machine.cache_words)
    r = num_blocks_for_width(args.vertices, width)
    m = p.m
    rows = [
        ["pull", round((paper_pull_reads(p) + p.n / p.b) / m, 4)],
        ["cb (edge list)", round((paper_cb_edgelist_reads(p, r) + p.n / p.b) / m, 4)],
        ["dpb", round((paper_pb_reads(p) + paper_pb_writes(p)) / m, 4)],
    ]
    print(
        format_table(
            ["strategy", "modelled requests/edge"],
            rows,
            title=(
                f"Section V models: n={args.vertices}, k={args.degree}, "
                f"b={p.b}, c={p.c}, r={r}"
            ),
        )
    )
    best = min(rows, key=lambda row: row[1])
    print(f"\npredicted winner: {best[0]}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.graphs.analysis import describe

    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    profile = describe(graph)
    rows = [
        ["vertices", profile.num_vertices],
        ["edges", profile.num_edges],
        ["avg directed degree", round(profile.average_degree, 2)],
        ["max out-degree", profile.max_out_degree],
        ["degree skew (max/mean)", round(profile.degree_skew, 1)],
        ["vertices / cache words (n/c)", round(profile.vertex_to_cache_ratio, 2)],
        ["mean label distance", round(profile.mean_label_distance, 1)],
        ["estimated gather hit rate", round(profile.estimated_gather_hit_rate, 3)],
        ["low locality?", "yes" if profile.is_low_locality() else "no"],
        ["recommended method", profile.recommended_method],
    ]
    print(format_table(["property", "value"], rows, title=f"profile of {args.graph}"))
    return 0


_COMMANDS = {
    "suite": _cmd_suite,
    "pagerank": _cmd_pagerank,
    "measure": _cmd_measure,
    "compare": _cmd_compare,
    "model": _cmd_model,
    "describe": _cmd_describe,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
