"""Command-line interface: ``repro-pb``.

A thin front end over the library for the common workflows:

* ``repro-pb suite`` — regenerate Table I (the scaled graph suite);
* ``repro-pb pagerank --graph urand --method auto`` — compute PageRank;
* ``repro-pb measure --graph urand --method dpb`` — simulate one
  iteration's DRAM traffic and modelled time;
* ``repro-pb compare --graph urand`` — all four strategies side by side;
* ``repro-pb model --vertices 131072 --degree 16`` — query the Section V
  analytic models for a planned workload;
* ``repro-pb report before.json after.json`` — diff two run reports and
  flag traffic/time regressions;
* ``repro-pb report --drift run.json`` — check the embedded
  model-vs-simulation drift records against a threshold;
* ``repro-pb report --summary run.json`` — print the GAIL per-edge
  decomposition (requests / reads / writes / instructions / seconds per
  edge) of every measurement carrying simulated counters;
* ``repro-pb bench --check`` — the bench-regression sentinel: compare
  fresh benchmark numbers against the committed ``BENCH_*.json``
  baselines with noise tolerances and exit nonzero on regression;
* ``repro-pb plan`` — compile the reproduction's experiment specs into
  their deduplicated cell DAG and print it (cell counts per artifact,
  dedup ratio, cache hits) without executing anything;
* ``repro-pb serve --seeds 0,5 --seeds 17`` — answer personalized-
  PageRank queries through the batched query layer
  (:mod:`repro.serve`: request coalescing + content-addressed result
  cache);
* ``repro-pb loadgen --queries 200 --max-batch 16`` — replay a seeded
  query stream against the serve layer and report p50/p99 latency,
  throughput, and the warm-cache hit rate;
* ``repro-pb reproduce --resume ckpt/`` — regenerate every table and
  figure as one deduplicated plan with fault-tolerant, checkpointed,
  cacheable sweeps (forwards to :mod:`repro.harness.reproduce`);
* ``repro-pb worker --connect HOST:PORT`` — join a ``--distribute``
  run (``plan --execute`` or ``reproduce``) as a fleet worker: lease
  cells from the coordinator, write results into the shared
  measurement cache (:mod:`repro.cluster`, ``docs/distributed.md``).

Every subcommand prints an aligned text table to stdout; ``measure``,
``pagerank`` and ``compare`` additionally emit machine-readable
schema-versioned JSON run reports via ``--json`` / ``--report-dir``
(schema: ``docs/metrics_schema.md``), a Chrome-trace/Perfetto event
timeline via ``--trace out.json``, and (``measure``/``compare``)
histogram/series metrics in the report via ``--metrics``.  ``-v``/``-q``
control logging on every subcommand.  The CLI only *reads* graphs it
generates itself (deterministic under ``--seed``), so it is safe to run
anywhere.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import ExitStack

import numpy as np

from repro.graphs import SUITE_NAMES, load_graph, load_suite
from repro.graphs.partition import choose_block_width, num_blocks_for_width
from repro.harness import run_experiment, table1
from repro.kernels import KERNELS, pagerank
from repro.memsim import DEFAULT_ENGINE, ENGINES
from repro.models import (
    ModelParams,
    SIMULATED_MACHINE,
    paper_cb_edgelist_reads,
    paper_pb_reads,
    paper_pb_writes,
    paper_pull_reads,
)
from repro.obs import (
    DEFAULT_DRIFT_THRESHOLD,
    Convergence,
    DriftSummary,
    GraphMeta,
    RunConfig,
    RunReport,
    collecting,
    configure_logging,
    diff_report_sets,
    load_reports,
    recording,
    report_from_measurement,
    save_reports,
    tracing,
)
from repro.utils import format_table

__all__ = ["main", "build_parser"]

ENGINE_NAMES = tuple(ENGINES)


def _package_version() -> str:
    """Version string for ``--version``: installed distribution metadata,
    falling back to the source tree's ``pyproject.toml`` (the usual case
    when running uninstalled via ``PYTHONPATH=src``)."""
    import importlib.metadata

    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        pass
    import re

    pyproject = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "pyproject.toml",
    )
    try:
        with open(pyproject, encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return "unknown"
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return f"{match.group(1)}+src" if match else "unknown"


def _logging_parent() -> argparse.ArgumentParser:
    """``-v``/``-q`` — shared by every subcommand."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v progress, -vv debug)",
    )
    p.add_argument("-q", "--quiet", action="count", default=0, help="errors only")
    return p


def _graph_parent() -> argparse.ArgumentParser:
    """``--graph``/``--scale``/``--seed`` — one deterministic suite graph."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--graph", choices=SUITE_NAMES, default="urand")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=42)
    return p


def _engine_parent() -> argparse.ArgumentParser:
    """``--engine`` — the memory-simulation engine."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cache engine for simulated traffic "
        f"(default: {DEFAULT_ENGINE}; 'flru' is the per-access oracle)",
    )
    return p


def _tier_parent() -> argparse.ArgumentParser:
    """``--kernel-tier`` — oracle vs compiled kernel implementations."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--kernel-tier",
        # Literal choices keep repro.compiled un-imported until requested;
        # kept in sync with repro.compiled.kernels.KERNEL_TIERS by
        # tests/compiled/test_cli_tier.py.
        choices=("numpy", "compiled"),
        default="numpy",
        help="kernel implementation tier (default: numpy, the differential "
        "oracles); 'compiled' runs pb/dpb through the compiled tier — "
        "bit-identical results, see docs/performance.md",
    )
    return p


def _report_parent() -> argparse.ArgumentParser:
    """``--json``/``--report-dir``/``--trace`` — machine-readable outputs."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--json",
        metavar="PATH",
        help="write a machine-readable run report (docs/metrics_schema.md)",
    )
    p.add_argument(
        "--report-dir",
        metavar="DIR",
        help="write one report file per run into DIR",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record a Chrome-trace/Perfetto event timeline to PATH",
    )
    return p


def _metrics_parent() -> argparse.ArgumentParser:
    """``--metrics`` — histogram/series collection into the report."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect histogram/series metrics into the report "
        "(reuse distance, bin occupancy, per-iteration miss rate)",
    )
    return p


def _serve_parent() -> argparse.ArgumentParser:
    """Serve-layer knobs shared by ``serve`` and ``loadgen``."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--method",
        choices=("pull", "dpb"),
        default="dpb",
        help="personalized-PageRank propagation strategy (default: dpb)",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="how long the first request of a batch waits for company "
        "(default: 0.002)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="maximum queries coalesced into one multi-source kernel run "
        "(default: 16)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache directory (default: no cache)",
    )
    p.add_argument("--tolerance", type=float, default=1e-8)
    p.add_argument(
        "--top", type=int, default=5, help="top-k vertices per answer"
    )
    return p


def _fleet_parent() -> argparse.ArgumentParser:
    """``--distribute``/``--bind``/``--lease-timeout`` — the worker fleet."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--distribute",
        type=int,
        default=None,
        metavar="N",
        help="lease cells to a socket worker fleet instead of the "
        "in-process pool: spawn N local worker processes (0 = spawn "
        "none; attach external ones with `repro-pb worker --connect`)",
    )
    p.add_argument(
        "--bind",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help="with --distribute: coordinator listen address (default "
        "127.0.0.1:0 — loopback, ephemeral port; bind wider only on a "
        "network that shares the cache filesystem, see "
        "docs/distributed.md)",
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="with --distribute: how long a silent worker may hold a "
        "cell before the lease expires and the cell is re-leased "
        "(default 30)",
    )
    return p


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-pb",
        description=(
            "Propagation-blocking PageRank reproduction "
            "(Beamer, Asanović, Patterson — IPDPS 2017)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    # Option groups shared across subcommands are argparse *parents*:
    # declared once, inherited by every subcommand that needs them
    # (``repro-pb measure -v --graph web --engine flru --json r.json``).
    common = _logging_parent()
    graph = _graph_parent()
    engine = _engine_parent()
    tier = _tier_parent()
    report = _report_parent()
    metrics = _metrics_parent()
    serve = _serve_parent()
    fleet = _fleet_parent()

    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, *parents, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[common, *parents], **kwargs)

    p_suite = add_parser("suite", help="regenerate the Table I graph suite")
    p_suite.add_argument("--scale", type=float, default=1.0)
    p_suite.add_argument("--seed", type=int, default=42)

    p_pr = add_parser(
        "pagerank",
        graph,
        engine,
        tier,
        report,
        help="compute PageRank on a suite graph",
    )
    p_pr.add_argument(
        "--method",
        "--strategy",
        choices=[*sorted(KERNELS), "auto"],
        default="auto",
    )
    p_pr.add_argument("--tolerance", type=float, default=1e-6)
    p_pr.add_argument("--max-iterations", type=int, default=100)
    p_pr.add_argument("--top", type=int, default=5, help="print the top-N vertices")
    p_pr.add_argument(
        "--measure",
        action="store_true",
        help="also simulate one iteration's DRAM traffic on --engine "
        "after the solve",
    )

    p_measure = add_parser(
        "measure",
        graph,
        engine,
        tier,
        report,
        metrics,
        help="simulate one iteration's memory traffic",
    )
    p_measure.add_argument(
        "--method", "--strategy", choices=sorted(KERNELS), default="dpb"
    )
    p_measure.add_argument("--iterations", type=int, default=1)

    p_compare = add_parser(
        "compare",
        graph,
        engine,
        tier,
        report,
        metrics,
        help="all strategies on one graph",
    )

    p_model = add_parser("model", help="query the Section V analytic models")
    p_model.add_argument("--vertices", type=int, required=True)
    p_model.add_argument("--degree", type=float, required=True)

    p_describe = add_parser(
        "describe", graph, help="characterize a graph and recommend a strategy"
    )

    from repro.harness.reproduce import ARTIFACTS

    p_plan = add_parser(
        "plan",
        engine,
        fleet,
        help="compile the reproduction's cell DAG and print it "
        "(no simulation runs)",
    )
    p_plan.add_argument("--scale", type=float, default=1.0)
    p_plan.add_argument("--seed", type=int, default=42)
    p_plan.add_argument(
        "--only",
        nargs="*",
        choices=ARTIFACTS,
        default=None,
        help="compile a subset of artifact ids (default: all of them)",
    )
    p_plan.add_argument(
        "--quick", action="store_true", help="quarter-scale suite, like reproduce"
    )
    p_plan.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="also count how many cells an existing measurement cache "
        "directory would satisfy (with --execute: warm this cache)",
    )
    p_plan.add_argument(
        "--execute",
        action="store_true",
        help="execute the compiled plan's cells (typically with --cache "
        "to warm it) with live fleet progress instead of only printing "
        "the DAG",
    )
    p_plan.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-parallel workers for --execute (1 = serial, "
        "0 = one per usable CPU)",
    )
    p_plan.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="with --execute: shared-memory graph plane for pooled "
        "sweeps (default: auto — on whenever a process pool runs; "
        "--no-shm ships graphs by value; outputs are byte-identical "
        "either way)",
    )
    p_plan.add_argument(
        "--trace",
        metavar="PATH",
        help="with --execute: write the merged fleet Chrome trace "
        "(per-worker tracks) to PATH",
    )
    p_plan.add_argument(
        "--progress",
        choices=("auto", "live", "plain", "off"),
        default="auto",
        help="with --execute: progress rendering (auto = live on a TTY, "
        "plain lines otherwise; -q implies off)",
    )

    p_worker = add_parser(
        "worker",
        help="join a distributed plan run as a fleet worker (dial the "
        "coordinator a --distribute run is listening on)",
    )
    p_worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="coordinator address, as printed by the --distribute run "
        "(or fixed with its --bind)",
    )
    p_worker.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="override the coordinator's advertised shared cache "
        "directory (needed when the shared filesystem mounts at a "
        "different path on this host)",
    )
    p_worker.add_argument(
        "--name",
        default=None,
        help="worker name in fleet telemetry (default: pid<PID>)",
    )
    p_worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="leave when the coordinator has had no work for this long "
        "(default: stay until the coordinator says shutdown)",
    )

    p_serve = add_parser(
        "serve",
        graph,
        tier,
        serve,
        help="answer personalized-PageRank queries through the batched "
        "query layer (coalescing + result cache)",
    )
    p_serve.add_argument(
        "--seeds",
        action="append",
        metavar="IDS",
        default=None,
        help="one query as comma-separated seed vertex ids (repeatable, "
        "e.g. --seeds 0,5 --seeds 17); default: 8 generated queries",
    )
    p_serve.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a kind='serve' run report with the server's counter "
        "snapshot (docs/metrics_schema.md)",
    )

    p_loadgen = add_parser(
        "loadgen",
        graph,
        tier,
        serve,
        help="replay a seeded query stream against the serve layer and "
        "report the latency/throughput distribution",
    )
    p_loadgen.add_argument(
        "--queries", type=int, default=64, help="number of queries to replay"
    )
    p_loadgen.add_argument(
        "--repeat-fraction",
        type=float,
        default=0.5,
        help="fraction of queries re-issuing an earlier seed set "
        "(drives the warm-cache hit rate; default 0.5)",
    )
    p_loadgen.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop client concurrency (default 8)",
    )
    p_loadgen.add_argument(
        "--p99-bound",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit nonzero when p99 latency exceeds this bound "
        "(the CI serve-smoke gate)",
    )
    p_loadgen.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the load report (latencies, throughput, hit rate) "
        "as JSON",
    )

    p_report = add_parser(
        "report",
        help="diff run-report files and flag regressions or model drift",
    )
    p_report.add_argument(
        "reports",
        nargs="+",
        metavar="REPORT",
        help="report files: before and after for a diff, any number "
        "with --drift",
    )
    p_report.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative growth on any metric that counts as a regression "
        "(default 0.05 = 5%%)",
    )
    p_report.add_argument(
        "--drift",
        action="store_true",
        help="check embedded model-vs-simulation drift records instead of "
        "diffing two runs",
    )
    p_report.add_argument(
        "--drift-threshold",
        type=float,
        default=DEFAULT_DRIFT_THRESHOLD,
        help="relative model/simulation divergence that counts as drift "
        f"(default {DEFAULT_DRIFT_THRESHOLD:g})",
    )
    p_report.add_argument(
        "--summary",
        action="store_true",
        help="print the GAIL per-edge decomposition (requests / reads / "
        "writes / instructions / seconds per edge) of every measurement "
        "report instead of diffing two runs; reproduce reports list the "
        "fleet's per-cell decompositions",
    )

    p_bench = add_parser(
        "bench",
        help="compare fresh BENCH_*.json numbers against committed "
        "baselines with noise tolerances (--check exits nonzero on "
        "regression)",
    )
    p_bench.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when any gated metric regresses beyond its "
        "tolerance (the CI bench-sentinel gate)",
    )
    p_bench.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=None,
        help="directory holding committed BENCH_*.json baselines "
        "(default: the repository root)",
    )
    p_bench.add_argument(
        "--current",
        metavar="DIR",
        default=None,
        help="directory of freshly emitted BENCH_*.json documents to "
        "compare (default: re-measure the cheap plan-dedup bench "
        "in-process)",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="default relative tolerance on gated metrics (default 0.01)",
    )
    p_bench.add_argument(
        "--noise",
        action="append",
        metavar="PATTERN=TOL",
        default=[],
        help="per-metric tolerance override, fnmatch pattern on "
        "'bench/metric' (repeatable), e.g. --noise 'plan_dedup/cells*=0'",
    )
    p_bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full comparison document to PATH (the CI "
        "artifact)",
    )

    # ``reproduce`` owns its full option surface in
    # repro.harness.reproduce; forward everything verbatim rather than
    # duplicating the argument list here.  No ``parents=[common]``: the
    # forwarded parser defines its own -v/-q.
    p_reproduce = sub.add_parser(
        "reproduce",
        help="regenerate every table and figure (supports --resume, "
        "--max-retries, --inject-faults; see --help)",
        add_help=False,
    )
    p_reproduce.add_argument("reproduce_args", nargs=argparse.REMAINDER)

    return parser


def _resolve_tier(method: str, tier: str) -> str:
    """Map ``method`` through ``--kernel-tier`` (lazy: tier 'numpy' never
    imports repro.compiled)."""
    if tier == "numpy":
        return method
    from repro.compiled.kernels import resolve_method

    return resolve_method(method, tier)


def _warmup_if_compiled(args: argparse.Namespace) -> None:
    """Front-load backend compilation when the compiled tier is in play.

    Called inside the ``recording()`` scope so the
    ``compiled_warmup[<backend>]`` span lands in the report's wall spans
    instead of inflating the first measured iteration.
    """
    if getattr(args, "kernel_tier", "numpy") == "compiled" or (
        getattr(args, "engine", None) == "compiled"
    ):
        from repro.compiled import warmup

        warmup()


def _save_trace(args: argparse.Namespace, tracer) -> None:
    """Honour ``--trace`` for the run(s) just performed."""
    if tracer is not None:
        tracer.save(args.trace)
        print(f"[trace written to {args.trace}]")


def _write_reports(args: argparse.Namespace, reports: list[RunReport]) -> None:
    """Honour ``--json`` / ``--report-dir`` for the run(s) just performed."""
    if args.json:
        save_reports(reports, args.json)
        print(f"\n[report written to {args.json}]")
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
        for report in reports:
            name = f"{report.kind}_{report.graph.name}_{report.config.method}.json"
            path = os.path.join(args.report_dir, name)
            report.save(path)
            print(f"[report written to {path}]")


def _cmd_suite(args: argparse.Namespace) -> int:
    graphs = load_suite(scale=args.scale, seed=args.seed)
    print(table1(graphs).render())
    return 0


def _cmd_pagerank(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    with ExitStack() as stack:
        rec = stack.enter_context(recording())
        tracer = stack.enter_context(tracing()) if args.trace else None
        _warmup_if_compiled(args)
        result = pagerank(
            graph,
            method=args.method,
            tolerance=args.tolerance,
            max_iterations=args.max_iterations,
            tier=args.kernel_tier,
        )
        measurement = None
        if args.measure:
            measurement = run_experiment(
                graph, result.method, graph_name=args.graph, engine=args.engine
            )
    status = "converged" if result.converged else "iteration cap reached"
    print(
        f"{args.graph}: n={graph.num_vertices} m={graph.num_edges} "
        f"method={result.method} iterations={result.iterations} ({status})"
    )
    top = np.argsort(result.scores)[::-1][: max(args.top, 0)]
    rows = [[int(v), float(result.scores[v])] for v in top]
    print(format_table(["vertex", "score"], rows, title=f"top {len(rows)} vertices"))
    if measurement is not None:
        print(
            format_table(
                ["metric", "value"],
                [
                    ["DRAM reads (lines)", measurement.reads],
                    ["DRAM writes (lines)", measurement.writes],
                    [
                        "requests / edge",
                        round(measurement.gail().requests_per_edge, 4),
                    ],
                    ["modelled time (ms)", round(measurement.seconds * 1e3, 4)],
                ],
                title=f"simulated traffic ({args.engine}, 1 iteration)",
            )
        )
    report = RunReport(
        kind="pagerank",
        graph=GraphMeta(
            name=args.graph,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            scale=args.scale,
            seed=args.seed,
        ),
        config=RunConfig(
            method=result.method,
            engine=args.engine,
            num_iterations=result.iterations,
            options={
                "requested_method": args.method,
                "kernel_tier": args.kernel_tier,
            },
        ),
        convergence=Convergence(
            iterations=result.iterations,
            converged=result.converged,
            tolerance=args.tolerance,
            deltas=result.deltas,
        ),
        wall_spans=rec.as_dict(),
    )
    _write_reports(args, [report])
    _save_trace(args, tracer)
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    method = _resolve_tier(args.method, args.kernel_tier)
    with ExitStack() as stack:
        rec = stack.enter_context(recording())
        tracer = stack.enter_context(tracing()) if args.trace else None
        registry = stack.enter_context(collecting()) if args.metrics else None
        _warmup_if_compiled(args)
        m = run_experiment(
            graph,
            method,
            graph_name=args.graph,
            engine=args.engine,
            num_iterations=args.iterations,
        )
        if tracer is not None:
            # A short executable solver pass so the trace also carries the
            # solver-side counter tracks (residual, active vertices) next
            # to the simulator's DRAM/miss-rate/drift tracks.
            pagerank(graph, method=method, max_iterations=5, tolerance=0.0)
    rows = [
        ["DRAM reads (lines)", m.reads],
        ["DRAM writes (lines)", m.writes],
        ["requests / edge", round(m.gail().requests_per_edge, 4)],
        ["instructions (M)", round(m.instructions / 1e6, 2)],
        ["modelled time (ms)", round(m.seconds * 1e3, 4)],
        ["bottleneck", m.time.bottleneck],
    ]
    iter_word = "iteration" if args.iterations == 1 else "iterations"
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{method} on {args.graph} "
            f"({args.iterations} {iter_word}, simulated)",
        )
    )
    report = report_from_measurement(
        m,
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        wall_spans=rec.as_dict(),
        metrics=registry.as_dict() if registry is not None else None,
    )
    _write_reports(args, [report])
    _save_trace(args, tracer)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    rows = []
    reports = []
    baseline = None
    with ExitStack() as trace_stack:
        # One tracer spans all four runs (one shared timeline); metrics
        # registries are per run so each report carries its own.
        tracer = trace_stack.enter_context(tracing()) if args.trace else None
        for method in ("baseline", "cb", "pb", "dpb"):
            method = _resolve_tier(method, args.kernel_tier)
            with ExitStack() as stack:
                rec = stack.enter_context(recording())
                registry = (
                    stack.enter_context(collecting()) if args.metrics else None
                )
                _warmup_if_compiled(args)
                m = run_experiment(
                    graph, method, graph_name=args.graph, engine=args.engine
                )
            reports.append(
                report_from_measurement(
                    m,
                    scale=args.scale,
                    seed=args.seed,
                    engine=args.engine,
                    wall_spans=rec.as_dict(),
                    metrics=registry.as_dict() if registry is not None else None,
                )
            )
            if baseline is None:
                baseline = m
            rows.append(
                [
                    method,
                    m.reads,
                    m.writes,
                    round(m.gail().requests_per_edge, 3),
                    round(m.communication_reduction_over(baseline), 2),
                    round(m.speedup_over(baseline), 2),
                ]
            )
    print(
        format_table(
            ["method", "reads", "writes", "req/edge", "comm reduction", "speedup"],
            rows,
            title=f"strategy comparison on {args.graph} "
            f"(n={graph.num_vertices}, m={graph.num_edges})",
        )
    )
    _write_reports(args, reports)
    _save_trace(args, tracer)
    return 0


def _report_drift(args: argparse.Namespace) -> int:
    """``repro-pb report --drift``: check embedded model-drift records."""
    rows = []
    flagged = []
    checked = 0
    for path in args.reports:
        try:
            reports = load_reports(path)
        except (OSError, ValueError) as exc:
            print(f"repro-pb report: error: {exc}", file=sys.stderr)
            return 2
        for report in reports:
            key = f"{report.graph.name}/{report.config.method}"
            if report.drift is None:
                print(f"warning: {key} ({path}) carries no drift records")
                continue
            summary = DriftSummary.from_dict(report.drift)
            checked += 1
            for record in summary.records:
                over = record.exceeds(args.drift_threshold)
                rows.append(
                    [
                        key,
                        record.name,
                        f"{record.simulated:g}",
                        f"{record.modelled:g}",
                        f"{record.delta:+.4f}",
                        "DRIFT" if over else "ok",
                    ]
                )
                if over:
                    flagged.append((key, record))
    print(
        format_table(
            ["run", "metric", "simulated", "modelled", "delta", "status"],
            rows,
            title=f"model drift (threshold {args.drift_threshold:g})",
        )
    )
    if flagged:
        print(f"\n{len(flagged)} drift record(s) beyond {args.drift_threshold:g}:")
        for key, record in flagged:
            print(
                f"  {key} {record.name}: simulated {record.simulated:g} vs "
                f"modelled {record.modelled:g} (delta {record.delta:+.4f})"
            )
        return 1
    if checked == 0:
        print("\nwarning: no drift records found in the given report(s)")
        return 0
    print(f"\nno model drift across {checked} run(s)")
    return 0


def _report_summary(args: argparse.Namespace) -> int:
    """``repro-pb report --summary``: GAIL per-edge ratios per report.

    Any ``measure`` report carries MemCounters-derived totals, so its
    whole GAIL decomposition (Beamer et al.) is recomputable from the
    report alone; ``reproduce`` reports (schema 1.4) instead carry the
    fleet collector's per-cell decompositions.
    """
    header = [
        "run",
        "req/edge",
        "reads/edge",
        "writes/edge",
        "instr/edge",
        "ns/edge",
    ]
    rows = []
    skipped = []
    for path in args.reports:
        try:
            reports = load_reports(path)
        except (OSError, ValueError) as exc:
            print(f"repro-pb report: error: {exc}", file=sys.stderr)
            return 2
        for report in reports:
            if report.counters is not None:
                m = max(report.graph.num_edges, 1)
                seconds = report.time.modelled_seconds if report.time else 0.0
                instructions = report.instructions or 0.0
                rows.append(
                    [
                        report.key(),
                        f"{report.counters.total_requests / m:.4f}",
                        f"{report.counters.total_reads / m:.4f}",
                        f"{report.counters.total_writes / m:.4f}",
                        f"{instructions / m:.3f}",
                        f"{seconds / m * 1e9:.4f}",
                    ]
                )
            elif report.fleet and report.fleet.get("gail"):
                for cell, ratios in sorted(report.fleet["gail"].items()):
                    rows.append(
                        [
                            cell,
                            f"{ratios.get('requests_per_edge', 0.0):.4f}",
                            f"{ratios.get('reads_per_edge', 0.0):.4f}",
                            f"{ratios.get('writes_per_edge', 0.0):.4f}",
                            f"{ratios.get('instructions_per_edge', 0.0):.3f}",
                            f"{ratios.get('seconds_per_edge', 0.0) * 1e9:.4f}",
                        ]
                    )
            else:
                skipped.append(f"{report.kind}:{report.key()} ({path})")
    print(
        format_table(
            header,
            rows,
            title="GAIL per-edge decomposition (simulated DRAM lines, "
            "modelled time)",
        )
    )
    for key in skipped:
        print(f"warning: {key} carries no per-edge counters")
    if not rows:
        print("warning: no GAIL-capable runs in the given report(s)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.summary:
        return _report_summary(args)
    if args.drift:
        return _report_drift(args)
    if len(args.reports) != 2:
        print(
            "repro-pb report: error: a diff needs exactly two report files "
            "(before, after); use --drift for per-file drift checks",
            file=sys.stderr,
        )
        return 2
    before_path, after_path = args.reports
    try:
        before = load_reports(before_path)
        after = load_reports(after_path)
    except (OSError, ValueError) as exc:
        print(f"repro-pb report: error: {exc}", file=sys.stderr)
        return 2
    diff = diff_report_sets(before, after, threshold=args.threshold)
    rows = [
        [
            d.key,
            d.metric,
            f"{d.before:g}",
            f"{d.after:g}",
            f"{d.ratio:.3f}",
            d.status,
        ]
        for d in diff.deltas
    ]
    print(
        format_table(
            ["run", "metric", "before", "after", "after/before", "status"],
            rows,
            title=f"report diff (threshold {args.threshold:.0%})",
        )
    )
    for key in diff.unmatched_before:
        print(f"warning: {key} present only in {before_path}")
    for key in diff.unmatched_after:
        print(f"warning: {key} present only in {after_path}")
    if not diff.deltas:
        print("warning: no comparable runs between the two files")
    regressions = diff.regressions
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
        for d in regressions:
            print(f"  {d.key} {d.metric}: {d.before:g} -> {d.after:g} (x{d.ratio:.3f})")
        return 1
    print("\nno regressions")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """``repro-pb plan``: compile and print the cell DAG, execute nothing."""
    from repro.harness.cache import MeasurementCache
    from repro.harness.reproduce import ARTIFACTS, plan_specs
    from repro.plan import compile_plan

    scale = 0.25 if args.quick else args.scale
    wanted = set(args.only or ARTIFACTS)
    specs = plan_specs(wanted, scale=scale, seed=args.seed, engine=args.engine)
    plan = compile_plan(specs)
    print(
        format_table(
            ["artifact", "cells requested", "owned", "shared"],
            plan.summary_rows(),
            title=(
                f"compiled plan: {len(specs)} artifact(s) at scale {scale:g}, "
                f"engine {args.engine}"
            ),
        )
    )
    print(
        f"\n{plan.cells_requested} cell(s) requested, "
        f"{plan.cells_unique} unique (dedup ratio {plan.dedup_ratio:.2f})"
    )
    cache = MeasurementCache(args.cache) if args.cache else None
    if cache is not None:
        hits = sum(1 for fingerprint in plan.cells if cache.has(fingerprint))
        print(
            f"cache {args.cache}: {hits} hit(s), "
            f"{plan.cells_unique - hits} cell(s) would execute"
        )
    else:
        print(f"{plan.cells_unique} cell(s) would execute (no --cache given)")
    if not args.execute:
        return 0
    return _execute_plan_cli(args, plan, cache)


def _make_distributed_executor(args: argparse.Namespace, program: str):
    """Build a :class:`DistributedExecutor` from ``--distribute``/``--bind``/
    ``--lease-timeout``, or ``None`` when the flags are absent."""
    if getattr(args, "distribute", None) is None:
        return None
    from repro.cluster import DistributedExecutor, parse_endpoint

    if args.distribute < 0:
        print(f"{program}: error: --distribute must be >= 0", file=sys.stderr)
        raise SystemExit(2)
    try:
        bind = parse_endpoint(args.bind)
    except ValueError as exc:
        print(f"{program}: error: --bind: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return DistributedExecutor(
        spawn_workers=args.distribute,
        bind=bind,
        lease_seconds=args.lease_timeout,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro-pb worker``: serve one coordinator until it shuts us down."""
    from repro.cluster import parse_endpoint, run_worker

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as exc:
        print(f"repro-pb worker: error: --connect: {exc}", file=sys.stderr)
        return 2
    # A standing worker should say what it is doing; default to INFO
    # like the reproduce driver rather than the CLI's warnings-only.
    configure_logging(args.verbose - args.quiet + 1)
    return run_worker(
        host,
        port,
        cache_dir=args.cache_dir,
        name=args.name,
        max_idle_seconds=args.max_idle,
    )


def _execute_plan_cli(args: argparse.Namespace, plan, cache) -> int:
    """``repro-pb plan --execute``: run the DAG with fleet telemetry."""
    import contextlib

    from repro.obs.events import EventBus
    from repro.obs.events import collecting as collecting_events
    from repro.obs.progress import attach_progress
    from repro.obs.trace import TraceRecorder
    from repro.parallel.resilience import CellFailedError
    from repro.plan import execute_plan

    executor = _make_distributed_executor(args, "repro-pb plan")
    bus = EventBus()
    tracer = TraceRecorder() if args.trace else None
    renderer = attach_progress(bus, mode=args.progress, quiet=args.quiet > 0)
    failed = False
    with collecting_events(bus):
        scope = tracing(tracer) if tracer is not None else contextlib.nullcontext()
        with scope:
            try:
                execute_plan(
                    plan,
                    workers=args.workers,
                    cache=cache,
                    shm=args.shm,
                    executor=executor,
                )
            except CellFailedError as exc:
                print(f"repro-pb plan: error: {exc}", file=sys.stderr)
                failed = True
    bus.pump()
    if renderer is not None:
        renderer.finish()
    fleet = bus.fleet_summary()
    if tracer is not None:
        bus.merge_into_trace(tracer)
        tracer.save(args.trace)
        print(f"[trace written to {args.trace}]")
    bus.close()
    cells = fleet["cells"]
    print(
        f"\nexecuted {cells['executed']}, cached {cells['cached']}, "
        f"resumed {cells['resumed']} of {cells['total']} cell(s) "
        f"({cells['retries']} retried, {cells['faults']} fault(s)) "
        f"across {fleet['workers']['spawned']} worker(s)"
    )
    return 1 if failed else 0


def _serve_config(args: argparse.Namespace):
    """Build a :class:`repro.serve.ServeConfig` from CLI options."""
    from repro.serve import BatchPolicy, ServeConfig

    return ServeConfig(
        method=args.method,
        tier=args.kernel_tier,
        tolerance=args.tolerance,
        top_k=max(args.top, 1),
        policy=BatchPolicy(
            window_seconds=args.batch_window, max_batch=args.max_batch
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro-pb serve``: batched personalized-PageRank answers."""
    import asyncio

    from repro.serve import PPRServer, ServeCache, generate_queries

    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    config = _serve_config(args)
    cache = ServeCache(args.cache_dir) if args.cache_dir else None
    if args.seeds:
        queries = []
        for spec in args.seeds:
            try:
                queries.append(tuple(int(part) for part in spec.split(",")))
            except ValueError:
                print(
                    f"repro-pb serve: error: bad --seeds value {spec!r} "
                    "(expected comma-separated vertex ids)",
                    file=sys.stderr,
                )
                return 2
    else:
        queries = generate_queries(
            8, graph.num_vertices, seed=args.seed, repeat_fraction=0.25
        )

    async def _answer():
        async with PPRServer(graph, config, cache=cache) as server:
            results = await asyncio.gather(
                *(server.query(seeds) for seeds in queries)
            )
            return results, server.stats()

    try:
        results, stats = asyncio.run(_answer())
    except ValueError as exc:
        print(f"repro-pb serve: error: {exc}", file=sys.stderr)
        return 2
    for result in results:
        seeds = ",".join(str(s) for s in result.seeds)
        source = "cache" if result.from_cache else f"batch[{result.batch_size}]"
        rows = [[int(v), f"{score:.3e}"] for v, score in result.top]
        print(
            format_table(
                ["vertex", "score"],
                rows,
                title=f"seeds [{seeds}] via {source}",
            )
        )
    s = stats.to_dict()
    print(
        f"\n{s['requests']} request(s) in {s['batches']} batch(es) "
        f"(mean occupancy {s['mean_occupancy']:.2f}, "
        f"{s['coalesced']} coalesced, cache hit rate "
        f"{s['cache_hit_rate']:.2f})"
    )
    if args.json:
        report = RunReport(
            kind="serve",
            graph=GraphMeta(
                name=args.graph,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                scale=args.scale,
                seed=args.seed,
            ),
            config=RunConfig(
                method=args.method,
                options={
                    "kernel_tier": args.kernel_tier,
                    "batch_window": args.batch_window,
                    "max_batch": args.max_batch,
                    "cached": args.cache_dir is not None,
                },
            ),
            serve=s,
        )
        report.save(args.json)
        print(f"[report written to {args.json}]")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro-pb loadgen``: seeded load replay with a latency report."""
    import json as json_module

    from repro.serve import ServeCache, generate_queries, run_load

    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    config = _serve_config(args)
    cache = ServeCache(args.cache_dir) if args.cache_dir else None
    queries = generate_queries(
        args.queries,
        graph.num_vertices,
        seed=args.seed,
        repeat_fraction=args.repeat_fraction,
    )
    report = run_load(
        graph,
        queries,
        config=config,
        cache=cache,
        concurrency=args.concurrency,
    )
    rows = [
        ["queries", report.num_queries],
        ["wall seconds", f"{report.wall_seconds:.4f}"],
        ["queries / sec", f"{report.queries_per_sec:.1f}"],
        ["p50 latency (ms)", f"{report.p50_seconds * 1e3:.3f}"],
        ["p99 latency (ms)", f"{report.p99_seconds * 1e3:.3f}"],
        ["max latency (ms)", f"{report.max_seconds * 1e3:.3f}"],
        ["cache hit rate", f"{report.cache_hit_rate:.3f}"],
        ["mean batch occupancy", f"{report.mean_occupancy:.2f}"],
        ["batches", report.batches],
        ["coalesced", report.coalesced],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"load replay on {args.graph} "
            f"(max_batch {args.max_batch}, concurrency {args.concurrency})",
        )
    )
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[report written to {args.json}]")
    if args.p99_bound is not None and report.p99_seconds > args.p99_bound:
        print(
            f"repro-pb loadgen: p99 latency {report.p99_seconds:.4f}s exceeds "
            f"bound {args.p99_bound:.4f}s",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.harness.reproduce import main as reproduce_main

    return reproduce_main(args.reproduce_args)


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro-pb bench``: the bench-regression sentinel (lazy import)."""
    from repro.bench import run_bench_command

    return run_bench_command(args)


def _cmd_model(args: argparse.Namespace) -> int:
    machine = SIMULATED_MACHINE
    p = ModelParams(
        n=args.vertices,
        k=args.degree,
        b=machine.words_per_line,
        c=machine.cache_words,
    )
    width = choose_block_width(args.vertices, machine.cache_words)
    r = num_blocks_for_width(args.vertices, width)
    m = p.m
    rows = [
        ["pull", round((paper_pull_reads(p) + p.n / p.b) / m, 4)],
        ["cb (edge list)", round((paper_cb_edgelist_reads(p, r) + p.n / p.b) / m, 4)],
        ["dpb", round((paper_pb_reads(p) + paper_pb_writes(p)) / m, 4)],
    ]
    print(
        format_table(
            ["strategy", "modelled requests/edge"],
            rows,
            title=(
                f"Section V models: n={args.vertices}, k={args.degree}, "
                f"b={p.b}, c={p.c}, r={r}"
            ),
        )
    )
    best = min(rows, key=lambda row: row[1])
    print(f"\npredicted winner: {best[0]}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.graphs.analysis import describe

    graph = load_graph(args.graph, scale=args.scale, seed=args.seed)
    profile = describe(graph)
    rows = [
        ["vertices", profile.num_vertices],
        ["edges", profile.num_edges],
        ["avg directed degree", round(profile.average_degree, 2)],
        ["max out-degree", profile.max_out_degree],
        ["degree skew (max/mean)", round(profile.degree_skew, 1)],
        ["vertices / cache words (n/c)", round(profile.vertex_to_cache_ratio, 2)],
        ["mean label distance", round(profile.mean_label_distance, 1)],
        ["estimated gather hit rate", round(profile.estimated_gather_hit_rate, 3)],
        ["low locality?", "yes" if profile.is_low_locality() else "no"],
        ["recommended method", profile.recommended_method],
    ]
    print(format_table(["property", "value"], rows, title=f"profile of {args.graph}"))
    return 0


_COMMANDS = {
    "suite": _cmd_suite,
    "pagerank": _cmd_pagerank,
    "measure": _cmd_measure,
    "compare": _cmd_compare,
    "model": _cmd_model,
    "describe": _cmd_describe,
    "report": _cmd_report,
    "plan": _cmd_plan,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "loadgen": _cmd_loadgen,
    "reproduce": _cmd_reproduce,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # ``reproduce`` forwards everything to repro.harness.reproduce before
    # argparse sees the options (argparse.REMAINDER cannot capture a
    # leading ``--flag`` as the first positional), so ``repro-pb
    # reproduce --help`` shows the forwarded parser's own help.
    if argv and argv[0] == "reproduce":
        from repro.harness.reproduce import main as reproduce_main

        return reproduce_main(argv[1:])
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
