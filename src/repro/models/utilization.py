"""Cache-line utilization (goodput) — the paper's "unused words" framing.

Section III: low-locality vertex accesses cause "unused words within
transferred cache lines.  These unused words are problematic, as they
waste bandwidth and energy."  Propagation blocking's entire mechanism is
raising *utilization* — the fraction of transferred words the algorithm
actually consumes — to ~1 by making every transfer a full-line stream.

``useful_words`` counts, per iteration, the words each strategy logically
reads or writes (independent of the memory system); dividing by the words
the simulator actually moved gives the utilization the strategy achieved.
"""

from __future__ import annotations

from repro.graphs.csr import CSRGraph
from repro.memsim.counters import MemCounters
from repro.utils.validation import check_positive

__all__ = ["useful_words", "line_utilization"]

#: Logical word traffic per strategy, as (edge_coefficient, vertex_coefficient):
#: useful words per iteration = edge_coeff * m + vertex_coeff * n.
#: Derived from each kernel's data flow (see the kernel docstrings):
#: e.g. pull touches the adjacency (m), one gather word per edge (m), the
#: 64-bit index (2n), and reads/writes the four vertex arrays.
_USEFUL: dict[str, tuple[float, float]] = {
    "baseline": (2.0, 7.0),  # adjacency + gathers; scores/degree/contrib passes
    "push": (2.0, 8.0),  # adjacency + scatter read-modify-writes
    "cb": (3.0, 8.0),  # 2-word edge list + contribution read per edge
    "pb": (6.0, 8.0),  # adjacency + pair written + pair read + scatter
    "dpb": (5.0, 8.0),  # destinations not re-written
}


def useful_words(method: str, graph: CSRGraph) -> float:
    """Words per iteration the strategy logically consumes or produces."""
    if method not in _USEFUL:
        raise KeyError(f"unknown method {method!r}; choose from {sorted(_USEFUL)}")
    edge_coeff, vertex_coeff = _USEFUL[method]
    return edge_coeff * graph.num_edges + vertex_coeff * graph.num_vertices


def line_utilization(
    method: str,
    graph: CSRGraph,
    counters: MemCounters,
    words_per_line: int = 16,
) -> float:
    """Fraction of transferred words the algorithm used (0, 1].

    A value near 1 means every moved line was fully consumed (streaming);
    low values mean the strategy paid for words it never touched (the
    pull baseline's gathers on a low-locality graph use 1 word of every
    16-word line it misses on).  Values may slightly exceed 1 when cache
    *hits* let the algorithm consume the same transferred word more than
    once (high-locality inputs) — capped here at the raw ratio to keep
    the metric interpretable.
    """
    check_positive("words_per_line", words_per_line)
    moved = counters.total_requests * words_per_line
    if moved == 0:
        return 1.0
    return useful_words(method, graph) / moved
