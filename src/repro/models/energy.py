"""Energy model — the paper's opening motivation, quantified.

Section I: "Reducing communication can also save energy, as moving data
consumes more energy than the arithmetic operations that manipulate it",
citing Choi et al.'s roofline model of energy.  This module applies that
model to our measurements: total energy is a DRAM-transfer term plus an
instruction term,

    E = e_line * (reads + writes) + e_instr * instructions

with defaults in the range the architecture literature reports for the
paper's 22 nm era (~10 nJ per 64 B DRAM line transfer, ~70 pJ per
executed instruction including core overheads).  Because propagation
blocking trades a ~4x instruction increase for a ~3-4x traffic decrease,
whether it saves *energy* depends on exactly this ratio — and the model
shows it does, except on high-locality inputs (see
``benchmarks/bench_energy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.counters import MemCounters
from repro.utils.validation import check_positive

__all__ = ["EnergyModel", "DEFAULT_ENERGY_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Two-term energy model (Joules).

    Parameters
    ----------
    joules_per_line:
        Energy to move one cache line (64 B) between DRAM and the chip,
        including DRAM activate/precharge and link energy.
    joules_per_instruction:
        Average core energy per executed instruction.
    """

    joules_per_line: float = 10e-9
    joules_per_instruction: float = 70e-12

    def __post_init__(self) -> None:
        check_positive("joules_per_line", self.joules_per_line)
        check_positive("joules_per_instruction", self.joules_per_instruction)

    def energy(self, counters: MemCounters, instructions: float) -> dict[str, float]:
        """Energy breakdown for one measured execution.

        Returns ``{"dram", "core", "total"}`` in Joules.
        """
        dram = self.joules_per_line * counters.total_requests
        core = self.joules_per_instruction * instructions
        return {"dram": dram, "core": core, "total": dram + core}

    def breakeven_instruction_ratio(
        self, traffic_reduction: float, baseline_instr_per_request: float
    ) -> float:
        """Largest tolerable instruction blow-up for an energy win.

        Given a technique that divides DRAM traffic by
        ``traffic_reduction``, returns the maximum factor by which it may
        multiply instructions while still saving total energy, as a
        function of the baseline's instructions-per-DRAM-request ratio.
        Propagation blocking's ~4x sits far under this bound for
        low-locality PageRank (~7 instructions/request baseline).
        """
        check_positive("traffic_reduction", traffic_reduction)
        check_positive("baseline_instr_per_request", baseline_instr_per_request)
        line = self.joules_per_line
        instr = self.joules_per_instruction
        # Solve: line/R + instr*i*x  <=  line + instr*i   (per baseline request)
        i = baseline_instr_per_request
        return 1.0 + line * (1.0 - 1.0 / traffic_reduction) / (instr * i)


#: Model instance used by the energy bench.
DEFAULT_ENERGY_MODEL = EnergyModel()
