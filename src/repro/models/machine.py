"""Machine descriptions: the paper's testbed and our scaled simulated box.

Two machines appear in this reproduction:

* :data:`IVY_BRIDGE_SERVER` — the paper's dual-socket E5-2667 v2 (16 cores,
  3.3 GHz, 25 MB LLC per socket, DDR3-1600).  Used by the analytic models
  when reproducing the paper's *absolute* numbers.
* :data:`SIMULATED_MACHINE` — the scaled machine the cache simulator
  models.  Sizes are divided by roughly the same factor as the graph suite
  (:data:`repro.graphs.suite.SCALE_DIVISOR`), keeping the ratios that
  govern every result: ``n / cache_words`` (vertex-to-cache ratio, ~20-30
  for the paper's low-locality graphs) and ``b`` (words per line, 16 in
  both).

The timing side (:class:`MachineSpec` fields ``mem_bandwidth_requests`` and
``instr_rate``) encodes the paper's bottleneck analysis: its platform
sustains at most ~1191 M memory requests/s, and implementations that
execute too many instructions become instruction-window-bound instead
(Section VI-A).  The time model in :mod:`repro.models.performance` combines
the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.cache import CacheConfig

__all__ = ["MachineSpec", "IVY_BRIDGE_SERVER", "SIMULATED_MACHINE"]


@dataclass(frozen=True)
class MachineSpec:
    """A machine as seen by the communication and time models.

    Parameters
    ----------
    name:
        Human-readable identifier.
    llc:
        Last-level cache geometry (the paper's single modelled cache level).
    l1:
        First-level cache geometry, used only for the bin-insertion-point
        analysis behind Figures 10-11.
    mem_bandwidth_requests:
        Peak sustainable DRAM cache-line transfers per second.
    instr_rate:
        Peak instruction throughput (instructions/s across all cores).
    overlap:
        Fraction of the smaller of (memory time, instruction time) that is
        *not* hidden behind the larger — 0 is perfect overlap.  Calibrated
        so the baseline's measured 2.49 s vs its 2.04 s memory-bound floor
        is reproduced (~0.2).
    l1_miss_penalty:
        Seconds of added latency per L1 miss that hits the LLC (the
        binning-phase penalty when bins are too numerous, Section VI-D).
        The default models ~60 cycles of effective store stall per missing
        bin insertion — more than a raw L2/L3 hit latency because each
        miss also stalls the write-combining buffers the streaming stores
        drain through.  Calibrated against the paper's Figure 11, where
        16 KB bins inflate binning time ~8x over the 512 KB optimum.
    """

    name: str
    llc: CacheConfig
    l1: CacheConfig
    mem_bandwidth_requests: float
    instr_rate: float
    overlap: float = 0.2
    l1_miss_penalty: float = 60.0 / 52.8e9

    @property
    def words_per_line(self) -> int:
        """The paper's ``b``."""
        return self.llc.words_per_line

    @property
    def cache_words(self) -> int:
        """The paper's ``c``."""
        return self.llc.capacity_words

    def expected_hit_rate(self, num_vertices: int) -> float:
        """The model's ``c/n`` hit-rate estimate for full-range gathers."""
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        return min(1.0, self.cache_words / num_vertices)


#: The paper's evaluation platform (Section VI).  LLC capacity is the
#: combined 2 x 25 MB, approximated to the nearest power of two.
IVY_BRIDGE_SERVER = MachineSpec(
    name="ivy-bridge-2s-e5-2667v2",
    llc=CacheConfig(capacity_bytes=32 * 1024 * 1024, line_bytes=64),
    l1=CacheConfig(capacity_bytes=32 * 1024, line_bytes=64),
    mem_bandwidth_requests=1.191e9,  # measured microbenchmark peak (Section VI-A)
    # 16 cores x 3.3 GHz x ~1.25 sustained IPC.  The IPC is calibrated from
    # the paper's instruction-bound DPB timings (e.g. kron: 73.2 G
    # instructions in 1.20 s across 52.8 G cycles/s implies IPC ~1.16-1.25
    # for the streaming binning loop).
    instr_rate=16 * 3.3e9 * 1.25,
)

#: The scaled machine the simulator models: the LLC divided by ~1024 like
#: the graph suite, same 64 B lines / 16-word ``b``.  The L1 is scaled less
#: aggressively (4x) so it still holds the insertion points of a paper-like
#: default bin count (~64) with room to spare, as the real 32 KB L1 does;
#: the Figure 10-11 sweeps then thrash it at the same bins-per-L1-line
#: ratios.  Timing constants stay at the paper's physical rates so
#: simulated traffic (also ~1024x smaller) produces proportionally scaled
#: times with identical ratios.
SIMULATED_MACHINE = MachineSpec(
    name="simulated-scaled-ivy-bridge",
    llc=CacheConfig(capacity_bytes=16 * 1024, line_bytes=64),
    l1=CacheConfig(capacity_bytes=8 * 1024, line_bytes=64),
    mem_bandwidth_requests=1.191e9,
    instr_rate=16 * 3.3e9 * 1.25,
)
