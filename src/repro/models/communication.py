"""Analytic communication models (paper Section V).

The paper derives closed-form cache-line counts for each strategy on a
uniform random graph, using parameters

====== =====================================================
``n``  number of vertices
``k``  average directed degree (``kn = m``)
``b``  words per cache line (16 for 64 B lines, 32-bit words)
``c``  words of cache capacity
``r``  number of graph blocks for cache blocking
====== =====================================================

Two families of formulas are provided:

* ``paper_*`` — the exact expressions printed in Section V.  These ignore
  small per-pass terms (degree reads, write-allocate fills) because the
  paper only needs leading-order behaviour.
* ``detailed_*`` — the same models extended with every term our traced
  kernels actually emit, so simulator-vs-model agreement can be asserted
  tightly in tests (the paper does the analogous validation in Figure 3:
  "The traffic we measure for reading only the graph is also in close
  agreement with our model").

All results are cache-line counts for **one** PageRank iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = [
    "ModelParams",
    "paper_pull_reads",
    "paper_cb_csr_reads",
    "paper_cb_edgelist_reads",
    "paper_pb_reads",
    "paper_pb_writes",
    "pb_beats_pull_line_size",
    "pb_beats_cb_blocks",
    "detailed_pull",
    "detailed_cb_edgelist",
    "detailed_pb",
    "expected_touched_lines",
    "phase_reads",
    "pull_phase_reads",
    "cb_edgelist_phase_reads",
    "pb_phase_reads",
]


@dataclass(frozen=True)
class ModelParams:
    """Parameter bundle for the Section V models."""

    n: int  #: vertices
    k: float  #: average directed degree
    b: int  #: words per cache line
    c: int  #: cache capacity in words

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("k", self.k)
        check_positive("b", self.b)
        check_positive("c", self.c)

    @property
    def m(self) -> float:
        """Directed edges ``kn``."""
        return self.k * self.n

    @property
    def miss_rate(self) -> float:
        """The model's gather miss rate ``1 - c/n`` (clamped at 0)."""
        return max(0.0, 1.0 - self.c / self.n)


# ----------------------------------------------------------------------
# the paper's formulas, verbatim
# ----------------------------------------------------------------------
def paper_pull_reads(p: ModelParams) -> float:
    """Pull baseline: ``((1 - c/n) + 3/(kb) + 1/b) kn`` (Section V)."""
    return (p.miss_rate + 3.0 / (p.k * p.b) + 1.0 / p.b) * p.k * p.n


def paper_cb_csr_reads(p: ModelParams, r: int) -> float:
    """1-D cache blocking, CSR blocks: ``(k + 3r + 1) n / b`` (Section V-A)."""
    check_positive("r", r)
    return (p.k + 3.0 * r + 1.0) * p.n / p.b


def paper_cb_edgelist_reads(p: ModelParams, r: int) -> float:
    """1-D cache blocking, edge-list blocks: ``(2k + r + 1) n / b``."""
    check_positive("r", r)
    return (2.0 * p.k + r + 1.0) * p.n / p.b


def paper_pb_reads(p: ModelParams) -> float:
    """Propagation blocking: ``(3 + 3/k) kn / b`` (Section V-B)."""
    return (3.0 + 3.0 / p.k) * p.k * p.n / p.b


def paper_pb_writes(p: ModelParams, *, reuse_destinations: bool = True) -> float:
    """PB writes: ``(1 + 1/k) kn/b`` with destination reuse (DPB), one more
    ``kn/b`` without (PB re-writes the destination ids every iteration)."""
    base = (1.0 + 1.0 / p.k) * p.k * p.n / p.b
    return base if reuse_destinations else base + p.k * p.n / p.b


# ----------------------------------------------------------------------
# crossover conditions (Section V-C)
# ----------------------------------------------------------------------
def pb_beats_pull_line_size(p: ModelParams) -> float:
    """PB communicates less than pull when ``b >= 3 / (1 - c/n)``.

    Returns that threshold line size (in words); ``inf`` when the graph
    fits in cache (pull never misses, blocking can't win).
    """
    if p.miss_rate == 0.0:
        return math.inf
    return 3.0 / p.miss_rate


def pb_beats_cb_blocks(p: ModelParams) -> float:
    """PB communicates less than CB (edge list) when ``r >= 2k + 2``."""
    return 2.0 * p.k + 2.0


# ----------------------------------------------------------------------
# detailed models matching the traced kernels
# ----------------------------------------------------------------------
def expected_touched_lines(num_lines: float, accesses: float) -> float:
    """Expected distinct lines touched by uniform random accesses.

    ``num_lines (1 - (1 - 1/num_lines)^accesses)`` — the coupon-collector
    coverage term used for cache blocking's per-block contribution scans.
    """
    if num_lines <= 0:
        return 0.0
    return num_lines * (1.0 - (1.0 - 1.0 / num_lines) ** accesses)


def detailed_pull(p: ModelParams) -> dict[str, float]:
    """Reads/writes of the traced pull kernel.

    Adds to the paper's model: the degree-array read, the contributions
    write-allocate, and the scores write-allocate (all ``n/b``), plus the
    two dirty write-backs.
    """
    nv = p.n / p.b
    reads = p.miss_rate * p.m + p.m / p.b + 6.0 * nv
    writes = 2.0 * nv  # contributions + scores write-backs
    return {"reads": reads, "writes": writes}


def detailed_cb_edgelist(p: ModelParams, r: int) -> dict[str, float]:
    """Reads/writes of the traced edge-list cache-blocking kernel.

    The contribution re-reads use the coverage expectation: with ``kn/r``
    edges per block, a block touches ``E[lines]`` of the ``n/b``
    contribution lines rather than all of them (this matters for sparse
    graphs, where the paper's ``r n/b`` term is an upper bound).
    """
    check_positive("r", r)
    nv = p.n / p.b
    edges_per_block = p.m / r
    contrib_lines = r * expected_touched_lines(nv, edges_per_block)
    reads = (
        2.0 * p.m / p.b  # edge-list blocks (2 words/edge)
        + contrib_lines  # per-block contribution scans
        + nv  # sums compulsory (write-allocate fills)
        + 3.0 * nv  # contrib pass: scores + degrees + contributions allocate
        + 2.0 * nv  # apply pass: sums read + scores allocate
    )
    # Contributions + scores write-backs, the NT memset of sums, and the
    # per-block sums write-backs: 4 n/b in total.
    writes = 4.0 * nv
    return {"reads": reads, "writes": writes}


def detailed_pb(p: ModelParams, *, reuse_destinations: bool) -> dict[str, float]:
    """Reads/writes of the traced PB/DPB kernels (leading terms).

    Per-bin line rounding (one partially-filled line per bin per array) is
    not included; with the default widths it is under 1 % of bin traffic.
    """
    nv = p.n / p.b
    pair_lines = 2.0 * p.m / p.b  # pairs, or contributions + dest indices
    reads = (
        p.m / p.b  # adjacency
        + 2.0 * nv  # CSR index
        + 2.0 * nv  # binning: scores + degrees
        + pair_lines  # accumulate: bin data
        + nv  # accumulate: sums compulsory (allocate)
        + 2.0 * nv  # apply: sums + scores allocate
    )
    bin_writes = pair_lines / 2.0 if reuse_destinations else pair_lines
    writes = (
        bin_writes  # binning-phase NT stores
        + nv  # sums memset (NT)
        + nv  # sums write-backs
        + nv  # scores write-backs
    )
    return {"reads": reads, "writes": writes}


# ----------------------------------------------------------------------
# per-phase read decompositions (the drift monitor's resolution)
# ----------------------------------------------------------------------
# Reads attribute cleanly to phases because every DRAM fill is charged at
# access time; write-backs do not (a line dirtied in one phase may be
# evicted in a later one or at the final flush), so the drift monitor
# compares reads per phase and writes only in total.


def pull_phase_reads(p: ModelParams) -> dict[str, float]:
    """Pull reads split into its contrib and gather phases.

    The gather term refines :func:`detailed_pull` with the compulsory
    fills of the contributions array: sequential writes bypass the cache,
    so even when the vertex data fits (miss rate 0) the first gather to
    each line must fill it.  The coverage expectation interpolates between
    that regime and the steady-state ``(1 - c/n) m`` term.
    """
    nv = p.n / p.b
    gather_fills = p.miss_rate * p.m + (1.0 - p.miss_rate) * expected_touched_lines(
        nv, p.m
    )
    return {
        "contrib": 3.0 * nv,  # scores + degrees + contributions allocate
        "gather": gather_fills + p.m / p.b + 3.0 * nv,  # + index, scores allocate
    }


def cb_edgelist_phase_reads(p: ModelParams, r: int) -> dict[str, float]:
    """Edge-list CB reads split into contrib, blocks, and apply phases."""
    check_positive("r", r)
    nv = p.n / p.b
    contrib_lines = r * expected_touched_lines(nv, p.m / r)
    return {
        "contrib": 3.0 * nv,
        "blocks": 2.0 * p.m / p.b + contrib_lines + nv,  # edge lists + scans + sums fills
        "apply": 2.0 * nv,
    }


def pb_phase_reads(p: ModelParams) -> dict[str, float]:
    """PB/DPB reads split into binning, accumulate, and apply phases.

    Identical for both variants: PB's accumulate streams ``2m/b`` lines of
    (contribution, destination) pairs, DPB streams ``m/b`` of contributions
    plus ``m/b`` of pre-stored destination indices.
    """
    nv = p.n / p.b
    return {
        "binning": p.m / p.b + 4.0 * nv,  # adjacency + index + scores + degrees
        "accumulate": 2.0 * p.m / p.b + nv,  # bin data + sums fills
        "apply": 2.0 * nv,
    }


def phase_reads(
    method: str, p: ModelParams, *, r: int | None = None
) -> dict[str, float] | None:
    """Per-phase read model for a kernel name, or ``None`` if unmodelled.

    ``r`` (the block count) is required for ``"cb"``; the push kernel has
    no Section V model, so it returns ``None`` and the drift monitor skips
    it.
    """
    if method in ("baseline", "pull"):
        return pull_phase_reads(p)
    if method == "cb":
        if r is None:
            raise ValueError("cb phase model requires the block count r")
        return cb_edgelist_phase_reads(p, r)
    if method in ("pb", "dpb"):
        return pb_phase_reads(p)
    return None
