"""Bottleneck time model — the stand-in for wall-clock measurement.

The paper's timing results are explained by a two-resource bottleneck
(Section VI-A): an implementation is limited either by DRAM bandwidth
(baseline, Ligra — "high memory bandwidth utilization") or by instruction
throughput (CSB, Galois, GraphMat — "execute so many additional
instructions that their memory bandwidth utilization is bottlenecked by the
instruction window size").  PB/DPB sit in between: they communicate little
but execute ~4x the baseline's instructions.

We model execution time as a soft-max of the two resource times::

    t = max(t_mem, t_instr) + overlap * min(t_mem, t_instr)

with ``t_mem = requests / bandwidth`` and ``t_instr = instructions / rate
(+ L1-miss stalls)``.  The ``overlap`` term captures imperfect overlap of
computation and memory (0.2 reproduces the baseline's measured 2.49 s
against its 2.04 s bandwidth floor on urand).

The L1 stall term reproduces the Figure 10-11 effect: when the binning
phase uses more bins than the L1 has lines, each insertion misses L1 (but
hits the LLC), adding latency without adding DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.counters import MemCounters
from repro.memsim.hierarchy import L1Model
from repro.models.machine import MachineSpec

__all__ = [
    "bottleneck_time",
    "TimeBreakdown",
    "kernel_time",
    "pb_phase_times",
    "mlp_effective_bandwidth",
    "mlp_coupled_time",
]


def bottleneck_time(
    machine: MachineSpec,
    requests: float,
    instructions: float,
    *,
    l1_misses: float = 0.0,
) -> float:
    """Seconds for a phase moving ``requests`` lines over ``instructions``."""
    t_mem = requests / machine.mem_bandwidth_requests
    t_instr = instructions / machine.instr_rate + l1_misses * machine.l1_miss_penalty
    return max(t_mem, t_instr) + machine.overlap * min(t_mem, t_instr)


@dataclass(frozen=True)
class TimeBreakdown:
    """Modelled execution time with its resource components."""

    total: float
    memory_bound: float  #: requests / bandwidth
    instruction_bound: float  #: instructions / rate (+ L1 stalls)

    @property
    def bottleneck(self) -> str:
        """Which resource limits this run."""
        return "memory" if self.memory_bound >= self.instruction_bound else "instructions"


def kernel_time(
    kernel,
    counters: MemCounters,
    num_iterations: int = 1,
    *,
    l1_misses: float | None = None,
) -> TimeBreakdown:
    """Modelled time of ``num_iterations`` of a measured kernel.

    ``counters`` must come from ``kernel.measure(num_iterations)``.  For
    PB/DPB kernels the binning-phase L1 misses are computed automatically
    from the bin-insertion-point stream unless given explicitly.
    """
    machine = kernel.machine
    if l1_misses is None:
        l1_misses = 0.0
        layout = getattr(kernel, "layout", None)
        if layout is not None:
            stats = L1Model(machine.l1).analyze(layout.edge_bin_ids())
            l1_misses = stats["misses"] * num_iterations
    requests = counters.total_requests
    instructions = kernel.instruction_count(num_iterations)
    t_mem = requests / machine.mem_bandwidth_requests
    t_instr = instructions / machine.instr_rate + l1_misses * machine.l1_miss_penalty
    total = max(t_mem, t_instr) + machine.overlap * min(t_mem, t_instr)
    return TimeBreakdown(total=total, memory_bound=t_mem, instruction_bound=t_instr)


#: Calibration constant of the MLP coupling: fraction of bandwidth lost per
#: instruction executed between consecutive irregular accesses.  Fit to the
#: paper's Table II reads/s column (baseline 7.5 instr/access -> 911 M/s of
#: the 1191 M/s peak solves to ~0.04).
MLP_ALPHA = 0.04


def mlp_effective_bandwidth(
    machine: MachineSpec, instructions: float, irregular_accesses: float
) -> float:
    """Achievable bandwidth for dependent (irregular) accesses.

    The paper attributes prior work's low bandwidth utilization to the
    instruction window: a core can only keep as many cache misses in
    flight as fit in its reorder window, so padding the inner loop with
    instructions *reduces* sustainable memory throughput ("their memory
    bandwidth utilization is bottlenecked by the instruction window size",
    Section VI-A).  Modelled as

        bw_eff = peak / (1 + MLP_ALPHA * instructions_per_irregular_access)

    which reproduces Table II's measured reads/s for the gather-bound
    systems (baseline 912 vs model 937; Ligra 878 vs 886; CSB 608 vs 564 M
    reads/s) — Galois and GraphMat deviate further because their runtimes
    stall on more than the window.
    """
    if irregular_accesses <= 0:
        return machine.mem_bandwidth_requests
    per_access = instructions / irregular_accesses
    return machine.mem_bandwidth_requests / (1.0 + MLP_ALPHA * per_access)


def mlp_coupled_time(
    machine: MachineSpec, counters: MemCounters, instructions: float
) -> TimeBreakdown:
    """Bottleneck time with the irregular-bandwidth coupling applied.

    Sequential (prefetchable) traffic runs at peak bandwidth; irregular
    traffic at the window-limited rate.  This refines
    :func:`bottleneck_time` for instruction-heavy, gather-bound codes
    (Table II's prior-work rows) without penalizing streaming-dominated
    kernels like PB/DPB, whose traffic is almost entirely sequential.
    """
    irregular = counters.irregular_requests
    sequential = counters.total_requests - irregular
    bw_irregular = mlp_effective_bandwidth(
        machine, instructions, counters.irregular_accesses
    )
    t_mem = (
        sequential / machine.mem_bandwidth_requests + irregular / bw_irregular
    )
    t_instr = instructions / machine.instr_rate
    total = max(t_mem, t_instr) + machine.overlap * min(t_mem, t_instr)
    return TimeBreakdown(total=total, memory_bound=t_mem, instruction_bound=t_instr)


def pb_phase_times(
    kernel,
    counters: MemCounters,
    num_iterations: int = 1,
    *,
    l1_misses: float | None = None,
) -> dict[str, float]:
    """Per-phase modelled times for a PB/DPB kernel (Figure 11).

    Splits the kernel's traffic (by phase label) and instructions (by the
    kernel's phase instruction model), charges binning its L1 insertion
    stalls, and applies the bottleneck model per phase.  ``l1_misses``
    (total, already scaled by iterations) skips the bin-stream L1 analysis
    when the caller has it — it is an O(m) simulation worth sharing.
    """
    machine = kernel.machine
    instr = kernel.phase_instruction_counts(num_iterations)
    if l1_misses is None:
        stats = L1Model(machine.l1).analyze(kernel.layout.edge_bin_ids())
        l1_misses = stats["misses"] * num_iterations
    l1_by_phase = {"binning": l1_misses}
    times = {}
    for phase in ("binning", "accumulate", "apply"):
        requests = counters.phase_reads.get(phase, 0) + counters.phase_writes.get(
            phase, 0
        )
        times[phase] = bottleneck_time(
            machine,
            requests,
            instr.get(phase, 0.0),
            l1_misses=l1_by_phase.get(phase, 0.0),
        )
    return times
