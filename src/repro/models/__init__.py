"""Analytic models: machines, communication (paper Section V), time, GAIL."""

from repro.models.machine import MachineSpec, IVY_BRIDGE_SERVER, SIMULATED_MACHINE
from repro.models.communication import (
    ModelParams,
    paper_pull_reads,
    paper_cb_csr_reads,
    paper_cb_edgelist_reads,
    paper_pb_reads,
    paper_pb_writes,
    pb_beats_pull_line_size,
    pb_beats_cb_blocks,
    detailed_pull,
    detailed_cb_edgelist,
    detailed_pb,
    expected_touched_lines,
)
from repro.models.performance import (
    bottleneck_time,
    TimeBreakdown,
    kernel_time,
    pb_phase_times,
)
from repro.models.gail import GailMetrics, gail_metrics
from repro.models.energy import EnergyModel, DEFAULT_ENERGY_MODEL
from repro.models.utilization import useful_words, line_utilization

__all__ = [
    "MachineSpec",
    "IVY_BRIDGE_SERVER",
    "SIMULATED_MACHINE",
    "ModelParams",
    "paper_pull_reads",
    "paper_cb_csr_reads",
    "paper_cb_edgelist_reads",
    "paper_pb_reads",
    "paper_pb_writes",
    "pb_beats_pull_line_size",
    "pb_beats_cb_blocks",
    "detailed_pull",
    "detailed_cb_edgelist",
    "detailed_pb",
    "expected_touched_lines",
    "bottleneck_time",
    "TimeBreakdown",
    "kernel_time",
    "pb_phase_times",
    "GailMetrics",
    "gail_metrics",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
    "useful_words",
    "line_utilization",
]
