"""GAIL — the Graph Algorithm Iron Law (Beamer et al., IA^3'15).

The paper normalizes communication by the number of directed edges
processed ("this ratio from the GAIL metrics allows us to concisely compare
communication efficiencies", Figure 6).  GAIL decomposes time per edge as::

    time / edge = (instructions / edge) x (cycles / instruction) ... etc.

Here we carry the three per-edge ratios every figure uses: memory requests
per edge (Figures 6-8), instructions per edge, and modelled time per edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.counters import MemCounters

__all__ = ["GailMetrics", "gail_metrics"]


@dataclass(frozen=True)
class GailMetrics:
    """Per-edge efficiency ratios for one kernel execution."""

    requests_per_edge: float
    reads_per_edge: float
    writes_per_edge: float
    instructions_per_edge: float
    seconds_per_edge: float

    @property
    def teps(self) -> float:
        """Traversed edges per second (the inverse of seconds/edge)."""
        if self.seconds_per_edge == 0:
            return float("inf")
        return 1.0 / self.seconds_per_edge


def gail_metrics(
    num_edges: int,
    counters: MemCounters,
    instructions: float,
    seconds: float,
) -> GailMetrics:
    """Assemble the GAIL ratios from raw measurements."""
    if num_edges <= 0:
        raise ValueError(f"num_edges must be positive, got {num_edges}")
    return GailMetrics(
        requests_per_edge=counters.total_requests / num_edges,
        reads_per_edge=counters.total_reads / num_edges,
        writes_per_edge=counters.total_writes / num_edges,
        instructions_per_edge=instructions / num_edges,
        seconds_per_edge=seconds / num_edges,
    )
