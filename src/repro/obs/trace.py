"""Event-level tracing: Chrome-trace/Perfetto export of spans and counters.

:mod:`repro.obs.spans` aggregates by path (count + seconds) because the
steady-state cost of a *log* would dwarf the measurement.  But aggregates
cannot show *when* things happen: whether binning traffic bursts at the
start of an iteration, how the miss rate evolves as the cache warms, or
where the solver spends its time relative to the simulator.  This module
is the opt-in event backend for exactly those questions:

* every completed span additionally records a **duration event** (begin
  timestamp + duration, per thread);
* instrumented code publishes **counter samples** (named tracks of
  timestamped values: per-stream DRAM transfers, miss rate, solver
  residual, model drift) via :func:`counter_sample`;
* the whole recording exports as Chrome-trace JSON (the ``traceEvents``
  array format) loadable in ``chrome://tracing``, Perfetto, or Speedscope.

Recording is scoped exactly like span recording::

    from repro.obs.trace import tracing

    with tracing() as tracer:
        run_experiment(graph, "dpb")
    tracer.save("trace.json")

When no tracer is installed, :func:`current_tracer` returns ``None`` and
:func:`counter_sample` is a no-op after one global read — instrumentation
stays resident in hot paths at no measurable cost (the same contract as
the disabled :func:`~repro.obs.spans.span` fast path).
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs import spans as _spans

__all__ = [
    "TraceRecorder",
    "tracing",
    "current_tracer",
    "counter_sample",
    "TRACE_PROCESS_NAME",
]

#: Process name announced in the trace metadata (one simulated process).
TRACE_PROCESS_NAME = "repro-pb"


class TraceRecorder:
    """Thread-safe event log exporting to Chrome-trace JSON.

    Two event kinds are recorded:

    * **duration events** — one per completed span, with the span's full
      nested path, wall-clock begin time, and duration;
    * **counter samples** — ``(track, {series: value})`` points on a
      shared timeline, rendered by trace viewers as counter tracks.

    Timestamps are microseconds relative to the recorder's creation, from
    the same ``perf_counter`` clock the spans use, so duration events and
    counter samples line up on one timeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._events: list[dict] = []
        self._tids: dict[int, int] = {}
        self._processes: dict[int, str] = {}

    @property
    def origin(self) -> float:
        """``perf_counter`` reading at recorder creation (timestamp zero)."""
        return self._origin

    # ------------------------------------------------------------------
    # recording (called from instrumented code)
    # ------------------------------------------------------------------
    def _tid(self) -> int:
        """Stable small integer for the calling thread (0 = first seen)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
        return tid

    def record_span(self, path: str, start: float, end: float) -> None:
        """Log one completed span as a complete ("X") duration event."""
        name = path.rsplit(_spans.PATH_SEPARATOR, 1)[-1]
        event = {
            "name": name,
            "cat": "span",
            "ph": "X",
            "ts": (start - self._origin) * 1e6,
            "dur": (end - start) * 1e6,
            "pid": 0,
            "args": {"path": path},
        }
        with self._lock:
            event["tid"] = self._tid()
            self._events.append(event)

    def counter(
        self,
        track: str,
        values: dict[str, float],
        *,
        pid: int = 0,
        at: float | None = None,
    ) -> None:
        """Log one sample on counter track ``track``.

        ``values`` maps series names to numbers; viewers stack multiple
        series of one track (e.g. ``{"reads": r, "writes": w}``).  The
        fleet collector passes ``pid``/``at`` to place worker resource
        samples on that worker's own track at the emitter's (aligned)
        timestamp; native in-process samples use the defaults.
        """
        when = time.perf_counter() if at is None else at
        event = {
            "name": track,
            "cat": "counter",
            "ph": "C",
            "ts": (when - self._origin) * 1e6,
            "pid": pid,
            "tid": 0,
            "args": {k: float(v) for k, v in values.items()},
        }
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # fleet merging (called by repro.obs.events.EventBus.merge_into_trace)
    # ------------------------------------------------------------------
    def add_process(self, pid: int, name: str) -> None:
        """Announce a named process track (one per fleet worker)."""
        with self._lock:
            self._processes[pid] = name

    def complete_event(
        self,
        *,
        pid: int,
        name: str,
        start: float,
        end: float,
        tid: int = 0,
        cat: str = "span",
        args: dict | None = None,
    ) -> None:
        """Log a complete ("X") event on an explicit process track.

        ``start``/``end`` are ``perf_counter`` readings already aligned
        to this recorder's clock (the collector applies worker offsets
        before calling).
        """
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (start - self._origin) * 1e6,
            "dur": max(0.0, (end - start)) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(args or {}),
        }
        with self._lock:
            self._events.append(event)

    def instant_event(
        self,
        *,
        pid: int,
        name: str,
        ts: float,
        tid: int = 0,
        cat: str = "event",
        args: dict | None = None,
    ) -> None:
        """Log an instant ("i") event — a fleet lifecycle marker."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped flag line in viewers
            "ts": (ts - self._origin) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(args or {}),
        }
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """Snapshot of all recorded events, in timestamp order."""
        with self._lock:
            return sorted(self._events, key=lambda e: e["ts"])

    def counter_tracks(self) -> list[str]:
        """Names of all counter tracks sampled at least once, sorted."""
        with self._lock:
            return sorted({e["name"] for e in self._events if e["ph"] == "C"})

    def to_chrome(self) -> dict:
        """The Chrome-trace JSON object (``traceEvents`` array format)."""
        with self._lock:
            processes = dict(self._processes)
        processes.setdefault(0, TRACE_PROCESS_NAME)
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
            for pid, name in sorted(processes.items())
        ]
        return {
            "traceEvents": metadata + self.events(),
            "displayTimeUnit": "ms",
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# global tracer (the event sink the span machinery notifies)
# ----------------------------------------------------------------------
def current_tracer() -> TraceRecorder | None:
    """The active tracer, or ``None`` — the one-read disabled fast path."""
    sink = _spans.current_event_sink()
    return sink if isinstance(sink, TraceRecorder) else None


def counter_sample(track: str, values: dict[str, float]) -> None:
    """Publish one counter sample if tracing is active; no-op otherwise."""
    tracer = _spans.current_event_sink()
    if tracer is not None:
        tracer.counter(track, values)


class tracing:
    """Context manager scoping an active :class:`TraceRecorder`.

    Restores the previously installed sink (or none) on exit, so scopes
    nest like :class:`repro.obs.spans.recording`.
    """

    def __init__(self, tracer: TraceRecorder | None = None) -> None:
        self._tracer = tracer if tracer is not None else TraceRecorder()
        self._previous: TraceRecorder | None = None

    def __enter__(self) -> TraceRecorder:
        self._previous = _spans.current_event_sink()
        _spans.set_event_sink(self._tracer)
        return self._tracer

    def __exit__(self, *exc: object) -> None:
        _spans.set_event_sink(self._previous)
        return None
