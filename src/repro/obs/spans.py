"""Span-based wall-clock instrumentation.

The simulated experiments measure *modelled* time; the observability layer
additionally records where the *host* time of a run goes (trace generation,
cache simulation, kernel execution phases) as nestable, named spans::

    from repro.obs import recording, span

    with recording() as rec:
        with span("binning"):
            with span("sort"):
                ...
    rec.as_dict()  # {"binning": {...}, "binning/sort": {...}}

Design constraints (why this is not just :class:`repro.utils.timing.Timer`):

* **near-zero overhead when disabled** — instrumentation is compiled into
  hot library paths (kernel inner phases, the cache-simulation loop), so
  when no recorder is installed :func:`span` returns a shared no-op object
  without allocating or reading the clock;
* **nestable** — a span entered inside another span records under the
  parent's path (``"experiment/measure/simulate[flru]"``), giving a poor
  man's flame graph;
* **thread-safe** — the active-span stack is thread-local (each thread
  nests independently) while the recorder aggregates under a lock, so the
  threaded kernels in :mod:`repro.parallel` can be instrumented too.

Spans aggregate by path (count + total seconds) rather than logging every
event: experiment runs enter the same phase once per iteration and per bin,
and an event log would dwarf the measurement it describes.  When an event
log *is* wanted, an **event sink** (see :mod:`repro.obs.trace`) can be
installed alongside or instead of the aggregate recorder; each completed
span then additionally reports its full path and begin/end timestamps to
the sink.  With neither installed, :func:`span` still returns the shared
no-op object without touching the clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "PATH_SEPARATOR",
    "SpanStats",
    "SpanRecorder",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "current_recorder",
    "recording",
    "set_event_sink",
    "current_event_sink",
]

#: Separator between nested span names in an aggregated path.
PATH_SEPARATOR = "/"


@dataclass
class SpanStats:
    """Aggregate of every completed span at one path."""

    count: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {"count": self.count, "seconds": self.seconds}


class SpanRecorder:
    """Thread-safe aggregation of completed spans, keyed by nested path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[str, SpanStats] = {}

    def record(self, path: str, seconds: float) -> None:
        """Fold one completed span into the aggregate for ``path``."""
        with self._lock:
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = SpanStats()
            stats.count += 1
            stats.seconds += seconds

    def stats(self, path: str) -> SpanStats:
        """Aggregate for ``path`` (zeros if the path never completed)."""
        with self._lock:
            return self._stats.get(path, SpanStats())

    def paths(self) -> list[str]:
        """All recorded paths, sorted (parents before children)."""
        with self._lock:
            return sorted(self._stats)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready ``{path: {"count": n, "seconds": s}}`` snapshot."""
        with self._lock:
            return {path: s.as_dict() for path, s in sorted(self._stats.items())}

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()


# ----------------------------------------------------------------------
# global recorder + event sink + thread-local nesting state
# ----------------------------------------------------------------------
_recorder: SpanRecorder | None = None
#: Optional event backend (duck-typed: ``record_span(path, start, end)``).
#: Kept here rather than in :mod:`repro.obs.trace` so the disabled check
#: in :func:`span` stays two module-global reads with no imports.
_event_sink = None
_local = threading.local()


class _NullSpan:
    """Shared no-op context manager returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: pushes its path on the thread's stack while entered."""

    __slots__ = ("_name", "_recorder", "_sink", "_path", "_start")

    def __init__(self, name: str, recorder: SpanRecorder | None, sink) -> None:
        self._name = name
        self._recorder = recorder
        self._sink = sink

    def __enter__(self) -> "_Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        if stack:
            self._path = stack[-1] + PATH_SEPARATOR + self._name
        else:
            self._path = self._name
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        _local.stack.pop()
        if self._recorder is not None:
            self._recorder.record(self._path, end - self._start)
        if self._sink is not None:
            self._sink.record_span(self._path, self._start, end)
        return None

    @property
    def path(self) -> str:
        """Full nested path (valid between ``__enter__`` and ``__exit__``)."""
        return self._path


def span(name: str):
    """Context manager timing one named region under the current nesting.

    When recording is disabled (the default) this returns a shared no-op
    object: one global read, no allocation, no clock access — cheap enough
    to leave in the cache-simulation loop and kernel phases permanently.
    """
    recorder = _recorder
    sink = _event_sink
    if recorder is None and sink is None:
        return _NULL_SPAN
    return _Span(name, recorder, sink)


def enable(recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Install ``recorder`` (or a fresh one) as the active recorder."""
    global _recorder
    if recorder is None:
        recorder = SpanRecorder()
    _recorder = recorder
    return recorder


def disable() -> None:
    """Remove the active recorder; :func:`span` becomes a no-op again."""
    global _recorder
    _recorder = None


def is_enabled() -> bool:
    return _recorder is not None


def current_recorder() -> SpanRecorder | None:
    return _recorder


def set_event_sink(sink) -> None:
    """Install (or with ``None``, remove) the span event sink.

    The sink receives ``record_span(path, start, end)`` for every span
    completed anywhere in the process; ``start``/``end`` come from
    ``time.perf_counter``.  :class:`repro.obs.trace.tracing` manages this
    for the common case.
    """
    global _event_sink
    _event_sink = sink


def current_event_sink():
    """The installed span event sink, or ``None``."""
    return _event_sink


class recording:
    """Context manager scoping an active recorder::

        with recording() as rec:
            ...
        rec.as_dict()

    Restores whatever recorder (or none) was active before, so scopes
    nest — the inner scope's spans simply go to the inner recorder.
    """

    def __init__(self, recorder: SpanRecorder | None = None) -> None:
        self._recorder = recorder if recorder is not None else SpanRecorder()
        self._previous: SpanRecorder | None = None

    def __enter__(self) -> SpanRecorder:
        self._previous = current_recorder()
        return enable(self._recorder)

    def __exit__(self, *exc: object) -> None:
        global _recorder
        _recorder = self._previous
        return None
