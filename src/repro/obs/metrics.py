"""Histogram and time-series metrics for the memory pipeline.

Counters (:mod:`repro.memsim.counters`) answer "how much traffic, total";
the metrics registry answers the *distribution* questions behind the
paper's Section VI analysis — how reuse distances spread per stream (why
the baseline gathers miss), how destinations pack into bins (why the
accumulate phase hits), how the miss rate settles across iterations:

    with collecting() as registry:
        run_experiment(graph, "dpb")
    registry.as_dict()   # serialized into RunReport.metrics

Two instrument kinds, both chosen for bounded size regardless of run
length:

* :class:`Histogram` — power-of-two bucketed counts plus free-form
  labelled buckets (e.g. ``"cold"`` for first-touch reuse distances);
* :class:`Series` — an append-only list of samples, used for
  per-iteration values where the length is the iteration count.

Producers (memsim, kernels) publish through :func:`current_registry`,
which returns ``None`` when collection is off — the same one-global-read
disabled fast path as :func:`repro.obs.spans.span`.  This module imports
nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

import threading

__all__ = [
    "Histogram",
    "Series",
    "MetricsRegistry",
    "collecting",
    "current_registry",
    "bucket_label",
]


def bucket_label(value: int) -> str:
    """Power-of-two bucket label covering ``value``.

    ``0`` and ``1`` get exact buckets; larger values land in
    ``[2^k, 2^(k+1))`` half-open ranges, so distributions spanning many
    decades (reuse distances, bin occupancies) stay a handful of buckets.
    """
    if value < 0:
        raise ValueError(f"histogram values must be >= 0, got {value}")
    if value <= 1:
        return str(value)
    low = 1 << (value.bit_length() - 1)
    return f"[{low},{2 * low})"


def _bucket_sort_key(label: str) -> tuple[int, int]:
    """Numeric buckets in range order, labelled buckets after, by name."""
    if label.startswith("["):
        return (0, int(label[1:].split(",", 1)[0]))
    if label.isdigit():
        return (0, int(label))
    return (1, 0)


class Histogram:
    """Bucketed counts: power-of-two value buckets + labelled buckets."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def observe(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value`` to its log2 bucket."""
        self.observe_label(bucket_label(value), count)

    def observe_label(self, label: str, count: int = 1) -> None:
        """Add ``count`` occurrences to the free-form bucket ``label``."""
        with self._lock:
            self._counts[label] = self._counts.get(label, 0) + count

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def as_dict(self) -> dict[str, int]:
        """JSON-ready ``{bucket: count}``, buckets in value order."""
        with self._lock:
            items = list(self._counts.items())
        return dict(sorted(items, key=lambda kv: (_bucket_sort_key(kv[0]), kv[0])))

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "Histogram":
        hist = cls()
        for label, count in data.items():
            hist.observe_label(label, count)
        return hist


class Series:
    """Append-only sample list (one value per iteration, typically)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: list[float] = []

    def append(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def as_dict(self) -> list[float]:
        return self.values()

    @classmethod
    def from_dict(cls, data: list[float]) -> "Series":
        series = cls()
        for value in data:
            series.append(value)
        return series


class MetricsRegistry:
    """Named histograms and series, created on first use.

    Producer code does not declare instruments up front; it asks for them
    by name (``registry.histogram("reuse_distance/vertex_sums")``) and the
    registry creates them on demand.  Names are free-form but the
    conventions in ``docs/metrics_schema.md`` keep reports comparable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, Series] = {}

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            return hist

    def series(self, name: str) -> Series:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = Series()
            return series

    def histogram_names(self) -> list[str]:
        with self._lock:
            return sorted(self._histograms)

    def series_names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{"histograms": {...}, "series": {...}}``."""
        with self._lock:
            histograms = dict(self._histograms)
            series = dict(self._series)
        return {
            "histograms": {name: histograms[name].as_dict() for name in sorted(histograms)},
            "series": {name: series[name].as_dict() for name in sorted(series)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for name, counts in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(counts)
        for name, values in data.get("series", {}).items():
            registry._series[name] = Series.from_dict(values)
        return registry


# ----------------------------------------------------------------------
# global registry (the producer-side hook)
# ----------------------------------------------------------------------
_registry: MetricsRegistry | None = None


def current_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when collection is off."""
    return _registry


class collecting:
    """Context manager scoping an active :class:`MetricsRegistry`.

    Restores the previously active registry (or none) on exit, so scopes
    nest like :class:`repro.obs.spans.recording`.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        global _registry
        self._previous = _registry
        _registry = self._registry
        return self._registry

    def __exit__(self, *exc: object) -> None:
        global _registry
        _registry = self._previous
        return None
