"""Live fleet progress for ``repro-pb plan`` / ``reproduce``.

A :class:`ProgressRenderer` subscribes to a
:class:`repro.obs.events.EventBus` and renders the sweep's state as it
evolves: cells done / running / retrying / cached, an ETA from the
observed cell rate, and per-worker activity.  Three render modes:

``live``
    a single status line redrawn in place (carriage return + ANSI
    erase-line) — for interactive terminals;
``plain``
    a full line per state change, throttled to one per second — no ANSI
    escapes, no carriage returns, safe for CI logs and redirected output;
``off``
    nothing.

``mode="auto"`` picks ``live`` on a TTY and ``plain`` otherwise, and the
CLI drops to ``off`` under ``-q`` — progress output never corrupts a
pipeline or a CI log (ISSUE 7 satellite).  The renderer is a passive
subscriber: it never raises into the engine (the bus already isolates
subscriber errors) and keeps no reference to cells or results.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from repro.obs.events import Event, EventBus

__all__ = ["ProgressRenderer", "attach_progress", "resolve_mode"]

#: Events after which a ``plain`` line is worth printing (state changed
#: in a way a log reader cares about).
_MILESTONES = frozenset(
    {
        "plan_started",
        "cell_finished",
        "cache_hit",
        "checkpoint_resumed",
        "cell_retried",
        "cell_timeout",
        "cell_faulted",
        "worker_replaced",
    }
)


def resolve_mode(mode: str, stream: TextIO, *, quiet: bool = False) -> str:
    """Resolve ``auto`` against the stream and the ``-q`` flag."""
    if quiet:
        return "off"
    if mode == "auto":
        try:
            interactive = stream.isatty()
        except Exception:  # noqa: BLE001 — odd streams count as non-TTY
            interactive = False
        return "live" if interactive else "plain"
    return mode


class ProgressRenderer:
    """Folds the event stream into one evolving progress line.

    ``total`` (the number of unique cells) is taken from the
    ``plan_started`` event when one arrives, so callers rarely pass it.
    ``throttle`` bounds redraw frequency; terminal events always render
    so the final state is never stale.
    """

    def __init__(
        self,
        *,
        mode: str = "plain",
        stream: TextIO | None = None,
        total: int | None = None,
        throttle: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if mode not in ("live", "plain", "off"):
            raise ValueError(f"unknown progress mode {mode!r}")
        self.mode = mode
        self.stream = stream if stream is not None else sys.stderr
        self.total = total
        self.throttle = throttle if throttle is not None else (
            0.1 if mode == "live" else 1.0
        )
        self._clock = clock
        self._started = clock()
        self._last_render = float("-inf")
        self._line_open = False  # a live line is on screen, un-terminated
        # state
        self.executed = 0
        self.cached = 0
        self.resumed = 0
        self.retries = 0
        self.faults = 0
        self.failed = 0
        self.replacements = 0
        self.running: dict[str, str] = {}  # worker -> cell key
        self._terminal: set[str] = set()  # fingerprints already counted done

    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        return self.executed + self.cached + self.resumed

    def eta_seconds(self) -> float | None:
        """Remaining-time estimate from the observed completion rate."""
        if self.total is None or self.done == 0 or self.done >= self.total:
            return None
        elapsed = self._clock() - self._started
        return elapsed / self.done * (self.total - self.done)

    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Bus subscriber: fold one event and maybe redraw."""
        if self.mode == "off":
            return
        key = event.fingerprint or event.cell or ""
        if event.kind == "plan_started":
            total = event.payload.get("cells_unique")
            if total is not None:
                self.total = (self.total or 0) + int(total)
        elif event.kind == "cell_started":
            self.running[event.worker] = str(event.cell)
        elif event.kind == "cell_finished":
            self.running.pop(event.worker, None)
            if key not in self._terminal:
                self._terminal.add(key)
                self.executed += 1
        elif event.kind == "cache_hit":
            if key not in self._terminal:
                self._terminal.add(key)
                self.cached += 1
        elif event.kind == "checkpoint_resumed":
            if key not in self._terminal:
                self._terminal.add(key)
                self.resumed += 1
        elif event.kind == "cell_retried":
            self.retries += 1
        elif event.kind in ("cell_faulted", "cell_timeout"):
            self.faults += 1
            if event.payload.get("permanent"):
                self.failed += 1
        elif event.kind == "worker_replaced":
            self.replacements += 1
            self.running.clear()
        self._render(force=event.kind in _MILESTONES and self.mode == "plain")

    # ------------------------------------------------------------------
    def status_line(self) -> str:
        """The current one-line summary (also what the tests assert on)."""
        if self.total is not None:
            head = f"cells {self.done}/{self.total}"
        else:
            head = f"cells {self.done}"
        parts = [head]
        if self.running:
            parts.append(f"{len(self.running)} running")
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.replacements:
            parts.append(f"{self.replacements} pool replacement(s)")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        line = ", ".join(parts)
        if self.running and self.mode == "live":
            # Worker detail only on the live line: it churns too fast to
            # be useful in an append-only log.
            busy = " ".join(
                f"{worker}:{cell}" for worker, cell in sorted(self.running.items())
            )
            line += f" [{busy}]"
        return line

    def _render(self, *, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.throttle:
            return
        self._last_render = now
        try:
            if self.mode == "live":
                self.stream.write(f"\r\x1b[2K{self.status_line()}")
                self._line_open = True
            else:
                self.stream.write(self.status_line() + "\n")
            self.stream.flush()
        except Exception:  # noqa: BLE001 — a closed stream must not kill the run
            self.mode = "off"

    def finish(self) -> None:
        """Render the final state and release the live line."""
        if self.mode == "off":
            return
        self._last_render = float("-inf")
        self._render(force=True)
        if self.mode == "live" and self._line_open:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except Exception:  # noqa: BLE001
                pass
            self._line_open = False


def attach_progress(
    bus: EventBus,
    *,
    mode: str = "auto",
    stream: TextIO | None = None,
    quiet: bool = False,
    **kwargs: Any,
) -> ProgressRenderer | None:
    """Subscribe a renderer to ``bus``; ``None`` when resolved mode is off."""
    stream = stream if stream is not None else sys.stderr
    resolved = resolve_mode(mode, stream, quiet=quiet)
    if resolved == "off":
        return None
    renderer = ProgressRenderer(mode=resolved, stream=stream, **kwargs)
    bus.subscribe(renderer.handle)
    return renderer
