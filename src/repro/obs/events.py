"""Cross-process event bus: the fleet flight recorder.

Spans (:mod:`repro.obs.spans`) and traces (:mod:`repro.obs.trace`) record
what happens *in this process* — but since the sweep engine moved cells
into ``ProcessPool`` workers, the interesting lifecycle (per-cell spans,
retries, faults, resource pressure) happens in child processes where the
parent's recorder cannot see it.  This module closes that gap with a
schema-versioned structured event stream:

* **worker processes** emit lifecycle events (``cell_started`` /
  ``cell_finished`` / ``worker_spawned``) and periodic resource samples
  (RSS and CPU time via :mod:`resource` / ``/proc``) over a
  ``multiprocessing`` manager queue installed by the pool initializer;
* the **parent** emits the events only it can know about
  (``cell_retried`` / ``cell_timeout`` / ``cell_faulted`` /
  ``cache_hit`` / ``checkpoint_resumed`` / ``worker_replaced`` /
  ``plan_started``) directly into the same stream;
* an :class:`EventBus` collects both sides, assigns a global arrival
  order, estimates per-worker clock offsets, notifies subscribers (the
  live progress renderer), merges worker-side span trees into a
  :class:`~repro.obs.trace.TraceRecorder` as per-worker tracks, and
  folds everything into the ``fleet`` section of a run report
  (schema 1.4, ``docs/metrics_schema.md``).

Arrival order is **causal per cell**: the engine drains the queue before
it reacts to a completed attempt, and a worker's ``put`` completes
before its future resolves, so ``cell_started`` always precedes the
parent's ``cell_faulted``/``cell_retried`` for the same attempt, which
precede the next attempt's ``cell_started``.  (A *real* wall-clock
timeout is the one exception: the abandoned worker may deliver a late
``cell_finished`` after the parent moved on, which is why terminal cell
accounting dedups by fingerprint.)

When no bus is installed, :func:`emit` is a no-op after one global read
— the same disabled-fast-path contract as spans and traces, so the
instrumentation lives permanently in the sweep engine.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "EVENTS_SCHEMA_VERSION",
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "collecting",
    "current_bus",
    "emit",
    "in_worker",
    "install",
    "uninstall",
    "worker_deinit",
    "worker_init",
    "worker_span_sink",
    "drain_worker_buffers",
    "resource_snapshot",
    "gail_payload",
]

#: Version of the event wire/report schema (``docs/metrics_schema.md``).
#: Major bump on incompatible change, minor on additive; a collector
#: drops messages from a different major (counted in ``dropped``).
#: 1.1: shm_* lifecycle events, affinity_assigned, fleet ``shm``
#: section and per-worker ``resident_graphs``.
#: 1.2: serve_* events from the query layer (:mod:`repro.serve`) —
#: per-request, per-batch, cache-hit, and graph-update telemetry.
#: 1.3: cluster lifecycle events (:mod:`repro.cluster`) — worker
#: join/loss and the lease lifecycle — plus the fleet ``cluster``
#: section.
EVENTS_SCHEMA_VERSION = "1.3"

#: Every recognised event kind.
EVENT_KINDS = (
    "plan_started",        # parent: a compiled plan begins executing
    "cell_started",        # worker: one attempt of one cell begins
    "cell_finished",       # worker: an attempt completed with a result
    "cell_retried",        # parent: a failed attempt will be retried
    "cell_timeout",        # parent: an attempt overran its deadline
    "cell_faulted",        # parent: an attempt failed (crash/corrupt)
    "cache_hit",           # parent: a cell was satisfied from the cache
    "checkpoint_resumed",  # parent: a cell was replayed from checkpoint
    "worker_spawned",      # worker: a pool worker came up
    "worker_replaced",     # parent: a pool was restarted or replaced
    "resource_sample",     # worker: periodic RSS / CPU-time sample
    "shm_published",       # parent: a graph entered the shared-memory plane
    "shm_attached",        # worker: a graph was mapped zero-copy, first touch
    "shm_evicted",         # parent: a segment was unlinked
    "affinity_assigned",   # parent: cells grouped into worker lanes
    "serve_request",       # server: one PPR query accepted (hit or miss)
    "serve_batch",         # server: one coalesced batch solved (occupancy)
    "serve_cache_hit",     # server: a query answered from the result cache
    "serve_graph_updated", # server: an edge-update batch was applied
    "worker_joined",       # coordinator: a fleet worker connected
    "worker_lost",         # coordinator: a fleet worker disconnected/expired
    "lease_granted",       # coordinator: a cell was leased to a worker
    "lease_expired",       # coordinator: a lease outlived its heartbeats
    "lease_completed",     # coordinator: a leased cell's result landed
)

#: Worker name used for events emitted by the parent process.
MAIN_WORKER = "main"


# ----------------------------------------------------------------------
# resource sampling (worker- and parent-side)
# ----------------------------------------------------------------------
def resource_snapshot() -> dict[str, float]:
    """Current RSS (bytes) and cumulative CPU seconds of this process.

    Prefers ``/proc/self/statm`` for live RSS (Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.  Never raises — a
    telemetry read must not take down a worker.
    """
    rss = 0.0
    cpu = 0.0
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        cpu = float(usage.ru_utime + usage.ru_stime)
        # ru_maxrss is KiB on Linux, bytes on macOS; normalize to bytes
        # assuming KiB (the Linux CI/dev platform) when the value is
        # implausibly small for bytes.
        peak = float(usage.ru_maxrss)
        rss = peak * 1024.0 if peak < 1 << 32 else peak
    except Exception:  # noqa: BLE001 — telemetry is best-effort
        pass
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        rss = float(pages * os.sysconf("SC_PAGE_SIZE"))
    except Exception:  # noqa: BLE001 — not Linux, keep the rusage peak
        pass
    return {"rss_bytes": rss, "cpu_seconds": cpu}


def gail_payload(result: Any) -> dict[str, float] | None:
    """GAIL per-edge ratios of ``result`` if it is Measurement-like.

    Duck-typed on ``gail()`` so the obs layer keeps importing nothing
    from the harness; any cell result carrying MemCounters-backed GAIL
    metrics contributes its decomposition to the fleet record.
    """
    gail = getattr(result, "gail", None)
    if not callable(gail):
        return None
    try:
        metrics = gail()
        return {
            "requests_per_edge": float(metrics.requests_per_edge),
            "reads_per_edge": float(metrics.reads_per_edge),
            "writes_per_edge": float(metrics.writes_per_edge),
            "instructions_per_edge": float(metrics.instructions_per_edge),
            "seconds_per_edge": float(metrics.seconds_per_edge),
        }
    except Exception:  # noqa: BLE001 — non-conforming results carry no GAIL
        return None


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass
class Event:
    """One collected event, as seen by the parent.

    ``ts`` is the emitter's ``perf_counter`` reading; ``adjusted_ts``
    maps it onto the parent clock using the per-worker offset estimate
    (minimum observed queue latency).  ``index`` is the global arrival
    order — causal per cell, see the module docstring.
    """

    kind: str
    ts: float
    worker: str
    seq: int
    cell: str | None = None
    fingerprint: str | None = None
    attempt: int | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    index: int = -1
    adjusted_ts: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "ts": self.adjusted_ts,
            "worker": self.worker,
            "seq": self.seq,
            "cell": self.cell,
            "fingerprint": self.fingerprint,
            "attempt": self.attempt,
            "payload": dict(self.payload),
        }


def _message(
    kind: str,
    worker: str,
    seq: int,
    cell: Any,
    fingerprint: str | None,
    attempt: int | None,
    payload: dict[str, Any],
) -> dict[str, Any]:
    """Wire form of one event (a plain picklable dict)."""
    return {
        "v": EVENTS_SCHEMA_VERSION,
        "kind": kind,
        "ts": time.perf_counter(),
        "worker": worker,
        "seq": seq,
        "cell": None if cell is None else str(cell),
        "fingerprint": fingerprint,
        "attempt": attempt,
        "payload": payload,
    }


# ----------------------------------------------------------------------
# the parent-side bus / collector
# ----------------------------------------------------------------------
class EventBus:
    """Collects the fleet's event stream in the parent process.

    The bus is also the parent's emitter (``bus.emit``) and, through
    :func:`channel`, the factory of the queue proxy worker processes
    write to.  ``pump()`` drains that queue — the resilient engine calls
    it at every scheduling step, which is what makes arrival order
    causal (see module docstring).
    """

    #: Seconds between forced queue drains while the engine is waiting
    #: on cell completions; also the default worker sample interval.
    pump_interval = 0.25

    def __init__(self, *, sample_interval: float = 0.5) -> None:
        self.sample_interval = sample_interval
        self._lock = threading.Lock()
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0
        self._dropped = 0
        self._offsets: dict[str, float] = {MAIN_WORKER: 0.0}
        self._manager = None
        self._queue = None

    # ------------------------------------------------------------------
    # emission (parent side)
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        cell: Any = None,
        fingerprint: str | None = None,
        attempt: int | None = None,
        **payload: Any,
    ) -> None:
        """Record one parent-side event and notify subscribers."""
        with self._lock:
            seq = self._seq
            self._seq += 1
        message = _message(kind, MAIN_WORKER, seq, cell, fingerprint, attempt, payload)
        self._ingest(message)

    # ------------------------------------------------------------------
    # the worker channel
    # ------------------------------------------------------------------
    def channel(self):
        """The queue proxy workers write to (created lazily).

        A ``multiprocessing.Manager`` queue rather than a raw
        ``multiprocessing.Queue`` because the proxy pickles, so it can
        ride through ``ProcessPoolExecutor`` initializer args under any
        start method.
        """
        if self._queue is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self._queue = self._manager.Queue()
        return self._queue

    def worker_initializer(self) -> tuple[Callable, tuple]:
        """``(initializer, initargs)`` for a pool feeding this bus."""
        return worker_init, (self.channel(), self.sample_interval)

    def pump(self) -> int:
        """Drain every queued worker message; return how many arrived."""
        if self._queue is None:
            return 0
        drained = 0
        while True:
            try:
                message = self._queue.get_nowait()
            except queue_module.Empty:
                break
            except (OSError, EOFError, BrokenPipeError):
                break  # manager is gone; nothing more will arrive
            self._ingest(message)
            drained += 1
        return drained

    def close(self) -> None:
        """Drain once more, then shut the manager process down."""
        self.pump()
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # noqa: BLE001 — already-dead manager is fine
                pass
            self._manager = None
            self._queue = None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, message: dict[str, Any]) -> None:
        """Ingest one wire-form message from an out-of-band transport.

        The pool path delivers worker messages through the manager
        queue (:meth:`pump`); the cluster coordinator receives them
        framed over its sockets and forwards them here, so a fleet
        worker's telemetry lands in the same stream with the same
        schema/versioning rules.
        """
        self._ingest(message)

    def _ingest(self, message: dict[str, Any]) -> None:
        version = str(message.get("v", ""))
        if version.split(".", 1)[0] != EVENTS_SCHEMA_VERSION.split(".", 1)[0]:
            with self._lock:
                self._dropped += 1
            return
        arrival = time.perf_counter()
        event = Event(
            kind=message["kind"],
            ts=float(message["ts"]),
            worker=str(message["worker"]),
            seq=int(message["seq"]),
            cell=message.get("cell"),
            fingerprint=message.get("fingerprint"),
            attempt=message.get("attempt"),
            payload=dict(message.get("payload") or {}),
        )
        with self._lock:
            # Clock alignment: the smallest observed (arrival - ts) gap
            # bounds the worker clock offset from above by one queue
            # latency; on Linux both clocks are CLOCK_MONOTONIC so the
            # estimate converges to ~0.
            gap = arrival - event.ts
            known = self._offsets.get(event.worker)
            if known is None or gap < known:
                self._offsets[event.worker] = gap
            event.index = len(self._events)
            self._events.append(event)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:  # noqa: BLE001 — a bad subscriber must not
                pass  # take down the sweep engine's dispatch loop

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Callable[[Event], None]) -> None:
        """Call ``subscriber(event)`` for every event as it arrives."""
        with self._lock:
            self._subscribers.append(subscriber)

    def offset(self, worker: str) -> float:
        """Estimated parent-clock offset of ``worker`` (0 for the parent)."""
        with self._lock:
            return self._offsets.get(worker, 0.0)

    def events(self) -> list[Event]:
        """Every collected event in arrival order, offsets applied."""
        with self._lock:
            snapshot = list(self._events)
            offsets = dict(self._offsets)
        for event in snapshot:
            event.adjusted_ts = event.ts + offsets.get(event.worker, 0.0)
        return snapshot

    def dropped(self) -> int:
        """Messages discarded for an incompatible schema major."""
        with self._lock:
            return self._dropped

    def workers(self) -> list[str]:
        """Every worker that emitted at least one event, first-seen order."""
        seen: dict[str, None] = {}
        for event in self.events():
            seen.setdefault(event.worker, None)
        return list(seen)

    # ------------------------------------------------------------------
    # fleet summary (the report's ``fleet`` section, schema 1.4)
    # ------------------------------------------------------------------
    def fleet_summary(self) -> dict[str, Any]:
        """Fold the event stream into the run report's ``fleet`` section.

        Terminal cell accounting dedups by fingerprint so a late
        ``cell_finished`` from a timed-out-then-retried cell cannot
        double count: ``executed + cached + resumed`` equals the number
        of distinct cells that reached a terminal success state.
        """
        events = self.events()
        by_kind: dict[str, int] = {}
        executed: set[str] = set()
        cached: set[str] = set()
        resumed: set[str] = set()
        failed: set[str] = set()
        retries = 0
        faults = 0
        injected = 0
        timeouts = 0
        gail: dict[str, dict[str, float]] = {}
        per_worker: dict[str, dict[str, float]] = {}
        spawned = 0
        replaced = 0
        seconds: list[float] = []
        shm_published = 0
        shm_published_bytes = 0.0
        shm_attaches = 0
        shm_evicted = 0
        workers_joined = 0
        workers_lost = 0
        leases_granted = 0
        leases_expired = 0
        leases_completed = 0
        graphs_shipped = 0

        def worker_record(name: str) -> dict[str, float]:
            return per_worker.setdefault(
                name,
                {"cells": 0, "busy_seconds": 0.0, "peak_rss_bytes": 0.0,
                 "cpu_seconds": 0.0, "resident_graphs": 0},
            )

        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            key = event.fingerprint or event.cell or ""
            if event.kind == "cell_finished":
                executed.add(key)
                record = worker_record(event.worker)
                record["cells"] += 1
                record["busy_seconds"] += float(event.payload.get("seconds", 0.0))
                seconds.append(float(event.payload.get("seconds", 0.0)))
            elif event.kind == "cache_hit":
                cached.add(key)
            elif event.kind == "checkpoint_resumed":
                resumed.add(key)
            elif event.kind == "cell_retried":
                retries += 1
            elif event.kind in ("cell_faulted", "cell_timeout"):
                faults += 1
                if event.kind == "cell_timeout":
                    timeouts += 1
                if event.payload.get("injected"):
                    injected += 1
                if event.payload.get("permanent"):
                    failed.add(key)
            elif event.kind == "worker_spawned":
                spawned += 1
            elif event.kind == "worker_replaced":
                replaced += 1
            elif event.kind == "shm_published":
                shm_published += 1
                shm_published_bytes += float(event.payload.get("bytes", 0.0))
            elif event.kind == "shm_attached":
                shm_attaches += 1
                record = worker_record(event.worker)
                record["resident_graphs"] = max(
                    record["resident_graphs"],
                    int(event.payload.get("resident", record["resident_graphs"] + 1)),
                )
            elif event.kind == "shm_evicted":
                shm_evicted += 1
            elif event.kind == "worker_joined":
                workers_joined += 1
            elif event.kind == "worker_lost":
                workers_lost += 1
            elif event.kind == "lease_granted":
                leases_granted += 1
                if event.payload.get("graph_shipped"):
                    graphs_shipped += 1
            elif event.kind == "lease_expired":
                leases_expired += 1
            elif event.kind == "lease_completed":
                leases_completed += 1
            if event.kind in ("cell_finished", "cache_hit", "checkpoint_resumed"):
                decomposition = event.payload.get("gail")
                if decomposition and event.cell:
                    gail[event.cell] = {
                        k: float(v) for k, v in decomposition.items()
                    }
            if event.kind in ("resource_sample", "worker_spawned", "cell_finished"):
                resources = event.payload.get("resources")
                if resources:
                    record = worker_record(event.worker)
                    record["peak_rss_bytes"] = max(
                        record["peak_rss_bytes"],
                        float(resources.get("rss_bytes", 0.0)),
                    )
                    record["cpu_seconds"] = max(
                        record["cpu_seconds"],
                        float(resources.get("cpu_seconds", 0.0)),
                    )
        # A cell that failed some attempts but eventually succeeded (or
        # was re-run after a pool replacement) is not a failed cell.
        failed -= executed | cached | resumed
        total = len(executed) + len(cached) + len(resumed)
        return {
            "schema_version": EVENTS_SCHEMA_VERSION,
            "workers": {
                "spawned": spawned,
                "replaced": replaced,
                "peak_rss_bytes": max(
                    (w["peak_rss_bytes"] for w in per_worker.values()), default=0.0
                ),
                "cpu_seconds": sum(w["cpu_seconds"] for w in per_worker.values()),
            },
            "cells": {
                "total": total,
                "executed": len(executed),
                "cached": len(cached),
                "resumed": len(resumed),
                "failed": len(failed),
                "retries": retries,
                "faults": faults,
                "injected_faults": injected,
                "timeouts": timeouts,
            },
            "events": {
                "total": len(events),
                "dropped": self.dropped(),
                "by_kind": dict(sorted(by_kind.items())),
            },
            "cell_seconds": {
                "total": float(sum(seconds)),
                "max": float(max(seconds, default=0.0)),
                "mean": float(sum(seconds) / len(seconds)) if seconds else 0.0,
            },
            "shm": {
                "published": shm_published,
                "published_bytes": shm_published_bytes,
                "attached": shm_attaches,
                "evicted": shm_evicted,
                "peak_resident_graphs": max(
                    (int(w["resident_graphs"]) for w in per_worker.values()),
                    default=0,
                ),
            },
            "cluster": {
                "workers_joined": workers_joined,
                "workers_lost": workers_lost,
                "leases": {
                    "granted": leases_granted,
                    "expired": leases_expired,
                    "completed": leases_completed,
                },
                "graphs_shipped": graphs_shipped,
            },
            "per_worker": {name: dict(rec) for name, rec in sorted(per_worker.items())},
            "gail": {label: dict(ratios) for label, ratios in sorted(gail.items())},
        }

    # ------------------------------------------------------------------
    # trace merge (per-worker tracks)
    # ------------------------------------------------------------------
    def merge_into_trace(self, tracer) -> None:
        """Merge worker spans and lifecycle events into ``tracer``.

        Every worker becomes its own trace process (pid = OS pid, named
        track); worker-side cell span trees become complete events on
        that track, lifecycle events become instants, and resource
        samples become per-worker counter tracks.  Parent-side
        lifecycle events land as instants on the parent's own track
        (pid 0), next to the natively recorded spans.
        """
        pids: dict[str, int] = {MAIN_WORKER: 0}
        next_synthetic = 1 << 20  # fallback pids that cannot collide with OS pids

        def pid_for(worker: str) -> int:
            pid = pids.get(worker)
            if pid is None:
                nonlocal next_synthetic
                if worker.startswith("pid") and worker[3:].isdigit():
                    pid = int(worker[3:])
                else:
                    pid = next_synthetic
                    next_synthetic += 1
                pids[worker] = pid
                tracer.add_process(pid, f"worker {worker}")
            return pid

        for event in self.events():
            pid = pid_for(event.worker)
            if event.kind == "resource_sample" or "resources" in event.payload:
                resources = event.payload.get("resources")
                if resources:
                    tracer.counter(
                        "worker_resources",
                        {
                            "rss_mib": resources.get("rss_bytes", 0.0) / (1 << 20),
                            "cpu_seconds": resources.get("cpu_seconds", 0.0),
                        },
                        pid=pid,
                        at=event.adjusted_ts,
                    )
                if event.kind == "resource_sample":
                    continue
            offset = event.adjusted_ts - event.ts
            for path, start, end in event.payload.get("spans", ()):
                tracer.complete_event(
                    pid=pid,
                    name=path.rsplit("/", 1)[-1],
                    start=start + offset,
                    end=end + offset,
                    args={"path": path, "worker": event.worker},
                )
            for track, sampled_at, values in event.payload.get("counters", ()):
                tracer.counter(track, values, pid=pid, at=sampled_at + offset)
            args = {
                "worker": event.worker,
                "cell": event.cell,
                "attempt": event.attempt,
            }
            args.update(
                (k, v)
                for k, v in event.payload.items()
                if k not in ("spans", "counters", "resources", "gail")
                and isinstance(v, (int, float, str, bool, type(None)))
            )
            tracer.instant_event(
                pid=pid, name=event.kind, ts=event.adjusted_ts, args=args
            )


# ----------------------------------------------------------------------
# process-global dispatch: parent bus or worker channel
# ----------------------------------------------------------------------
_bus: EventBus | None = None


class _WorkerChannel:
    """Worker-side emitter state installed by :func:`worker_init`."""

    __slots__ = ("queue", "name", "seq", "span_buffer", "counter_buffer")

    def __init__(self, queue, name: str) -> None:
        self.queue = queue
        self.name = name
        self.seq = 0
        self.span_buffer: list[tuple[str, float, float]] = []
        self.counter_buffer: list[tuple[str, float, dict[str, float]]] = []

    def send(
        self,
        kind: str,
        cell: Any = None,
        fingerprint: str | None = None,
        attempt: int | None = None,
        payload: dict[str, Any] | None = None,
    ) -> None:
        message = _message(
            kind, self.name, self.seq, cell, fingerprint, attempt, payload or {}
        )
        self.seq += 1
        try:
            self.queue.put(message)
        except Exception:  # noqa: BLE001 — a dead manager must not kill cells
            pass


_worker_channel: _WorkerChannel | None = None


def install(bus: EventBus) -> EventBus:
    """Make ``bus`` the process-global event destination."""
    global _bus
    _bus = bus
    return bus


def uninstall() -> None:
    global _bus
    _bus = None


def current_bus() -> EventBus | None:
    """The installed parent-side bus, or ``None`` (the disabled path)."""
    return _bus


def in_worker() -> bool:
    """Whether this process is a pool worker feeding a remote bus."""
    return _worker_channel is not None


class collecting:
    """Context manager scoping an installed :class:`EventBus`::

        with collecting() as bus:
            run_cells(...)
        bus.fleet_summary()
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self._bus = bus if bus is not None else EventBus()
        self._previous: EventBus | None = None

    def __enter__(self) -> EventBus:
        self._previous = current_bus()
        return install(self._bus)

    def __exit__(self, *exc: object) -> None:
        global _bus
        _bus = self._previous
        return None


def emit(
    kind: str,
    *,
    cell: Any = None,
    fingerprint: str | None = None,
    attempt: int | None = None,
    **payload: Any,
) -> None:
    """Emit one event to wherever this process reports (or nowhere).

    In a pool worker: onto the queue installed by :func:`worker_init`.
    In a parent with an installed bus: directly into the bus.  With
    neither: a no-op after two global reads.
    """
    channel = _worker_channel
    if channel is not None:
        channel.send(kind, cell, fingerprint, attempt, payload)
        return
    bus = _bus
    if bus is not None:
        bus.emit(
            kind, cell=cell, fingerprint=fingerprint, attempt=attempt, **payload
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _WorkerSpanSink:
    """Span event sink buffering ``(path, start, end)`` in the worker.

    Installed process-wide in each worker; the buffer is drained into
    the next ``cell_finished`` payload, which is how worker-side span
    trees reach the parent's merged trace.
    """

    def __init__(self, channel: _WorkerChannel) -> None:
        self._channel = channel

    def record_span(self, path: str, start: float, end: float) -> None:
        buffer = self._channel.span_buffer
        if len(buffer) < 100_000:  # bound payload growth on span-happy cells
            buffer.append((path, start, end))

    def counter(self, track: str, values: dict[str, float]) -> None:
        """Buffer one :func:`~repro.obs.trace.counter_sample` point.

        Instrumented cell code publishes counter samples through the
        process-global span sink; inside a worker that sink is this
        object, so the samples ride home with the cell instead of being
        dropped (or crashing on a missing method).
        """
        buffer = self._channel.counter_buffer
        if len(buffer) < 100_000:
            buffer.append(
                (track, time.perf_counter(),
                 {k: float(v) for k, v in values.items()})
            )


def worker_span_sink() -> list[tuple[str, float, float]] | None:
    """This worker's span buffer, or ``None`` outside a worker."""
    channel = _worker_channel
    return channel.span_buffer if channel is not None else None


def drain_worker_buffers() -> dict[str, list]:
    """Cut and return this worker's span/counter buffers (for payloads)."""
    channel = _worker_channel
    if channel is None:
        return {}
    payload: dict[str, list] = {}
    if channel.span_buffer:
        payload["spans"] = channel.span_buffer
        channel.span_buffer = []
    if channel.counter_buffer:
        payload["counters"] = channel.counter_buffer
        channel.counter_buffer = []
    return payload


def _resource_sampler(channel: _WorkerChannel, interval: float) -> None:
    while True:
        time.sleep(interval)
        channel.send("resource_sample", payload={"resources": resource_snapshot()})


def worker_init(channel_queue, sample_interval: float = 0.5) -> None:
    """Pool-worker initializer: connect this process to the event bus.

    Installs the worker channel, announces ``worker_spawned``, routes
    completed spans into the per-cell buffer, and starts the periodic
    resource sampler (daemon thread — it dies with the worker).  Never
    raises: a telemetry failure must not break the pool.
    """
    global _worker_channel
    try:
        channel = _WorkerChannel(channel_queue, f"pid{os.getpid()}")
        _worker_channel = channel
        from repro.obs import spans

        spans.set_event_sink(_WorkerSpanSink(channel))
        channel.send(
            "worker_spawned",
            payload={"pid": os.getpid(), "resources": resource_snapshot()},
        )
        if sample_interval and sample_interval > 0:
            thread = threading.Thread(
                target=_resource_sampler,
                args=(channel, sample_interval),
                name="repro-resource-sampler",
                daemon=True,
            )
            thread.start()
    except Exception:  # noqa: BLE001 — see docstring
        _worker_channel = None


def worker_deinit() -> None:
    """Undo :func:`worker_init`: detach this process from worker mode.

    A pool worker never needs this (the process exits), but a fleet
    worker hosted on a thread — tests do this — must restore the
    process to parent-side routing when its connection ends, or every
    later :func:`emit` in the process writes into a dead channel.
    """
    global _worker_channel
    channel = _worker_channel
    _worker_channel = None
    if channel is None:
        return
    from repro.obs import spans

    sink = spans.current_event_sink()
    if isinstance(sink, _WorkerSpanSink) and sink._channel is channel:
        spans.set_event_sink(None)
