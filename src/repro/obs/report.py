"""Schema-versioned run reports: the machine-readable measurement trail.

The paper's evidence is numbers — PCM counter readings, per-phase
breakdowns, modelled times.  A :class:`RunReport` captures one run's
numbers in a stable, documented JSON shape (see ``docs/metrics_schema.md``)
so results can be archived, diffed across commits (``repro-pb report``),
and regression-gated, instead of living only in printed text tables.

Reports are plain dataclasses with explicit ``to_dict``/``from_dict``
converters; the round trip ``RunReport.from_json(r.to_json())`` is exact
and is pinned by ``tests/obs``.  The schema version is bumped whenever a
field is added, removed, renamed, or changes units; consumers should
reject majors they do not know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "GraphMeta",
    "RunConfig",
    "CounterSummary",
    "TimeSummary",
    "Convergence",
    "RunReport",
    "counter_summary",
    "report_from_measurement",
    "save_reports",
    "load_reports",
]

#: Version of the report JSON schema (``docs/metrics_schema.md`` is the
#: authoritative description).  Bump on any field or unit change: minor
#: for additive changes (older readers of the same major still load the
#: file), major for anything incompatible.
#:
#: 1.1 added the optional ``metrics`` (histograms/series from
#: :mod:`repro.obs.metrics`) and ``drift`` (model-vs-simulated records
#: from :mod:`repro.obs.drift`) sections.
#:
#: 1.2 added the optional ``resilience`` section (sweep retry/resume
#: counters from :class:`repro.parallel.resilience.SweepStats`, written
#: by ``reproduce --report``) and the ``"reproduce"`` report kind.
#:
#: 1.3 added the optional ``plan`` section (cell DAG counters from
#: :class:`repro.plan.compiler.PlanStats`: cells requested / unique /
#: cache hits / resumed / executed plus the dedup ratio, written by
#: ``reproduce --report`` since artifacts compile to one shared plan).
#:
#: 1.4 added the optional ``fleet`` section (the cross-process event
#: collector's fold from :meth:`repro.obs.events.EventBus.fleet_summary`:
#: terminal per-cell accounting — executed + cached + resumed = total —
#: with retries/faults/timeouts itemized, per-worker busy time and
#: resource peaks, event counts by kind, and per-cell GAIL per-edge
#: decompositions).
#:
#: 1.5 added the optional ``serve`` section (the query layer's counter
#: snapshot from :meth:`repro.serve.server.ServeStats.to_dict`:
#: requests, batches, coalescing and occupancy, cache hit rate, injected
#: faults/retries, and update/invalidation accounting) and the
#: ``"serve"`` report kind.
SCHEMA_VERSION = "1.5"


@dataclass(frozen=True)
class GraphMeta:
    """Identity of the measured graph.

    ``scale`` and ``seed`` are recorded when the graph came from the
    deterministic suite generators, so the exact input can be regenerated.
    """

    name: str
    num_vertices: int
    num_edges: int
    scale: float | None = None
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "scale": self.scale,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GraphMeta":
        return cls(
            name=data["name"],
            num_vertices=int(data["num_vertices"]),
            num_edges=int(data["num_edges"]),
            scale=data.get("scale"),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class RunConfig:
    """Kernel and engine configuration of the run."""

    method: str
    # Mirrors repro.memsim.DEFAULT_ENGINE; obs imports nothing from the
    # rest of repro, so the name is duplicated rather than imported.
    engine: str = "stackdist"
    num_iterations: int = 1
    options: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "engine": self.engine,
            "num_iterations": self.num_iterations,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunConfig":
        return cls(
            method=data["method"],
            engine=data.get("engine", "flru"),
            num_iterations=int(data.get("num_iterations", 1)),
            options=dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class CounterSummary:
    """Simulated DRAM traffic, in units of cache-line transfers.

    The per-stream breakdown mirrors :class:`repro.memsim.MemCounters`
    (keys are :class:`~repro.memsim.trace.Stream` values); the per-phase
    breakdown keys the kernel's phase labels ("binning", "accumulate", ...).
    """

    reads_by_stream: dict[str, int]
    writes_by_stream: dict[str, int]
    reads_by_phase: dict[str, int]
    writes_by_phase: dict[str, int]
    total_reads: int
    total_writes: int
    total_requests: int
    requests_per_edge: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "reads_by_stream": dict(self.reads_by_stream),
            "writes_by_stream": dict(self.writes_by_stream),
            "reads_by_phase": dict(self.reads_by_phase),
            "writes_by_phase": dict(self.writes_by_phase),
            "total_reads": self.total_reads,
            "total_writes": self.total_writes,
            "total_requests": self.total_requests,
            "requests_per_edge": self.requests_per_edge,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CounterSummary":
        return cls(
            reads_by_stream={k: int(v) for k, v in data["reads_by_stream"].items()},
            writes_by_stream={k: int(v) for k, v in data["writes_by_stream"].items()},
            reads_by_phase={k: int(v) for k, v in data["reads_by_phase"].items()},
            writes_by_phase={k: int(v) for k, v in data["writes_by_phase"].items()},
            total_reads=int(data["total_reads"]),
            total_writes=int(data["total_writes"]),
            total_requests=int(data["total_requests"]),
            requests_per_edge=float(data["requests_per_edge"]),
        )


@dataclass(frozen=True)
class TimeSummary:
    """Modelled execution time (seconds) with its resource components.

    ``phase_seconds`` is present only for kernels with a per-phase
    instruction model (PB/DPB — the Figure 11 breakdown).
    """

    modelled_seconds: float
    memory_bound_seconds: float
    instruction_bound_seconds: float
    bottleneck: str
    phase_seconds: dict[str, float] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "modelled_seconds": self.modelled_seconds,
            "memory_bound_seconds": self.memory_bound_seconds,
            "instruction_bound_seconds": self.instruction_bound_seconds,
            "bottleneck": self.bottleneck,
            "phase_seconds": dict(self.phase_seconds)
            if self.phase_seconds is not None
            else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimeSummary":
        phase = data.get("phase_seconds")
        return cls(
            modelled_seconds=float(data["modelled_seconds"]),
            memory_bound_seconds=float(data["memory_bound_seconds"]),
            instruction_bound_seconds=float(data["instruction_bound_seconds"]),
            bottleneck=data["bottleneck"],
            phase_seconds={k: float(v) for k, v in phase.items()}
            if phase is not None
            else None,
        )


@dataclass(frozen=True)
class Convergence:
    """Iteration history of a to-convergence PageRank run."""

    iterations: int
    converged: bool
    tolerance: float
    deltas: tuple[float, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "iterations": self.iterations,
            "converged": self.converged,
            "tolerance": self.tolerance,
            "deltas": list(self.deltas),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Convergence":
        return cls(
            iterations=int(data["iterations"]),
            converged=bool(data["converged"]),
            tolerance=float(data["tolerance"]),
            deltas=tuple(float(d) for d in data.get("deltas", [])),
        )


@dataclass(frozen=True)
class RunReport:
    """One run's complete machine-readable record.

    ``kind`` is ``"measure"`` for simulated-traffic runs (counters and
    time populated) or ``"pagerank"`` for executable convergence runs
    (convergence populated); absent sections are ``None``.
    ``wall_spans`` holds the host wall-clock span aggregation of
    :mod:`repro.obs.spans` when recording was active during the run.

    Since schema 1.1, ``metrics`` optionally holds a serialized
    :class:`repro.obs.metrics.MetricsRegistry` snapshot (histograms +
    series collected during the run) and ``drift`` a serialized
    :class:`repro.obs.drift.DriftSummary` (analytic-model-vs-simulation
    records); both are ``None`` when not collected.

    Since schema 1.2, ``kind`` may also be ``"reproduce"`` (a whole
    reproduction run rather than one measurement) and ``resilience``
    optionally holds the sweep executor's fault-tolerance counters
    (:meth:`repro.parallel.resilience.SweepStats.as_dict`: completed /
    resumed / retried cells, injected faults, pool restarts, failures).

    Since schema 1.3, ``plan`` optionally holds the cell-DAG counters of
    the run's compiled experiment plan
    (:meth:`repro.plan.compiler.PlanStats.as_dict`: cells requested /
    unique / cache hits / resumed / executed and the dedup ratio).

    Since schema 1.4, ``fleet`` optionally holds the cross-process event
    collector's summary
    (:meth:`repro.obs.events.EventBus.fleet_summary`: per-cell terminal
    accounting, per-worker state, event counts, GAIL decompositions).

    Since schema 1.5, ``kind`` may also be ``"serve"`` (a query-serving
    session) and ``serve`` optionally holds the server's counter
    snapshot (:meth:`repro.serve.server.ServeStats.to_dict`).
    """

    graph: GraphMeta
    config: RunConfig
    kind: str = "measure"
    counters: CounterSummary | None = None
    time: TimeSummary | None = None
    instructions: float | None = None
    convergence: Convergence | None = None
    wall_spans: dict[str, dict[str, float]] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None
    drift: dict[str, Any] | None = None
    resilience: dict[str, Any] | None = None
    plan: dict[str, Any] | None = None
    fleet: dict[str, Any] | None = None
    serve: dict[str, Any] | None = None
    schema_version: str = SCHEMA_VERSION

    def key(self) -> str:
        """Pairing key used when diffing report sets."""
        return f"{self.graph.name}/{self.config.method}"

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "graph": self.graph.to_dict(),
            "config": self.config.to_dict(),
            "counters": self.counters.to_dict() if self.counters else None,
            "time": self.time.to_dict() if self.time else None,
            "instructions": self.instructions,
            "convergence": self.convergence.to_dict() if self.convergence else None,
            "wall_spans": {
                path: dict(stats) for path, stats in self.wall_spans.items()
            },
            "metrics": self.metrics,
            "drift": self.drift,
            "resilience": self.resilience,
            "plan": self.plan,
            "fleet": self.fleet,
            "serve": self.serve,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        version = str(data.get("schema_version", ""))
        major = version.split(".", 1)[0]
        if major != SCHEMA_VERSION.split(".", 1)[0]:
            raise ValueError(
                f"unsupported report schema version {version!r} "
                f"(this build reads {SCHEMA_VERSION!r})"
            )
        counters = data.get("counters")
        time_data = data.get("time")
        convergence = data.get("convergence")
        return cls(
            schema_version=version,
            kind=data.get("kind", "measure"),
            graph=GraphMeta.from_dict(data["graph"]),
            config=RunConfig.from_dict(data["config"]),
            counters=CounterSummary.from_dict(counters) if counters else None,
            time=TimeSummary.from_dict(time_data) if time_data else None,
            instructions=(
                float(data["instructions"])
                if data.get("instructions") is not None
                else None
            ),
            convergence=Convergence.from_dict(convergence) if convergence else None,
            wall_spans={
                path: {k: float(v) if k == "seconds" else int(v) for k, v in stats.items()}
                for path, stats in data.get("wall_spans", {}).items()
            },
            # 1.0 reports predate these sections; absent means not collected.
            metrics=data.get("metrics"),
            drift=data.get("drift"),
            # 1.2 section; absent in older reports.
            resilience=data.get("resilience"),
            # 1.3 section; absent in older reports.
            plan=data.get("plan"),
            # 1.4 section; absent in older reports.
            fleet=data.get("fleet"),
            # 1.5 section; absent in older reports.
            serve=data.get("serve"),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_json(handle.read())


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def counter_summary(counters, num_edges: int) -> CounterSummary:
    """Flatten a :class:`~repro.memsim.MemCounters` into report form.

    Stream keys become their string values; zero-valued entries are
    dropped so reports only list streams the kernel actually touched.
    """

    def by_stream(table) -> dict[str, int]:
        return {
            stream.value: int(count)
            for stream, count in sorted(table.items(), key=lambda kv: kv[0].value)
            if count
        }

    def by_phase(table) -> dict[str, int]:
        return {phase: int(count) for phase, count in sorted(table.items()) if count}

    return CounterSummary(
        reads_by_stream=by_stream(counters.reads),
        writes_by_stream=by_stream(counters.writes),
        reads_by_phase=by_phase(counters.phase_reads),
        writes_by_phase=by_phase(counters.phase_writes),
        total_reads=int(counters.total_reads),
        total_writes=int(counters.total_writes),
        total_requests=int(counters.total_requests),
        requests_per_edge=counters.requests_per_edge(num_edges)
        if num_edges > 0
        else 0.0,
    )


def report_from_measurement(
    measurement,
    *,
    scale: float | None = None,
    seed: int | None = None,
    engine: str = "stackdist",
    options: dict[str, Any] | None = None,
    wall_spans: dict[str, dict[str, float]] | None = None,
    metrics: dict[str, Any] | None = None,
    resilience: dict[str, Any] | None = None,
) -> RunReport:
    """Build a ``kind="measure"`` report from a harness ``Measurement``.

    ``metrics`` takes an already-serialized registry snapshot
    (``MetricsRegistry.as_dict()``); the drift section is read off the
    measurement itself (``measurement.drift``, a ``DriftSummary`` or
    ``None``) since the harness computes it alongside the counters.
    """
    time = measurement.time
    drift = getattr(measurement, "drift", None)
    return RunReport(
        kind="measure",
        graph=GraphMeta(
            name=measurement.graph_name,
            num_vertices=measurement.num_vertices,
            num_edges=measurement.num_edges,
            scale=scale,
            seed=seed,
        ),
        config=RunConfig(
            method=measurement.method,
            engine=engine,
            num_iterations=measurement.num_iterations,
            options=dict(options or {}),
        ),
        counters=counter_summary(measurement.counters, measurement.num_edges),
        time=TimeSummary(
            modelled_seconds=time.total,
            memory_bound_seconds=time.memory_bound,
            instruction_bound_seconds=time.instruction_bound,
            bottleneck=time.bottleneck,
            phase_seconds=dict(measurement.phase_seconds)
            if measurement.phase_seconds is not None
            else None,
        ),
        instructions=float(measurement.instructions),
        wall_spans=dict(wall_spans or {}),
        metrics=metrics,
        drift=drift.to_dict() if drift is not None else None,
        resilience=resilience,
    )


# ----------------------------------------------------------------------
# report files: one report or a set (``repro-pb compare --json``)
# ----------------------------------------------------------------------
def save_reports(reports: list[RunReport], path: str) -> None:
    """Write one report plainly, several as a ``report_set`` document."""
    if len(reports) == 1:
        reports[0].save(path)
        return
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": "report_set",
        "reports": [report.to_dict() for report in reports],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_reports(path: str) -> list[RunReport]:
    """Read a report file: a single report or a ``report_set``."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("kind") == "report_set":
        return [RunReport.from_dict(entry) for entry in data["reports"]]
    return [RunReport.from_dict(data)]
