"""Model-drift records: analytic communication model vs. simulation.

The Section V analytic models (:mod:`repro.models.communication`) predict
per-phase DRAM traffic from four numbers (n, k, b, c); the cache simulator
*measures* it.  The two agreeing is the repro's core claim, so every
simulation-backed measurement carries a drift section: one record per
(phase, metric) naming the modelled value, the simulated value, and their
relative delta.  ``repro-pb report --drift`` then gates on the worst
delta — a refactor that silently changes either side trips the gate
instead of quietly invalidating the reproduction.

This module holds only the data structures and threshold logic; the glue
that evaluates the models against a concrete measurement lives in
:mod:`repro.harness.experiment` (the obs package imports nothing from the
rest of :mod:`repro`).

The default threshold is deliberately loose (25%): the analytic model is
a cache-line back-of-envelope, and on small graphs discretisation terms
the model omits (e.g. compulsory fills when the vertex data fits in the
LLC) reach a few percent.  Observed agreement on the paper's operating
points is ~0.1% for PB/DPB phases and ~2% overall (see
``tests/models/test_communication.py``), so 25% flags only genuine
breakage, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "DriftRecord",
    "DriftSummary",
]

#: Relative |model - sim| / model divergence beyond which drift is flagged.
DEFAULT_DRIFT_THRESHOLD = 0.25


@dataclass(frozen=True)
class DriftRecord:
    """One modelled-vs-simulated comparison, e.g. reads in one phase."""

    #: What is compared, e.g. ``"reads/binning"`` or ``"total_writes"``.
    name: str
    #: Cache-line count measured by the simulator.
    simulated: float
    #: Cache-line count predicted by the analytic model.
    modelled: float

    @property
    def delta(self) -> float:
        """Signed relative delta, positive when simulation exceeds model.

        Relative to the modelled value; when the model predicts zero the
        simulated magnitude is used as the scale so a nonzero simulated
        value still registers as full divergence rather than dividing by
        zero.
        """
        if self.modelled != 0.0:
            return (self.simulated - self.modelled) / abs(self.modelled)
        if self.simulated == 0.0:
            return 0.0
        return 1.0 if self.simulated > 0 else -1.0

    def exceeds(self, threshold: float) -> bool:
        return abs(self.delta) > threshold

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "simulated": self.simulated,
            "modelled": self.modelled,
            "delta": self.delta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DriftRecord":
        # "delta" is serialized for human readers but always derived.
        return cls(
            name=data["name"],
            simulated=data["simulated"],
            modelled=data["modelled"],
        )


@dataclass
class DriftSummary:
    """All drift records for one measurement, plus the model's identity."""

    #: Which analytic model produced the predictions (e.g. ``"detailed_pb"``).
    model: str
    records: list[DriftRecord] = field(default_factory=list)

    def add(self, name: str, simulated: float, modelled: float) -> DriftRecord:
        record = DriftRecord(name=name, simulated=simulated, modelled=modelled)
        self.records.append(record)
        return record

    def max_abs_delta(self) -> float:
        return max((abs(r.delta) for r in self.records), default=0.0)

    def flagged(self, threshold: float = DEFAULT_DRIFT_THRESHOLD) -> list[DriftRecord]:
        """Records whose divergence exceeds ``threshold``, worst first."""
        over = [r for r in self.records if r.exceeds(threshold)]
        return sorted(over, key=lambda r: abs(r.delta), reverse=True)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DriftSummary":
        return cls(
            model=data["model"],
            records=[DriftRecord.from_dict(r) for r in data["records"]],
        )
