"""Report diffing: the regression gate behind ``repro-pb report``.

Given two report files (typically the same experiment run at two commits),
pair their reports by ``graph/method`` key and compare the lower-is-better
headline metrics — DRAM reads, writes, total requests, requests/edge, and
modelled seconds.  A metric *regresses* when the new value exceeds the old
by more than the relative threshold; the CLI turns any regression into a
nonzero exit code so perf PRs can gate on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.report import RunReport

__all__ = ["MetricDelta", "ReportDiff", "diff_reports", "diff_report_sets"]

#: Default relative tolerance: 5% growth on any metric flags a regression.
DEFAULT_THRESHOLD = 0.05


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two reports (lower is better)."""

    key: str  #: report pairing key, "graph/method"
    metric: str
    before: float
    after: float
    threshold: float

    @property
    def ratio(self) -> float:
        """``after / before`` (1.0 when both are zero)."""
        if self.before == 0:
            return 1.0 if self.after == 0 else float("inf")
        return self.after / self.before

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"


@dataclass(frozen=True)
class ReportDiff:
    """All metric comparisons for one pair of report files."""

    deltas: list[MetricDelta]
    unmatched_before: list[str]
    unmatched_after: list[str]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _metrics(report: RunReport) -> dict[str, float]:
    """The comparable lower-is-better metrics a report exposes."""
    metrics: dict[str, float] = {}
    if report.counters is not None:
        metrics["total_reads"] = float(report.counters.total_reads)
        metrics["total_writes"] = float(report.counters.total_writes)
        metrics["total_requests"] = float(report.counters.total_requests)
        metrics["requests_per_edge"] = report.counters.requests_per_edge
    if report.time is not None:
        metrics["modelled_seconds"] = report.time.modelled_seconds
    if report.convergence is not None:
        metrics["iterations"] = float(report.convergence.iterations)
    return metrics


def diff_reports(
    before: RunReport,
    after: RunReport,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[MetricDelta]:
    """Compare one report pair; only metrics present on both sides count."""
    key = after.key()
    before_metrics = _metrics(before)
    after_metrics = _metrics(after)
    return [
        MetricDelta(
            key=key,
            metric=name,
            before=before_metrics[name],
            after=after_metrics[name],
            threshold=threshold,
        )
        for name in before_metrics
        if name in after_metrics
    ]


def diff_report_sets(
    before: list[RunReport],
    after: list[RunReport],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> ReportDiff:
    """Pair two report lists by key and diff every matched pair."""
    before_by_key = {report.key(): report for report in before}
    after_by_key = {report.key(): report for report in after}
    deltas: list[MetricDelta] = []
    for key in before_by_key:
        if key in after_by_key:
            deltas.extend(
                diff_reports(
                    before_by_key[key], after_by_key[key], threshold=threshold
                )
            )
    return ReportDiff(
        deltas=deltas,
        unmatched_before=sorted(set(before_by_key) - set(after_by_key)),
        unmatched_after=sorted(set(after_by_key) - set(before_by_key)),
    )
