"""Observability layer: spans, schema-versioned run reports, regression diffs.

The reproduction's counterpart to the paper's measurement apparatus
(Section VI): where :mod:`repro.memsim` stands in for the PCM hardware
counters, :mod:`repro.obs` is the *recording* substrate around them —

* :mod:`repro.obs.spans` — nestable, thread-safe wall-clock spans with
  near-zero overhead when disabled, wired into the kernels, the cache
  simulator, and the experiment harness;
* :mod:`repro.obs.trace` — opt-in event backend for the span API: every
  completed span becomes a timestamped duration event, instrumented code
  publishes counter samples (DRAM transfers, miss rate, residual, drift),
  and the whole timeline exports as Chrome-trace/Perfetto JSON
  (``--trace out.json``);
* :mod:`repro.obs.events` — the fleet flight recorder: schema-versioned
  lifecycle events and resource samples emitted by sweep worker
  processes over a multiprocessing queue, collected parent-side into a
  merged per-worker Chrome trace, the report's ``fleet`` section, and a
  live progress feed;
* :mod:`repro.obs.progress` — renderer over the event stream (live
  TTY line / plain CI lines / off) behind ``reproduce``/``plan``;
* :mod:`repro.obs.metrics` — histogram/time-series registry that memsim
  and the kernels publish distributions into (reuse distances, bin
  occupancy, per-iteration miss rate), serialized into reports;
* :mod:`repro.obs.drift` — records of the Section V analytic model
  evaluated against the simulation, with a threshold gate
  (``repro-pb report --drift``);
* :mod:`repro.obs.log` — the ``repro`` stdlib-logging hierarchy behind
  the CLI's ``-v``/``-q`` flags;
* :mod:`repro.obs.report` — :class:`RunReport`, the schema-versioned JSON
  record of one run (graph, config, per-stream/per-phase DRAM counters,
  modelled + wall time, convergence history, metrics, drift),
  round-trippable and documented field by field in
  ``docs/metrics_schema.md``;
* :mod:`repro.obs.diff` — report comparison with a relative-threshold
  regression gate, exposed as ``repro-pb report``.

This package deliberately imports nothing from the rest of :mod:`repro`
(report builders take measurements duck-typed), so any layer — kernels,
memsim, harness — can instrument itself without import cycles.
"""

from repro.obs.spans import (
    PATH_SEPARATOR,
    SpanRecorder,
    SpanStats,
    current_recorder,
    disable,
    enable,
    is_enabled,
    recording,
    span,
)
from repro.obs.trace import (
    TraceRecorder,
    counter_sample,
    current_tracer,
    tracing,
)
from repro.obs.events import (
    EVENTS_SCHEMA_VERSION,
    Event,
    EventBus,
    current_bus,
)
from repro.obs.events import collecting as collecting_events
from repro.obs.events import emit as emit_event
from repro.obs.progress import ProgressRenderer, attach_progress
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    Series,
    collecting,
    current_registry,
)
from repro.obs.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftRecord,
    DriftSummary,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.report import (
    SCHEMA_VERSION,
    Convergence,
    CounterSummary,
    GraphMeta,
    RunConfig,
    RunReport,
    TimeSummary,
    counter_summary,
    load_reports,
    report_from_measurement,
    save_reports,
)
from repro.obs.diff import (
    DEFAULT_THRESHOLD,
    MetricDelta,
    ReportDiff,
    diff_report_sets,
    diff_reports,
)

__all__ = [
    "PATH_SEPARATOR",
    "SpanRecorder",
    "SpanStats",
    "current_recorder",
    "disable",
    "enable",
    "is_enabled",
    "recording",
    "span",
    "TraceRecorder",
    "counter_sample",
    "current_tracer",
    "tracing",
    "EVENTS_SCHEMA_VERSION",
    "Event",
    "EventBus",
    "current_bus",
    "collecting_events",
    "emit_event",
    "ProgressRenderer",
    "attach_progress",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "collecting",
    "current_registry",
    "DEFAULT_DRIFT_THRESHOLD",
    "DriftRecord",
    "DriftSummary",
    "configure_logging",
    "get_logger",
    "SCHEMA_VERSION",
    "Convergence",
    "CounterSummary",
    "GraphMeta",
    "RunConfig",
    "RunReport",
    "TimeSummary",
    "counter_summary",
    "load_reports",
    "report_from_measurement",
    "save_reports",
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "ReportDiff",
    "diff_report_sets",
    "diff_reports",
]
