"""Observability layer: spans, schema-versioned run reports, regression diffs.

The reproduction's counterpart to the paper's measurement apparatus
(Section VI): where :mod:`repro.memsim` stands in for the PCM hardware
counters, :mod:`repro.obs` is the *recording* substrate around them —

* :mod:`repro.obs.spans` — nestable, thread-safe wall-clock spans with
  near-zero overhead when disabled, wired into the kernels, the cache
  simulator, and the experiment harness;
* :mod:`repro.obs.report` — :class:`RunReport`, the schema-versioned JSON
  record of one run (graph, config, per-stream/per-phase DRAM counters,
  modelled + wall time, convergence history), round-trippable and
  documented field by field in ``docs/metrics_schema.md``;
* :mod:`repro.obs.diff` — report comparison with a relative-threshold
  regression gate, exposed as ``repro-pb report``.

This package deliberately imports nothing from the rest of :mod:`repro`
(report builders take measurements duck-typed), so any layer — kernels,
memsim, harness — can instrument itself without import cycles.
"""

from repro.obs.spans import (
    PATH_SEPARATOR,
    SpanRecorder,
    SpanStats,
    current_recorder,
    disable,
    enable,
    is_enabled,
    recording,
    span,
)
from repro.obs.report import (
    SCHEMA_VERSION,
    Convergence,
    CounterSummary,
    GraphMeta,
    RunConfig,
    RunReport,
    TimeSummary,
    counter_summary,
    load_reports,
    report_from_measurement,
    save_reports,
)
from repro.obs.diff import (
    DEFAULT_THRESHOLD,
    MetricDelta,
    ReportDiff,
    diff_report_sets,
    diff_reports,
)

__all__ = [
    "PATH_SEPARATOR",
    "SpanRecorder",
    "SpanStats",
    "current_recorder",
    "disable",
    "enable",
    "is_enabled",
    "recording",
    "span",
    "SCHEMA_VERSION",
    "Convergence",
    "CounterSummary",
    "GraphMeta",
    "RunConfig",
    "RunReport",
    "TimeSummary",
    "counter_summary",
    "load_reports",
    "report_from_measurement",
    "save_reports",
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "ReportDiff",
    "diff_report_sets",
    "diff_reports",
]
