"""Structured logging for the repro, on the stdlib :mod:`logging` stack.

All repro loggers live under the ``"repro"`` hierarchy —
``get_logger("harness.reproduce")`` returns ``repro.harness.reproduce`` —
so one :func:`configure` call (driven by the CLI's ``-v``/``-q`` flags)
controls every module without touching the root logger or any logging a
host application has set up.

Levels follow the usual contract: progress and milestones at INFO
(visible with ``-v``), per-step detail at DEBUG (``-vv``), and only
warnings/errors by default.  Library code must log, never ``print``:
print output cannot be silenced by ``-q``, redirected by a host, or
timestamped.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure", "verbosity_to_level", "LOGGER_NAME"]

#: Root of the repro logger hierarchy.
LOGGER_NAME = "repro"

#: Format used by :func:`configure`; relative timestamps in seconds line
#: up loosely with span durations in the same run.
_FORMAT = "%(relativeCreated)8.0fms %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy.

    ``get_logger()`` returns the root ``repro`` logger;
    ``get_logger("memsim.cache")`` returns ``repro.memsim.cache``.  Names
    already starting with ``repro`` are used as-is, so
    ``get_logger(__name__)`` works from inside the package.
    """
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(LOGGER_NAME + "." + name)


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a logging level.

    ``-q`` → ERROR, default → WARNING, ``-v`` → INFO, ``-vv`` → DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, *, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger at ``verbosity``.

    Idempotent: reconfiguring replaces the handler installed by a prior
    call instead of stacking duplicates.  Returns the configured root
    repro logger.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(verbosity_to_level(verbosity))
    # Our handler is tagged so we never remove handlers someone else added.
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs_handler = True
    logger.addHandler(handler)
    # Stop records from also reaching the root logger's handlers (pytest's
    # capture handler, a host app's config) twice.
    logger.propagate = False
    return logger
