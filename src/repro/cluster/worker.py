"""Fleet worker: dial a coordinator, lease cells, write results to the
shared cache.

One worker is one process (``repro-pb worker`` or a process spawned by
:class:`repro.cluster.DistributedExecutor`) running a strict
request/reply loop over one :class:`~repro.cluster.wire.Connection`:

1. ``hello`` → ``welcome`` — protocol check; the welcome carries the
   shared cache directory, the fault plan, and the heartbeat cadence;
2. ``lease_request`` → ``lease`` / ``idle`` / ``shutdown``;
3. execute the leased cell through the *same*
   :func:`repro.parallel.resilience._attempt_cell` the pool workers
   use — fault injection, spans, and the ``cell_started`` /
   ``cell_finished`` events all behave identically;
4. write the result into the shared
   :class:`~repro.harness.cache.MeasurementCache` (atomic rename), then
   ``complete`` → ``ack`` carrying only the fingerprint — the data
   plane never rides the socket;
5. on a cell exception: ``failed`` → ``ack`` with the classified error.

Telemetry reuses the whole pool-worker machinery: :func:`repro.obs.
events.worker_init` accepts anything with ``put(message)``, so
:class:`_SocketChannel` adapts the connection and the worker's events,
span buffers, and resource samples stream to the coordinator framed as
``event`` messages.  A daemon heartbeat thread renews the worker's
leases; killing the process (or its host) silences the heartbeat and
the coordinator recovers the cell through lease expiry.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time
import traceback
from typing import Any

from repro.cluster.shipping import resolve_cell
from repro.cluster.wire import PROTOCOL_VERSION, Connection, FrameError
from repro.obs import events as _events
from repro.obs.log import get_logger
from repro.parallel.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedTimeout,
    is_corrupt,
)
from repro.parallel.resilience import _attempt_cell

__all__ = ["run_worker", "WorkerError"]

log = get_logger("cluster.worker")


class WorkerError(RuntimeError):
    """The worker could not join or follow the protocol."""


class _SocketChannel:
    """Queue-shaped adapter: ``put(message)`` frames onto the socket."""

    def __init__(self, conn: Connection) -> None:
        self._conn = conn

    def put(self, message: dict[str, Any]) -> None:
        self._conn.send({"kind": "event", "message": message})


def _classify(exc: BaseException) -> str:
    if isinstance(exc, InjectedCrash):
        return "injected_crash"
    if isinstance(exc, InjectedTimeout):
        return "injected_timeout"
    return "error"


def _heartbeat_loop(conn: Connection, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            conn.send({"kind": "heartbeat"})
        except OSError:
            return  # coordinator is gone; the main loop will notice


def run_worker(
    host: str,
    port: int,
    *,
    cache_dir: str | None = None,
    name: str | None = None,
    connect_timeout: float = 10.0,
    max_idle_seconds: float | None = None,
) -> int:
    """Serve one coordinator until it says ``shutdown``; return an exit
    code.

    ``cache_dir`` overrides the welcome's advertised cache directory —
    needed when the shared filesystem mounts at a different path on
    this host.  ``max_idle_seconds`` makes a standing worker give up
    when the coordinator has had no work for that long (``None`` waits
    forever).
    """
    try:
        conn = Connection.connect(host, port, timeout=connect_timeout)
    except OSError as exc:
        log.error("cannot reach coordinator %s:%d: %s", host, port, exc)
        return 1
    stop_heartbeat = threading.Event()
    try:
        conn.send(
            {
                "kind": "hello",
                "protocol": PROTOCOL_VERSION,
                "worker": name or f"pid{os.getpid()}",
                "pid": os.getpid(),
                "host": socket_module.gethostname(),
            }
        )
        welcome = conn.recv()
        if not isinstance(welcome, dict) or welcome.get("kind") != "welcome":
            reason = (
                welcome.get("reason", "no reason")
                if isinstance(welcome, dict)
                else "connection closed"
            )
            log.error("coordinator rejected us: %s", reason)
            return 1

        directory = cache_dir or welcome.get("cache_dir")
        if not directory:
            log.error("no shared cache directory (welcome advertised none)")
            return 1
        from repro.harness.cache import MeasurementCache

        cache = MeasurementCache(directory)
        plan_text = welcome.get("fault_plan")
        fault_plan = FaultPlan.from_string(plan_text) if plan_text else None

        # The full pool-worker telemetry stack, over the socket instead
        # of a manager queue; also announces worker_spawned.
        _events.worker_init(_SocketChannel(conn))
        heartbeat = threading.Thread(
            target=_heartbeat_loop,
            args=(conn, float(welcome.get("heartbeat_seconds", 1.0)), stop_heartbeat),
            name="repro-cluster-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        log.info(
            "joined %s:%d as %s (cache %s)",
            host,
            port,
            welcome.get("worker"),
            directory,
        )

        resident: dict[Any, Any] = {}
        idle_since: float | None = None
        while True:
            conn.send({"kind": "lease_request"})
            reply = conn.recv()
            if reply is None or not isinstance(reply, dict):
                log.warning("coordinator hung up")
                return 1
            kind = reply.get("kind")
            if kind == "shutdown":
                break
            if kind == "idle":
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (
                    max_idle_seconds is not None
                    and now - idle_since >= max_idle_seconds
                ):
                    log.info("idle for %.1fs; leaving", now - idle_since)
                    break
                time.sleep(float(reply.get("retry_after", 0.05)))
                continue
            if kind != "lease":
                continue
            idle_since = None
            fingerprint = str(reply["fingerprint"])
            cache_fingerprint = reply.get("cache_fingerprint") or fingerprint
            attempt = int(reply.get("attempt", 0))
            resident.update(reply.get("graphs") or {})
            cell = resolve_cell(reply["cell"], resident)
            try:
                result, seconds = _attempt_cell(cell, attempt, fault_plan, fingerprint)
                if is_corrupt(result):
                    conn.send(
                        {
                            "kind": "failed",
                            "fingerprint": fingerprint,
                            "error_kind": "corrupt",
                            "error": "CorruptResultError",
                            "message": f"cell [{cell.key!r}] returned a corrupt result",
                            "seconds": seconds,
                        }
                    )
                else:
                    cache.put(cache_fingerprint, result, seconds)
                    conn.send(
                        {
                            "kind": "complete",
                            "fingerprint": fingerprint,
                            "seconds": seconds,
                        }
                    )
            except Exception as exc:  # noqa: BLE001 — every cell error reports
                conn.send(
                    {
                        "kind": "failed",
                        "fingerprint": fingerprint,
                        "error_kind": _classify(exc),
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                        "seconds": 0.0,
                    }
                )
            ack = conn.recv()
            if ack is None:
                log.warning("coordinator hung up before acking")
                return 1
        try:
            conn.send({"kind": "goodbye"})
        except OSError:
            pass
        return 0
    except (FrameError, OSError) as exc:
        log.error("connection to coordinator failed: %s", exc)
        return 1
    finally:
        stop_heartbeat.set()
        # Leave worker mode: a thread-hosted worker (tests) must hand
        # event routing back to the process, not a closed socket.
        _events.worker_deinit()
        conn.close()


def spawned_main(host: str, port: int, cache_dir: str | None) -> None:
    """Entry point for executor-spawned worker processes."""
    import sys

    from repro.obs.log import configure

    configure(0)  # warnings only; the parent owns the console
    sys.exit(run_worker(host, port, cache_dir=cache_dir))
