"""Lease-based cell coordinator: the plan DAG as a cluster scheduler.

The coordinator owns one plan execution's miss cells and hands them to
socket-connected workers as **leases** — (cell, fingerprint, attempt)
grants that must be renewed by heartbeat and expire on silence.  The
design mirrors the in-process engine (:class:`repro.parallel.
resilience._Engine`) wherever semantics overlap, and *shares its code*
where the repo already has it:

* failure accounting (retry budget, deterministic backoff, the
  ``cell_faulted``/``cell_timeout``/``cell_retried`` events, permanent
  failures) goes through :func:`repro.parallel.resilience.
  record_attempt_failure` — a lease that expires is charged exactly
  like a timed-out pool cell and re-queued through the same
  retry/backoff path;
* checkpoint skip/record uses the same duck-typed recorder the local
  path uses, so resuming a half-distributed run locally (or vice
  versa) just works;
* lease ordering is locality-aware through the same
  :func:`~repro.parallel.scheduling.cell_affinity` /
  :func:`~repro.parallel.scheduling.affinity_lanes` pair the pool's
  lane queue uses: cells sharing a graph lease to the same worker, so
  each graph ships once and stays resident (:mod:`repro.cluster.
  shipping`).

The **data plane stays off the wire**: a worker writes its result into
the shared :class:`repro.harness.cache.MeasurementCache` (atomic
tempfile + rename) and sends only the fingerprint; the coordinator
validates the entry exists and readable before accounting the cell
complete — a torn or missing write is charged as a failed attempt.

Results fold by submission order, and a cell that exhausts its retries
raises :class:`~repro.parallel.resilience.CellFailedError` from
:meth:`Coordinator.wait` only after every other cell finished — the
same contract :func:`repro.parallel.sweep.run_cells` gives.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from time import monotonic
from typing import Any, Callable

from repro.obs import events as _events
from repro.obs.log import get_logger
from repro.parallel.faults import FaultPlan
from repro.parallel.resilience import (
    CellFailedError,
    CellTimeoutError,
    CorruptResultError,
    RetryPolicy,
    SweepStats,
    record_attempt_failure,
    resolve_policy,
)
from repro.parallel.scheduling import affinity_lanes, cell_affinity
from repro.cluster.shipping import strip_cell
from repro.cluster.wire import PROTOCOL_VERSION, Connection, FrameError
from repro.utils.fingerprint import cell_fingerprint

__all__ = ["Coordinator", "RemoteCellError"]

log = get_logger("cluster.coordinator")


class RemoteCellError(RuntimeError):
    """A cell raised on a fleet worker; carries the remote traceback."""

    def __init__(self, error: str, message: str, traceback_text: str = "") -> None:
        self.error = error
        self.traceback_text = traceback_text
        super().__init__(f"{error}: {message}")


#: Worker-reported failure kinds mapped back onto the exception types
#: the shared failure accounting distinguishes (fault-injection and
#: timeout counters).
def _remote_exception(report: dict[str, Any]) -> BaseException:
    from repro.parallel.faults import InjectedCrash, InjectedTimeout

    kinds: dict[str, Callable[[str], BaseException]] = {
        "injected_crash": InjectedCrash,
        "injected_timeout": InjectedTimeout,
        "corrupt": CorruptResultError,
    }
    kind = report.get("error_kind", "error")
    message = str(report.get("message", ""))
    if kind in kinds:
        return kinds[kind](message)
    return RemoteCellError(
        str(report.get("error", "Exception")),
        message,
        str(report.get("traceback", "")),
    )


class _LeaseTask:
    """Mutable scheduling state of one cell (the fleet's ``_CellRun``)."""

    __slots__ = (
        "index",
        "cell",
        "fingerprint",
        "cache_fingerprint",
        "attempt",
        "not_before",
        "lane",
    )

    def __init__(
        self, index: int, cell, fingerprint: str, cache_fingerprint: str | None
    ) -> None:
        self.index = index
        self.cell = cell
        self.fingerprint = fingerprint
        self.cache_fingerprint = cache_fingerprint
        self.attempt = 0
        self.not_before = 0.0
        self.lane = 0


class _Lease:
    __slots__ = ("task", "worker", "granted", "expires")

    def __init__(self, task: _LeaseTask, worker: str, now: float, ttl: float) -> None:
        self.task = task
        self.worker = worker
        self.granted = now
        self.expires = now + ttl


class _WorkerState:
    __slots__ = ("name", "conn", "lane", "shipped", "pid", "host")

    def __init__(self, name: str, conn: Connection, lane: int) -> None:
        self.name = name
        self.conn = conn
        self.lane = lane
        self.shipped: set = set()
        self.pid = 0
        self.host = ""


class Coordinator:
    """Lease one plan's cells to a fleet of socket workers.

    ``cells`` are sweep cells in submission order; ``cache`` is the
    shared :class:`~repro.harness.cache.MeasurementCache` both sides
    can reach (its ``directory`` is advertised to joining workers).
    ``result_fingerprints`` maps sweep fingerprints to the content
    fingerprints workers write results under.  ``checkpoint`` is the
    plan layer's duck-typed recorder; ``policy``/``fault_plan``/
    ``stats`` behave exactly as in :func:`repro.parallel.sweep.
    run_cells`.  ``expected_workers`` sizes the affinity lanes;
    ``lease_seconds`` bounds how long a silent worker holds a cell.
    """

    def __init__(
        self,
        cells: list,
        *,
        cache,
        result_fingerprints: dict[str, str] | None = None,
        label: str = "plan",
        policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint=None,
        stats: SweepStats | None = None,
        note: Callable[[str, float], None] | None = None,
        expected_workers: int = 1,
        lease_seconds: float = 30.0,
        bind: tuple[str, int] = ("127.0.0.1", 0),
    ) -> None:
        self.cells = cells
        self.cache = cache
        self.label = label
        self.plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.policy = resolve_policy(policy, self.plan)
        self.checkpoint = checkpoint
        self.stats = stats if stats is not None else SweepStats()
        self.note = note if note is not None else (lambda name, seconds: None)
        self.expected_workers = max(1, expected_workers)
        self.lease_seconds = lease_seconds
        self._bind = bind
        self._fingerprints = dict(result_fingerprints or {})

        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self.outcomes: dict[int, Any] = {}
        self.failures: list[tuple[_LeaseTask, BaseException]] = []
        self._leases: dict[str, _Lease] = {}  # sweep fingerprint -> lease
        self._workers: dict[str, _WorkerState] = {}
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._closing = False
        self.address: tuple[str, int] | None = None

        self.stats.cells += len(cells)
        runs: list[_LeaseTask] = []
        for index, cell in enumerate(cells):
            fingerprint = cell_fingerprint(cell.fn, cell.key, cell.args, cell.kwargs)
            if self.checkpoint is not None and self.checkpoint.has(fingerprint):
                record = self.checkpoint.result_for(fingerprint)
                self.outcomes[index] = record.result
                self.stats.resumed += 1
                self.note(f"resumed[{cell.key}]", record.seconds)
                resumed_payload: dict = {"seconds": record.seconds}
                gail = _events.gail_payload(record.result)
                if gail is not None:
                    resumed_payload["gail"] = gail
                _events.emit(
                    "checkpoint_resumed",
                    cell=cell.key,
                    fingerprint=fingerprint,
                    **resumed_payload,
                )
                continue
            runs.append(
                _LeaseTask(
                    index, cell, fingerprint, self._fingerprints.get(fingerprint)
                )
            )
        if self.stats.resumed:
            log.info(
                "%s: resumed %d of %d cells from checkpoint",
                self.label,
                self.stats.resumed,
                len(self.cells),
            )

        # Locality-aware lease ordering: the same affinity lanes the
        # in-process pool uses, sized to the expected fleet.  A worker
        # drains its own lane first and steals from the fullest other
        # lane when dry, so co-located graphs stay co-located without
        # ever idling a worker.
        self._lanes: list[deque[_LeaseTask]] = [
            deque() for _ in range(self.expected_workers)
        ]
        if runs:
            hints = cell_affinity([task.cell for task in runs])
            lanes = affinity_lanes(hints, self.expected_workers)
            for lane_index, lane in enumerate(lanes):
                for cell_index in lane:
                    task = runs[cell_index]
                    task.lane = lane_index
                    self._lanes[lane_index].append(task)
            populated = sum(1 for lane in lanes if lane)
            _events.emit(
                "affinity_assigned",
                cell=self.label,
                cells=len(runs),
                groups=len({key for key, _ in hints}),
                lanes=populated,
                workers=self.expected_workers,
            )
        self._remaining = len(runs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen, and return the dialable ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._bind)
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        accept = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        accept.start()
        monitor = threading.Thread(
            target=self._expiry_loop, name="repro-cluster-leases", daemon=True
        )
        monitor.start()
        self._threads += [accept, monitor]
        log.info(
            "%s: coordinator listening on %s:%d (%d cell(s), %d lane(s))",
            self.label,
            *self.address,
            self._remaining,
            self.expected_workers,
        )
        return self.address

    def done(self) -> bool:
        with self._lock:
            return self._remaining == 0

    def connected_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every cell completed or permanently failed."""
        deadline = None if timeout is None else monotonic() + timeout
        with self._done:
            while self._remaining:
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._done.wait(timeout=remaining if remaining is not None else 0.5)
        return True

    def result(self) -> dict[Any, Any]:
        """``{cell.key: result}`` in submission order, or raise.

        Exactly the engine's contract: :class:`CellFailedError` names
        the first permanently failed cell and chains its (remote)
        cause, after every other cell had its chance.
        """
        with self._lock:
            if self.failures:
                first_task, first_exc = self.failures[0]
                raise CellFailedError(
                    first_task.cell.key,
                    first_task.attempt + 1,
                    first_exc,
                    also_failed=[task.cell.key for task, _ in self.failures[1:]],
                ) from first_exc
            return {
                cell.key: self.outcomes[index]
                for index, cell in enumerate(self.cells)
                if index in self.outcomes
            }

    def drain_pending(self) -> list:
        """Remove and return not-yet-completed cells in submission order.

        The serial-fallback path: when the fleet is gone for good the
        executor runs what is left in-process, mirroring the pool
        engine's degradation.  Leased cells are *not* drained — their
        workers may still complete them — only queued ones.
        """
        with self._lock:
            tasks = sorted(
                (task for lane in self._lanes for task in lane),
                key=lambda task: task.index,
            )
            for lane in self._lanes:
                lane.clear()
            self._remaining -= len(tasks)
            if not self._remaining:
                self._done.notify_all()
            return [task.cell for task in tasks]

    def absorb(self, outcomes: dict[Any, Any]) -> None:
        """Fold serial-fallback results back in (keyed by cell key)."""
        with self._lock:
            for index, cell in enumerate(self.cells):
                if index not in self.outcomes and cell.key in outcomes:
                    self.outcomes[index] = outcomes[cell.key]

    def close(self, grace: float = 2.0) -> None:
        """Stop accepting, drop every connection, wake every waiter.

        After a finished plan, connected workers are given ``grace``
        seconds to pick up their ``shutdown`` reply and leave on their
        own, so a clean run ends in goodbyes rather than mid-ack EOFs.
        """
        if grace > 0 and self.done():
            deadline = monotonic() + grace
            while monotonic() < deadline:
                with self._lock:
                    if not self._workers:
                        break
                time.sleep(0.02)
        with self._lock:
            self._closing = True
            workers = list(self._workers.values())
            self._done.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for worker in workers:
            worker.conn.close()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _pop_task(self, lane_index: int, now: float) -> _LeaseTask | None:
        """Next eligible task: own lane front, else steal a fullest-lane
        tail (keeps the victim lane's locality run intact)."""
        lane = self._lanes[lane_index % len(self._lanes)]
        for _ in range(len(lane)):
            task = lane.popleft()
            if task.not_before <= now:
                return task
            lane.append(task)
        order = sorted(
            (i for i in range(len(self._lanes)) if i != lane_index % len(self._lanes)),
            key=lambda i: -len(self._lanes[i]),
        )
        for index in order:
            other = self._lanes[index]
            for _ in range(len(other)):
                task = other.pop()
                if task.not_before <= now:
                    return task
                other.appendleft(task)
        return None

    def _retry_after(self, now: float) -> float:
        """How long an idle worker should wait before asking again."""
        queued = [task.not_before for lane in self._lanes for task in lane]
        if queued:
            return min(max(0.0, min(queued) - now) + 0.005, 0.25)
        return 0.05  # everything in flight; completions may requeue

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(Connection(sock),),
                name="repro-cluster-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: Connection) -> None:
        worker: _WorkerState | None = None
        clean = False
        try:
            hello = conn.recv()
            if not isinstance(hello, dict) or hello.get("kind") != "hello":
                conn.send({"kind": "reject", "reason": "expected hello"})
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                conn.send(
                    {
                        "kind": "reject",
                        "reason": f"protocol {hello.get('protocol')!r} != "
                        f"{PROTOCOL_VERSION}",
                    }
                )
                return
            name = str(hello.get("worker") or f"worker@{conn.peer}")
            with self._lock:
                if self._closing:
                    conn.send({"kind": "reject", "reason": "coordinator closing"})
                    return
                # Spread joiners across lanes: each takes the least-
                # crowded lane so lane k's graphs land on one worker
                # until the fleet outgrows the lanes.
                crowd = {index: 0 for index in range(len(self._lanes))}
                for state in self._workers.values():
                    crowd[state.lane] = crowd.get(state.lane, 0) + 1
                lane = min(
                    crowd,
                    key=lambda index: (crowd[index], -len(self._lanes[index]), index),
                )
                if name in self._workers:
                    name = f"{name}@{conn.peer}"
                worker = _WorkerState(name, conn, lane)
                worker.pid = int(hello.get("pid") or 0)
                worker.host = str(hello.get("host") or "")
                self._workers[name] = worker
            conn.send(
                {
                    "kind": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "worker": name,
                    "label": self.label,
                    "cache_dir": getattr(self.cache, "directory", None),
                    "lease_seconds": self.lease_seconds,
                    "heartbeat_seconds": max(self.lease_seconds / 4.0, 0.05),
                    "fault_plan": self.plan.to_string() if self.plan else None,
                }
            )
            _events.emit(
                "worker_joined",
                worker=name,
                pid=worker.pid,
                host=worker.host,
                address=conn.peer,
                lane=worker.lane,
            )
            log.info("%s: worker %s joined (lane %d)", self.label, name, worker.lane)
            while True:
                message = conn.recv()
                if message is None:
                    return
                if not isinstance(message, dict):
                    continue
                kind = message.get("kind")
                if kind == "lease_request":
                    if not self._grant(worker):
                        clean = self.done()
                        if clean or self._closing:
                            return
                elif kind == "complete":
                    self._on_complete(worker, message)
                elif kind == "failed":
                    self._on_failed(worker, message)
                elif kind == "heartbeat":
                    self._on_heartbeat(worker)
                elif kind == "event":
                    bus = _events.current_bus()
                    payload = message.get("message")
                    if bus is not None and isinstance(payload, dict):
                        bus.ingest(payload)
                elif kind == "goodbye":
                    clean = True
                    return
        except (FrameError, OSError) as exc:
            log.warning(
                "%s: connection %s dropped: %s", self.label, conn.peer, exc
            )
        finally:
            conn.close()
            if worker is not None:
                self._release_worker(worker, clean=clean)

    def _grant(self, worker: _WorkerState) -> bool:
        """Lease the next cell to ``worker``; False when none granted."""
        now = monotonic()
        with self._lock:
            if self._closing:
                try:
                    worker.conn.send({"kind": "shutdown"})
                except OSError:
                    pass
                return False
            task = self._pop_task(worker.lane, now)
            if task is None:
                if self._remaining == 0:
                    try:
                        worker.conn.send({"kind": "shutdown"})
                    except OSError:
                        pass
                    return False
                try:
                    worker.conn.send(
                        {"kind": "idle", "retry_after": self._retry_after(now)}
                    )
                except OSError:
                    pass
                return True
            lease = _Lease(task, worker.name, now, self.lease_seconds)
            self._leases[task.fingerprint] = lease
            cell, graphs = strip_cell(task.cell, worker.shipped)
        message = {
            "kind": "lease",
            "cell": cell,
            "graphs": graphs,
            "fingerprint": task.fingerprint,
            "cache_fingerprint": task.cache_fingerprint,
            "attempt": task.attempt,
        }
        try:
            frame_bytes = worker.conn.send(message)
        except OSError:
            # The connection died under us; its cleanup path requeues.
            with self._lock:
                if self._leases.get(task.fingerprint) is lease:
                    del self._leases[task.fingerprint]
                    self._lanes[task.lane].appendleft(task)
            return True
        _events.emit(
            "lease_granted",
            cell=task.cell.key,
            fingerprint=task.fingerprint,
            attempt=task.attempt,
            worker=worker.name,
            lease_seconds=self.lease_seconds,
            frame_bytes=frame_bytes,
            graph_shipped=bool(graphs),
        )
        return True

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _take_lease(self, worker: _WorkerState, fingerprint: str) -> _Lease | None:
        with self._lock:
            lease = self._leases.get(fingerprint)
            if lease is None or lease.worker != worker.name:
                return None  # expired (and possibly re-leased); stale reply
            del self._leases[fingerprint]
            return lease

    def _on_complete(self, worker: _WorkerState, message: dict[str, Any]) -> None:
        fingerprint = str(message.get("fingerprint"))
        lease = self._take_lease(worker, fingerprint)
        if lease is None:
            self._ack(worker, fingerprint, duplicate=True)
            return
        task = lease.task
        entry = self.cache.get(task.cache_fingerprint or task.fingerprint)
        if entry is None:
            # The worker claims success but the shared cache has no
            # readable entry — a torn write, a lost filesystem, or a
            # worker writing to the wrong directory.  Charge the attempt
            # and retry elsewhere.
            exc = CorruptResultError(
                f"cell [{task.cell.key!r}] completed by {worker.name} but its "
                f"result is unreadable in the shared cache"
            )
            self._charge(task, exc, float(message.get("seconds", 0.0)))
            self._ack(worker, fingerprint)
            return
        seconds = float(message.get("seconds", entry.seconds))
        with self._lock:
            self.outcomes[task.index] = entry.result
            self.stats.completed += 1
            self.note(f"cell[{task.cell.key}]", seconds)
            if self.checkpoint is not None:
                self.checkpoint.record(
                    task.fingerprint, task.cell.key, entry.result, seconds
                )
            self._remaining -= 1
            if not self._remaining:
                self._done.notify_all()
        _events.emit(
            "lease_completed",
            cell=task.cell.key,
            fingerprint=task.fingerprint,
            attempt=task.attempt,
            worker=worker.name,
            seconds=seconds,
            lease_age=monotonic() - lease.granted,
        )
        self._ack(worker, fingerprint)

    def _on_failed(self, worker: _WorkerState, message: dict[str, Any]) -> None:
        fingerprint = str(message.get("fingerprint"))
        lease = self._take_lease(worker, fingerprint)
        if lease is not None:
            self._charge(
                lease.task,
                _remote_exception(message),
                float(message.get("seconds", 0.0)),
            )
        self._ack(worker, fingerprint, duplicate=lease is None)

    def _ack(self, worker: _WorkerState, fingerprint: str, duplicate=False) -> None:
        try:
            worker.conn.send(
                {"kind": "ack", "fingerprint": fingerprint, "duplicate": duplicate}
            )
        except OSError:
            pass

    def _on_heartbeat(self, worker: _WorkerState) -> None:
        now = monotonic()
        with self._lock:
            for lease in self._leases.values():
                if lease.worker == worker.name:
                    lease.expires = now + self.lease_seconds

    def _charge(self, task: _LeaseTask, exc: BaseException, elapsed: float) -> None:
        """One failed attempt through the shared engine accounting."""
        with self._lock:
            retried = record_attempt_failure(
                task,
                exc,
                elapsed,
                policy=self.policy,
                stats=self.stats,
                note=self.note,
                failures=self.failures,
                label=self.label,
            )
            if retried:
                self._lanes[task.lane].append(task)
            else:
                self._remaining -= 1
                if not self._remaining:
                    self._done.notify_all()

    def _release_worker(self, worker: _WorkerState, *, clean: bool) -> None:
        """Drop a departed worker; requeue its leases without charging.

        A vanished worker (SIGKILL, OOM, network) surfaces as EOF here
        well before its leases expire; mirroring the engine's broken-
        pool path, the in-flight cells go back to the queue uncharged —
        retries are for *cell* failures, crash recovery is free.  (A
        worker that hangs without dying keeps its connection; that case
        is the expiry monitor's.)
        """
        with self._lock:
            self._workers.pop(worker.name, None)
            requeued = []
            for fingerprint, lease in list(self._leases.items()):
                if lease.worker == worker.name:
                    del self._leases[fingerprint]
                    self._lanes[lease.task.lane].appendleft(lease.task)
                    requeued.append(lease.task.cell.key)
            closing = self._closing
        if clean and not requeued:
            log.info("%s: worker %s left", self.label, worker.name)
            return
        if closing:
            return
        _events.emit(
            "worker_lost",
            worker=worker.name,
            reason="disconnect",
            requeued=len(requeued),
        )
        log.warning(
            "%s: worker %s lost; requeued %d leased cell(s)",
            self.label,
            worker.name,
            len(requeued),
        )

    # ------------------------------------------------------------------
    # lease expiry
    # ------------------------------------------------------------------
    def _expiry_loop(self) -> None:
        interval = min(max(self.lease_seconds / 4.0, 0.02), 0.5)
        while True:
            with self._lock:
                if self._closing or (self._remaining == 0 and not self._leases):
                    return
            self._expire_leases()
            time.sleep(interval)

    def _expire_leases(self) -> None:
        now = monotonic()
        expired: list[_Lease] = []
        with self._lock:
            for fingerprint, lease in list(self._leases.items()):
                if now >= lease.expires:
                    del self._leases[fingerprint]
                    expired.append(lease)
        for lease in expired:
            task = lease.task
            _events.emit(
                "lease_expired",
                cell=task.cell.key,
                fingerprint=task.fingerprint,
                attempt=task.attempt,
                worker=lease.worker,
                lease_age=now - lease.granted,
            )
            # An expired lease is a hung (or hopelessly slow) worker:
            # charged exactly like a pool cell that overran its
            # deadline, feeding the same retry/backoff machinery.
            self._charge(
                task,
                CellTimeoutError(
                    f"cell [{task.cell.key!r}] lease on {lease.worker} expired "
                    f"after {self.lease_seconds:g}s without a heartbeat"
                ),
                now - lease.granted,
            )
