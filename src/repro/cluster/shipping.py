"""Ship each graph to each worker at most once (wire-level blocking).

A sweep's cells overwhelmingly share a handful of graphs; pickling the
same multi-MB CSR arrays into every lease frame would re-pay the
communication cost the paper is about eliminating.  Leases therefore
carry :class:`GraphTicket` placeholders for graph arguments the worker
already holds, plus a ``graphs`` side-table for the (at most one-per-
graph-per-worker) first shipment.  Combined with the coordinator's
affinity lanes — cells sharing a graph lease to the same worker — a
fleet materialises each graph on as few workers as the lane assignment
allows, mirroring what :class:`repro.parallel.shm.GraphStore` does for
the in-process pool.

Tickets are keyed by the same affinity key the scheduler uses
(:func:`repro.parallel.scheduling.cell_affinity`'s ``("mem", id)`` for
a by-value :class:`~repro.graphs.csr.CSRGraph`), so "same graph" means
the same parent-side object — exactly the sharing a compiled plan
produces.  Substitution happens *after* fingerprinting on both sides
(the coordinator fingerprints original cells, the worker receives the
fingerprint in the lease), so tickets never touch cell identity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable

from repro.graphs.csr import CSRGraph

__all__ = ["GraphTicket", "strip_cell", "resolve_cell"]


@dataclass(frozen=True)
class GraphTicket:
    """Placeholder for a graph argument resident on the worker."""

    key: Hashable


def _affinity_key(graph: CSRGraph) -> Hashable:
    # Must match repro.parallel.scheduling._graph_hint so lease routing
    # and shipping dedup agree on what "the same graph" means.
    return ("mem", id(graph))


def strip_cell(cell, shipped: set) -> tuple[Any, dict[Hashable, CSRGraph]]:
    """Replace ``cell``'s graph arguments with tickets for one worker.

    ``shipped`` is the per-worker set of graph keys already sent; graphs
    not yet in it are returned in the side-table (and added), so the
    caller ships them alongside the lease exactly once.
    """
    blobs: dict[Hashable, CSRGraph] = {}

    def swap(value: Any) -> Any:
        if isinstance(value, CSRGraph):
            key = _affinity_key(value)
            if key not in shipped:
                shipped.add(key)
                blobs[key] = value
            return GraphTicket(key)
        return value

    args = tuple(swap(value) for value in cell.args)
    kwargs = {name: swap(value) for name, value in cell.kwargs.items()}
    if args == cell.args and kwargs == cell.kwargs:
        return cell, blobs
    return replace(cell, args=args, kwargs=kwargs), blobs


def resolve_cell(cell, resident: dict[Hashable, CSRGraph]):
    """Swap tickets back for graphs from the worker's resident store."""

    def swap(value: Any) -> Any:
        if isinstance(value, GraphTicket):
            try:
                return resident[value.key]
            except KeyError:
                raise RuntimeError(
                    f"lease references unshipped graph {value.key!r}"
                ) from None
        return value

    args = tuple(swap(value) for value in cell.args)
    kwargs = {name: swap(value) for name, value in cell.kwargs.items()}
    if args == cell.args and kwargs == cell.kwargs:
        return cell
    return replace(cell, args=args, kwargs=kwargs)
