"""Distributed plan execution: the cell DAG as a cluster scheduler.

The paper's blocking insight — batch work by destination so
communication amortizes — applied to the harness itself.  A
:class:`~repro.cluster.coordinator.Coordinator` leases a compiled
plan's cells by content fingerprint to socket-connected workers
(:mod:`repro.cluster.worker`, ``repro-pb worker``); cells sharing a
graph are leased to the same worker (the pool's affinity lanes,
cluster-sized) and each graph ships over the wire at most once per
worker (:mod:`repro.cluster.shipping`).  Results travel through the
shared, atomically-written :class:`repro.harness.cache.
MeasurementCache`; worker death or hang is recovered through
heartbeat-expiring leases feeding the PR-4 retry/backoff machinery.

:class:`DistributedExecutor` plugs the whole subsystem into
:func:`repro.plan.execute_plan` through the
:class:`~repro.plan.executors.Executor` seam — ``repro-pb reproduce
--distribute 4`` runs the exact plan a serial run would, byte-identical
artifacts included.  Everything is stdlib: ``socket`` + ``struct``
framing (:mod:`repro.cluster.wire`), pickled plain-data messages, no
new dependencies.
"""

from repro.cluster.coordinator import Coordinator, RemoteCellError
from repro.cluster.executor import DistributedExecutor
from repro.cluster.shipping import GraphTicket, resolve_cell, strip_cell
from repro.cluster.wire import (
    PROTOCOL_VERSION,
    Connection,
    FrameError,
    parse_endpoint,
)
from repro.cluster.worker import run_worker

__all__ = [
    "Coordinator",
    "DistributedExecutor",
    "RemoteCellError",
    "GraphTicket",
    "strip_cell",
    "resolve_cell",
    "Connection",
    "FrameError",
    "PROTOCOL_VERSION",
    "parse_endpoint",
    "run_worker",
]
