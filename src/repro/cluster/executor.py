"""``DistributedExecutor``: run a plan's cells on a socket worker fleet.

The executor is the bridge between the plan layer's
:class:`~repro.plan.executors.Executor` seam and the cluster subsystem:
it stands up a :class:`~repro.cluster.coordinator.Coordinator`,
optionally spawns local worker processes (real OS processes via the
``spawn`` start method, so chaos tests can ``SIGKILL`` them exactly
like a remote host dying), lets any number of external ``repro-pb
worker`` processes join over TCP, and folds the outcomes back with the
same contract :func:`repro.parallel.sweep.run_cells` gives.

Results travel through a shared :class:`~repro.harness.cache.
MeasurementCache` directory.  When the plan already runs with
``--cache`` that cache doubles as the transport (workers warm it
directly); otherwise a private temporary cache directory is created for
the run and removed afterwards.

Degradation mirrors the pool engine: a dead spawned worker is respawned
up to ``max_respawns`` times; if the whole fleet is gone and nobody
external is connected, the remaining cells fall back to in-process
serial execution (``stats.serial_fallback``), so a distributed run
never strands a plan.
"""

from __future__ import annotations

import tempfile
from time import monotonic
from typing import Any

from repro.cluster.coordinator import Coordinator
from repro.obs.log import get_logger
from repro.obs.spans import current_recorder, span
from repro.obs.trace import counter_sample
from repro.parallel.resilience import SweepStats
from repro.plan.executors import ExecutionRequest, Executor

__all__ = ["DistributedExecutor"]

log = get_logger("cluster.executor")


class DistributedExecutor(Executor):
    """Lease cells to a worker fleet instead of a local process pool.

    ``spawn_workers`` local worker processes are started against the
    coordinator (0 = none; rely on external ``repro-pb worker``
    processes dialing ``bind``).  ``bind`` is the coordinator's listen
    address — loopback by default; bind wider only on a network that
    already shares the cache filesystem (see ``docs/distributed.md``).
    ``lease_seconds`` bounds how long a silent worker may hold a cell
    before it is charged a timeout and re-leased.
    """

    name = "distributed"

    def __init__(
        self,
        *,
        spawn_workers: int = 2,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        lease_seconds: float = 30.0,
        max_respawns: int = 1,
    ) -> None:
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be >= 0")
        self.spawn_workers = spawn_workers
        self.bind = bind
        self.lease_seconds = lease_seconds
        self.max_respawns = max_respawns

    # ------------------------------------------------------------------
    def run(self, request: ExecutionRequest) -> dict[Any, Any]:
        if not request.cells:
            return {}
        recorder = current_recorder()
        with span(f"cluster[{request.label}]") as cluster_span:
            base = getattr(cluster_span, "path", None)
            prefix = f"{base}/" if base else ""

            def note(name: str, seconds: float) -> None:
                if recorder is not None:
                    recorder.record(f"{prefix}{name}", seconds)

            return self._run(request, note)

    # ------------------------------------------------------------------
    def _run(self, request: ExecutionRequest, note) -> dict[Any, Any]:
        import multiprocessing

        from repro.cluster.worker import spawned_main

        stats = request.stats if request.stats is not None else SweepStats()
        tempdir = None
        cache = request.cache
        if cache is None or not getattr(cache, "directory", None):
            from repro.harness.cache import MeasurementCache

            tempdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            cache = MeasurementCache(tempdir.name)
            log.debug(
                "%s: no shared cache configured; using transport cache %s",
                request.label,
                tempdir.name,
            )

        expected = self.spawn_workers or max(request.workers or 1, 1)
        coordinator = Coordinator(
            request.cells,
            cache=cache,
            result_fingerprints=request.result_fingerprints,
            label=request.label,
            policy=request.policy,
            fault_plan=request.fault_plan,
            checkpoint=request.checkpoint,
            stats=stats,
            note=note,
            expected_workers=expected,
            lease_seconds=self.lease_seconds,
            bind=self.bind,
        )
        host, port = coordinator.start()
        context = multiprocessing.get_context("spawn")
        processes: list = []
        setup_started = monotonic()
        for _ in range(self.spawn_workers):
            processes.append(self._spawn(context, spawned_main, host, port, cache))
        if self.spawn_workers:
            log.info(
                "%s: spawned %d fleet worker(s) against %s:%d",
                request.label,
                self.spawn_workers,
                host,
                port,
            )
        else:
            log.info(
                "%s: waiting for external workers on %s:%d (repro-pb worker "
                "--connect %s:%d)",
                request.label,
                host,
                port,
                host,
                port,
            )

        respawns_left = self.max_respawns
        warned_no_workers = False
        try:
            while not coordinator.wait(timeout=0.1):
                for index, process in enumerate(processes):
                    if process is None or process.is_alive():
                        continue
                    process.join()
                    processes[index] = None
                    if coordinator.done():
                        continue
                    if respawns_left > 0:
                        respawns_left -= 1
                        log.warning(
                            "%s: fleet worker died (exit %s); respawning "
                            "(%d respawn(s) left)",
                            request.label,
                            process.exitcode,
                            respawns_left,
                        )
                        processes[index] = self._spawn(
                            context, spawned_main, host, port, cache
                        )
                alive = sum(1 for process in processes if process is not None)
                if (
                    self.spawn_workers
                    and not alive
                    and coordinator.connected_workers() == 0
                    and not coordinator.done()
                ):
                    self._serial_fallback(coordinator, request, stats)
                if (
                    not self.spawn_workers
                    and not warned_no_workers
                    and coordinator.connected_workers() == 0
                    and monotonic() - setup_started > 10.0
                ):
                    warned_no_workers = True
                    log.warning(
                        "%s: still no workers after 10s; attach some with "
                        "`repro-pb worker --connect %s:%d`",
                        request.label,
                        host,
                        port,
                    )
            counter_sample(
                "sweep_resilience",
                {
                    "retries": float(stats.retries),
                    "resumed": float(stats.resumed),
                    "completed": float(stats.completed),
                },
            )
            return coordinator.result()
        finally:
            # Give spawned workers the chance to drain a clean `shutdown`
            # reply before their connections are torn down.
            for process in processes:
                if process is not None:
                    process.join(timeout=5.0)
            coordinator.close()
            for process in processes:
                if process is None:
                    continue
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
            if tempdir is not None:
                tempdir.cleanup()

    @staticmethod
    def _spawn(context, target, host: str, port: int, cache):
        process = context.Process(
            target=target,
            args=(host, port, cache.directory),
            name="repro-fleet-worker",
            daemon=True,
        )
        process.start()
        return process

    @staticmethod
    def _serial_fallback(
        coordinator: Coordinator, request: ExecutionRequest, stats: SweepStats
    ) -> None:
        """The whole fleet is gone: run what is left in-process.

        Mirrors the pool engine's serial degradation — the run completes
        (slower) rather than stranding the plan.  Cells still leased to
        vanished-but-undetected workers are recovered by lease expiry
        and picked up on the next fallback pass.
        """
        from repro.parallel.sweep import run_cells

        cells = coordinator.drain_pending()
        if not cells:
            return
        log.warning(
            "%s: fleet exhausted; executing %d remaining cell(s) serially "
            "in-process",
            request.label,
            len(cells),
        )
        stats.serial_fallback = True
        # The coordinator already counted these cells; the serial engine
        # will count them again.
        stats.cells -= len(cells)
        outcomes = run_cells(
            cells,
            workers=1,
            label=request.label,
            policy=request.policy,
            fault_plan=request.fault_plan,
            checkpoint=request.checkpoint,
            stats=stats,
        )
        coordinator.absorb(outcomes)
