"""Socket framing for the cell fleet: length-prefixed pickled dicts.

The cluster protocol is deliberately minimal — stdlib only (``socket`` +
``struct`` + ``pickle``), one frame per message, no streaming state:

* a frame is ``!Q`` (8-byte big-endian length) followed by a pickled
  payload, which every message keeps a plain picklable object (dicts of
  scalars, plus sweep cells and their plain-data arguments);
* the **data plane never rides the wire**: results travel through the
  shared :class:`repro.harness.cache.MeasurementCache` directory, so
  frames stay small except when a graph argument ships the first time
  (see :mod:`repro.cluster.shipping`);
* pickle implies *trust*: anyone who can reach the coordinator port can
  execute code in the fleet, exactly like anyone who can write the
  shared cache directory.  The coordinator binds loopback by default;
  bind wider only on networks that already share the cache filesystem
  (``docs/distributed.md``).

:class:`Connection` serialises concurrent senders with a lock (a
worker's heartbeat and telemetry threads share its socket) while
receiving stays single-consumer — each side reads frames from one
thread only, so request/reply ordering needs no correlation ids.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any

__all__ = ["PROTOCOL_VERSION", "Connection", "FrameError", "parse_endpoint"]

#: Bumped when the frame or message vocabulary changes incompatibly;
#: checked in the hello/welcome handshake.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("!Q")

#: Refuse frames beyond 4 GiB — a corrupt header must not trigger a
#: multi-terabyte allocation.
MAX_FRAME = 1 << 32


class FrameError(RuntimeError):
    """The peer sent something that is not a protocol frame."""


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (IPv6 hosts in ``[brackets]``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in {text!r}")
    return host, port


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on clean EOF at a frame
    boundary; a mid-frame EOF raises :class:`FrameError`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise FrameError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class Connection:
    """One framed, thread-safe-to-send protocol connection."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self.sent_bytes = 0
        self.received_bytes = 0
        try:
            peer = sock.getpeername()
        except OSError:
            peer = None
        if isinstance(peer, tuple) and len(peer) >= 2:
            self.peer = f"{peer[0]}:{peer[1]}"
        else:  # AF_UNIX (a path or empty) — used by tests
            self.peer = str(peer) if peer else "?"

    def send(self, message: Any) -> int:
        """Frame and send one message; returns the frame size in bytes.

        Raises ``OSError`` when the peer is gone — callers decide
        whether that is fatal (a worker losing its coordinator) or
        routine (a coordinator telling a dead worker to shut down).
        """
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(len(payload)) + payload
        with self._send_lock:
            self._sock.sendall(frame)
            self.sent_bytes += len(frame)
        return len(frame)

    def recv(self) -> Any | None:
        """Receive one message, or ``None`` on clean EOF."""
        header = _recv_exact(self._sock, _HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
        payload = _recv_exact(self._sock, length)
        if payload is None:
            raise FrameError("connection closed between header and payload")
        self.received_bytes += length + _HEADER.size
        try:
            return pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 — poisoned frame, not our bug
            raise FrameError(f"undecodable frame from {self.peer}: {exc}") from exc

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @classmethod
    def connect(
        cls, host: str, port: int, *, timeout: float | None = None
    ) -> "Connection":
        """Dial a coordinator.  ``timeout`` applies to the dial only;
        the established connection blocks indefinitely (leases are
        heartbeat-bounded, not read-timeout-bounded)."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)
