"""Analytic parallel-performance model (paper Sections VI-A and VII).

The paper's platform facts drive this model: total memory bandwidth is a
*shared* resource (~1191 M requests/s across all 16 cores), while
instruction throughput scales with the thread count.  Consequently:

* the memory-bound baseline stops scaling once a few threads saturate
  bandwidth — which is why its measured reductions in execution time are
  smaller than its reductions in communication (Section VI-C);
* the instruction-heavy PB/DPB keep scaling until they too hit the
  bandwidth wall — at a much lower traffic level, hence their speedups;
* LLC capacity is also shared, so the per-thread sums slice must shrink:
  "it is often best to decrease the bin width since the additional
  threads contend for the same cache capacity" (Section VII).
"""

from __future__ import annotations

from repro.graphs.partition import choose_block_width
from repro.memsim.counters import MemCounters
from repro.models.machine import MachineSpec
from repro.models.performance import TimeBreakdown
from repro.utils.validation import check_positive

__all__ = ["recommended_bin_width", "parallel_time", "thread_scaling"]

#: Thread count whose aggregate rate MachineSpec.instr_rate describes.
FULL_MACHINE_THREADS = 16


def recommended_bin_width(
    machine: MachineSpec, num_threads: int, *, target_fraction: float = 0.5
) -> int:
    """Bin width (vertices) when ``num_threads`` share the LLC.

    Each concurrently-processed sums slice gets ``target_fraction / T`` of
    the cache: the paper's rule of shrinking bins as threads grow.
    """
    check_positive("num_threads", num_threads)
    return choose_block_width(
        num_vertices=1 << 62,
        cache_words=max(machine.cache_words // num_threads, 2),
        target_fraction=target_fraction,
    )


def parallel_time(
    machine: MachineSpec,
    requests: float,
    instructions: float,
    num_threads: int,
    *,
    l1_misses: float = 0.0,
) -> TimeBreakdown:
    """Bottleneck time with ``num_threads`` of the machine's cores active.

    Memory bandwidth is shared (unchanged); instruction throughput and L1
    stall absorption scale linearly with the thread count up to the full
    machine.
    """
    check_positive("num_threads", num_threads)
    threads = min(num_threads, FULL_MACHINE_THREADS)
    instr_rate = machine.instr_rate * threads / FULL_MACHINE_THREADS
    t_mem = requests / machine.mem_bandwidth_requests
    t_instr = (
        instructions / instr_rate
        + l1_misses * machine.l1_miss_penalty * FULL_MACHINE_THREADS / threads
    )
    total = max(t_mem, t_instr) + machine.overlap * min(t_mem, t_instr)
    return TimeBreakdown(total=total, memory_bound=t_mem, instruction_bound=t_instr)


def thread_scaling(
    machine: MachineSpec,
    counters: MemCounters,
    instructions: float,
    thread_counts: list[int],
) -> dict[int, TimeBreakdown]:
    """Modelled time of one measured kernel run at each thread count.

    Communication is thread-count independent (each cache line still moves
    once); only the compute side scales.  The shape this produces — the
    baseline flat-lining early, PB/DPB scaling further before hitting the
    same bandwidth wall at a lower level — is the paper's Section VI-A
    bandwidth-utilization story.
    """
    return {
        t: parallel_time(machine, counters.total_requests, instructions, t)
        for t in thread_counts
    }
