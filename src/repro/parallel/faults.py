"""Deterministic fault injection for sweep cells.

The resilience layer (:mod:`repro.parallel.resilience`) claims that sweep
results under crashes, timeouts, and corrupted results are bit-identical
to a fault-free serial run.  Claims about failure handling are only
testable if failures can be *produced on demand, reproducibly* — so this
module injects them from a seeded plan instead of relying on chaos:

* a :class:`FaultPlan` decides, for every ``(cell fingerprint, attempt)``
  pair, whether to inject a fault and of which kind, using SHA-256 of the
  seed — the decision is a pure function, identical in every process and
  on every platform (Python's salted ``hash`` is deliberately avoided);
* attempts at or beyond ``max_per_cell`` are always clean, so any retry
  policy with ``max_retries >= max_per_cell`` is guaranteed to converge;
* plans parse from a compact string (``"seed=7,rate=0.3,kinds=crash|
  timeout|corrupt,max=2"``) so they fit in the ``REPRO_FAULT_PLAN``
  environment variable (picked up by every sweep — the CI chaos job's
  hook) and the reproduce driver's ``--inject-faults`` flag.

Fault kinds:

``crash``
    the cell raises :class:`InjectedCrash` (stands in for a worker
    exception or process death);
``timeout``
    the cell raises :class:`InjectedTimeout` (stands in for the executor
    detecting a deadline overrun — real wall-clock timeouts are enforced
    separately by the retry engine's ``cell_timeout``);
``corrupt``
    the cell returns :data:`CORRUPT_RESULT` instead of its value (stands
    in for a poisoned result; the retry engine validates results against
    this poison marker and retries).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_KINDS",
    "CORRUPT_RESULT",
    "FaultInjected",
    "InjectedCrash",
    "InjectedTimeout",
    "FaultPlan",
    "is_corrupt",
]

#: Environment variable holding a serialized plan; every sweep honours it.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Recognised fault kinds, in plan-string order.
FAULT_KINDS = ("crash", "timeout", "corrupt")

#: Poison value returned by a ``corrupt`` fault.  A distinctive string so
#: it survives pickling across process boundaries and compares safely
#: against any real result (numpy-array results make ``==`` hazardous;
#: see :func:`is_corrupt`).
CORRUPT_RESULT = "__repro_corrupt_result__"


class FaultInjected(RuntimeError):
    """Base class of all injected failures (lets handlers count them)."""


class InjectedCrash(FaultInjected):
    """Deterministic stand-in for a cell crash."""


class InjectedTimeout(FaultInjected):
    """Deterministic stand-in for a cell exceeding its deadline."""


def is_corrupt(result: object) -> bool:
    """Whether ``result`` is the injected poison value."""
    return isinstance(result, str) and result == CORRUPT_RESULT


def _unit_interval(*parts: str) -> float:
    """Uniform [0, 1) value derived from SHA-256 of the joined parts."""
    digest = hashlib.sha256(":".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic schedule of injected faults.

    ``rate`` is the per-``(cell, attempt)`` fault probability; ``kinds``
    the kinds drawn from (uniformly, by an independent hash); attempts
    numbered ``max_per_cell`` and beyond are always clean.  ``rate=1.0``
    with a large ``max_per_cell`` makes a cell fail every attempt — the
    retry-exhaustion test case.
    """

    seed: int
    rate: float
    kinds: tuple[str, ...] = ("crash",)
    max_per_cell: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("fault plan needs at least one kind")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.max_per_cell < 0:
            raise ValueError("max_per_cell must be >= 0")

    def decide(self, fingerprint: str, attempt: int) -> str | None:
        """Fault kind to inject for this ``(cell, attempt)``, or ``None``."""
        if attempt >= self.max_per_cell:
            return None
        if _unit_interval(str(self.seed), fingerprint, str(attempt)) >= self.rate:
            return None
        pick = _unit_interval(str(self.seed), fingerprint, str(attempt), "kind")
        return self.kinds[int(pick * len(self.kinds)) % len(self.kinds)]

    # ------------------------------------------------------------------
    # serialization (CLI flag / environment variable)
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        return (
            f"seed={self.seed},rate={self.rate:g},"
            f"kinds={'|'.join(self.kinds)},max={self.max_per_cell}"
        )

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse ``"seed=7,rate=0.3,kinds=crash|timeout,max=2"``."""
        fields: dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"malformed fault-plan entry {part!r} in {text!r}")
            name, _, value = part.partition("=")
            fields[name.strip()] = value.strip()
        unknown = set(fields) - {"seed", "rate", "kinds", "max"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {sorted(unknown)} in {text!r}"
            )
        try:
            seed = int(fields.get("seed", "0"))
            rate = float(fields.get("rate", "0.25"))
            max_per_cell = int(fields.get("max", "2"))
        except ValueError as exc:
            raise ValueError(f"malformed fault plan {text!r}: {exc}") from None
        kinds = tuple(
            kind for kind in fields.get("kinds", "crash").split("|") if kind
        )
        return cls(seed=seed, rate=rate, kinds=kinds, max_per_cell=max_per_cell)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan from ``REPRO_FAULT_PLAN``, or ``None`` when unset/empty."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.from_string(text) if text else None
