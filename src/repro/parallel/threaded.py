"""A genuinely multi-threaded deterministic propagation blocking kernel.

Executes the paper's Section VII parallelization with real Python threads:

* **binning** — vertices are split into contiguous, *edge-balanced* ranges
  (static schedule); each thread bins its own range's propagations into
  its **own set of bins**, so there are no atomics and bin allocation
  sizes are known in advance;
* **accumulate** — bins (vertex ranges) are distributed across threads;
  each sums slice is written by exactly one thread, again atomic-free.
  A bin's propagations are scattered across the per-thread bin segments,
  so the accumulating thread drains one segment per binning thread.

NumPy releases the GIL inside the large fancy-indexing / ``bincount``
operations that dominate both phases, so threads do run concurrently.
The speedup on small scaled graphs is modest (per-call overhead), but the
structure — and the absence of any synchronization beyond the two phase
barriers — is exactly the paper's.

The traced view models the same structure: per-thread bins multiply the
partial-line rounding at the tail of every (thread, bin) segment, which
is the communication cost of the parallelization.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.kernels.base import DAMPING, apply_damping, compute_contributions
from repro.kernels.propagation_blocking import DeterministicPBPageRank
from repro.memsim.trace import Region
from repro.models.machine import SIMULATED_MACHINE, MachineSpec
from repro.obs.spans import span
from repro.parallel.scheduling import edge_balanced_ranges
from repro.utils.validation import pow2_at_least
from repro.utils.validation import check_positive

__all__ = ["ThreadedDPBPageRank"]


class ThreadedDPBPageRank(DeterministicPBPageRank):
    """DPB with the paper's two-phase thread parallelization.

    Parameters
    ----------
    num_threads:
        Worker threads for both phases.  The bin width defaults to the
        machine rule divided by thread contention (see
        :func:`repro.parallel.model.recommended_bin_width`).
    """

    name = "dpb-mt"

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec = SIMULATED_MACHINE,
        *,
        num_threads: int = 4,
        bin_width: int | None = None,
    ) -> None:
        check_positive("num_threads", num_threads)
        if bin_width is None:
            from repro.parallel.model import recommended_bin_width

            bin_width = min(
                recommended_bin_width(machine, num_threads),
                pow2_at_least(graph.num_vertices),
            )
        super().__init__(graph, machine, bin_width=bin_width)
        self.num_threads = num_threads
        # Static binning schedule: contiguous vertex ranges, edge-balanced.
        self.ranges = edge_balanced_ranges(graph, num_threads)
        # Per-thread deterministic layouts: thread t bins the edges of its
        # vertex range; within (thread, bin) order is CSR order.
        offsets = graph.offsets
        shift = self.layout.shift
        self._thread_state = []
        for start, stop in self.ranges:
            lo, hi = int(offsets[start]), int(offsets[stop])
            dst = graph.targets[lo:hi]
            bin_ids = dst.astype(np.int64) >> shift
            order = np.argsort(bin_ids, kind="stable")
            bounds = np.zeros(self.layout.num_bins + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(bin_ids, minlength=self.layout.num_bins), out=bounds[1:]
            )
            self._thread_state.append(
                {
                    "edge_lo": lo,
                    "edge_hi": hi,
                    "vertex_range": (start, stop),
                    "order": order,
                    "sorted_dst": dst[order],
                    "bounds": bounds,
                }
            )

    # ------------------------------------------------------------------
    # executable
    # ------------------------------------------------------------------
    def run(
        self,
        num_iterations: int = 1,
        scores: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> np.ndarray:
        scores = self._initial_scores(scores)
        graph = self.graph
        n = graph.num_vertices
        layout = self.layout
        degrees = np.asarray(self._out_degrees)
        num_bins = layout.num_bins

        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            for _ in range(num_iterations):
                contributions = compute_contributions(scores, degrees)

                # ---- binning phase: one task per thread, no atomics ----
                # Worker-side spans nest under the worker thread's own
                # (initially empty) span stack, not the caller's — each
                # thread's nesting is independent by design.
                def bin_range(state):
                    with span("binning_task"):
                        start, stop = state["vertex_range"]
                        local_deg = degrees[start:stop]
                        per_edge = np.repeat(contributions[start:stop], local_deg)
                        return per_edge[state["order"]].astype(np.float64)

                with span("binning"):
                    binned = list(pool.map(bin_range, self._thread_state))

                # ---- accumulate phase: one task per bin, disjoint slices ----
                sums = np.zeros(n, dtype=np.float64)

                def accumulate_bin(b):
                    with span("accumulate_task"):
                        slice_start, slice_stop = layout.bin_slice(b)
                        width = slice_stop - slice_start
                        acc = np.zeros(width, dtype=np.float64)
                        for state, values in zip(self._thread_state, binned):
                            lo = int(state["bounds"][b])
                            hi = int(state["bounds"][b + 1])
                            if lo == hi:
                                continue
                            acc += np.bincount(
                                state["sorted_dst"][lo:hi] - slice_start,
                                weights=values[lo:hi],
                                minlength=width,
                            )
                        sums[slice_start:slice_stop] = acc

                with span("accumulate"):
                    list(pool.map(accumulate_bin, range(num_bins)))
                with span("apply"):
                    scores = apply_damping(sums.astype(np.float32), n, damping)
        return scores

    # ------------------------------------------------------------------
    # trace: per-thread bins change only the bin-tail rounding
    # ------------------------------------------------------------------
    def _bin_regions(self, allocate) -> list[Region]:
        """One region per (thread, bin) segment, concatenated per bin.

        Compared to single-threaded DPB this adds up to ``threads x bins``
        partially-filled tail lines — the communication overhead of
        private per-thread bins the paper accepts to avoid atomics.
        """
        regions: list[Region] = []
        space_alloc = allocate
        for b in range(self.layout.num_bins):
            words = 0
            for state in self._thread_state:
                count = int(state["bounds"][b + 1] - state["bounds"][b])
                # Round each thread's segment up to whole lines.
                wpl = self.machine.words_per_line
                words += -(-max(count, 0) * self.words_per_pair // wpl) * wpl
            regions.append(space_alloc(f"bin_{b}", max(words, 1)))
        return regions

