"""Work scheduling for parallel graph kernels (paper Section VII).

Two schedulers mirror the paper's choices:

* :func:`edge_balanced_ranges` — the *static* schedule for the binning
  phase.  Splitting vertices evenly is wrong on skewed graphs (one thread
  could receive all of a hub's edges); splitting by *edge count* bounds
  each thread's propagations.  Implemented as a binary search over the CSR
  offsets, so it costs O(T log n).
* :func:`greedy_assign` — the *dynamic* schedule for the accumulate phase,
  modelled offline as greedy longest-processing-time assignment of
  per-range costs to threads (what a dynamic work queue converges to).

The same blocking insight applies to the harness itself: sweep cells
that share a graph should land on the same worker so the graph is
materialized on as few processes as possible.  :func:`cell_affinity`
extracts a ``(graph key, edge cost)`` hint per sweep cell and
:func:`affinity_lanes` assigns whole affinity groups to worker lanes
with the very same :func:`greedy_assign` balancer (cost = estimated
edges × cells), which the resilient engine's lane queue turns into
de-facto worker pinning (:mod:`repro.parallel.resilience`).
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.parallel.shm import GraphRef
from repro.utils.validation import check_positive

__all__ = [
    "edge_balanced_ranges",
    "range_edge_counts",
    "greedy_assign",
    "imbalance",
    "cell_affinity",
    "affinity_lanes",
]


def edge_balanced_ranges(graph: CSRGraph, num_threads: int) -> list[tuple[int, int]]:
    """Split vertices into ``num_threads`` contiguous ranges of ~equal edges.

    Range boundaries are found by binary-searching the CSR offsets for the
    ideal per-thread edge quota.  Every vertex appears in exactly one
    range; ranges are contiguous and ordered.  Degenerate cases (more
    threads than vertices, empty graph) produce empty trailing ranges.
    """
    check_positive("num_threads", num_threads)
    n = graph.num_vertices
    m = graph.num_edges
    offsets = graph.offsets
    boundaries = [0]
    for t in range(1, num_threads):
        target = m * t / num_threads
        cut = int(np.searchsorted(offsets, target, side="left"))
        cut = min(max(cut, boundaries[-1]), n)
        boundaries.append(cut)
    boundaries.append(n)
    return [(boundaries[i], boundaries[i + 1]) for i in range(num_threads)]


def range_edge_counts(graph: CSRGraph, ranges: list[tuple[int, int]]) -> np.ndarray:
    """Edges owned by each vertex range."""
    offsets = graph.offsets
    return np.array(
        [int(offsets[stop] - offsets[start]) for start, stop in ranges], dtype=np.int64
    )


def greedy_assign(costs: np.ndarray, num_threads: int) -> tuple[list[list[int]], float]:
    """Longest-processing-time greedy assignment of tasks to threads.

    Returns ``(assignment, makespan)`` where ``assignment[t]`` lists the
    task indices given to thread ``t`` and ``makespan`` is the largest
    per-thread total cost.  This is the classic 4/3-approximation and a
    faithful offline model of a dynamic work queue with decreasing-size
    pulls (the accumulate-phase scheduling).
    """
    check_positive("num_threads", num_threads)
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValueError("costs must be 1-D")
    assignment: list[list[int]] = [[] for _ in range(num_threads)]
    heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    for task in np.argsort(-costs, kind="stable"):
        load, t = heapq.heappop(heap)
        assignment[t].append(int(task))
        heapq.heappush(heap, (load + float(costs[task]), t))
    makespan = max(load for load, _ in heap)
    return assignment, makespan


def imbalance(costs: np.ndarray, num_threads: int, *, dynamic: bool = True) -> float:
    """Load imbalance ``makespan / ideal`` for a task-cost vector.

    ``dynamic=True`` uses :func:`greedy_assign`; ``dynamic=False`` models
    a naive static round-robin (tasks dealt in index order) — the contrast
    the paper's scheduling choices are about.
    """
    check_positive("num_threads", num_threads)
    costs = np.asarray(costs, dtype=np.float64)
    total = float(costs.sum())
    if total == 0.0:
        return 1.0
    ideal = total / num_threads
    if dynamic:
        _, makespan = greedy_assign(costs, num_threads)
    else:
        loads = np.zeros(num_threads)
        for i, cost in enumerate(costs):
            loads[i % num_threads] += cost
        makespan = float(loads.max())
    return makespan / ideal


# ----------------------------------------------------------------------
# sweep-cell graph affinity (the harness-side blocking schedule)
# ----------------------------------------------------------------------
def _graph_hint(value: Any) -> tuple[Hashable, float] | None:
    """``(affinity key, edge cost)`` if ``value`` is a graph argument."""
    if isinstance(value, GraphRef):
        return ("shm", value.fingerprint), float(value.num_edges)
    if isinstance(value, CSRGraph):
        # By identity, not content digest: hashing a multi-MB graph per
        # cell would cost more than the locality buys, and plan-compiled
        # sweeps pass the same object for equal content anyway.
        return ("mem", id(value)), float(value.num_edges)
    return None


def cell_affinity(cells: Sequence[Any]) -> list[tuple[Hashable, float]]:
    """Affinity hint ``(group key, cost)`` for every sweep cell.

    Cells are grouped by the first graph argument they carry (a
    :class:`~repro.parallel.shm.GraphRef` groups by content fingerprint,
    a by-value :class:`CSRGraph` by object identity) with the graph's
    edge count as the cost estimate.  A cell with no graph argument —
    e.g. the scaling cells, which generate their own graph — forms a
    singleton group of unit cost, so it still load-balances but never
    constrains placement.
    """
    hints: list[tuple[Hashable, float]] = []
    for index, cell in enumerate(cells):
        hint = None
        for value in (*cell.args, *cell.kwargs.values()):
            hint = _graph_hint(value)
            if hint is not None:
                break
        if hint is None:
            hints.append((("cell", index), 1.0))
        else:
            key, edges = hint
            hints.append((key, max(edges, 1.0)))
    return hints


def affinity_lanes(
    hints: Sequence[tuple[Hashable, float]], num_workers: int
) -> list[list[int]]:
    """Assign affinity groups to ``num_workers`` lanes, cost-balanced.

    ``hints`` is one ``(group key, cost)`` pair per cell (see
    :func:`cell_affinity`).  Whole groups are assigned to lanes via
    :func:`greedy_assign` on total group cost (cost per cell × cells in
    the group), so cells sharing a key always co-locate and lane loads
    stay within the greedy 4/3 bound.  Returns exactly ``num_workers``
    lists of cell indices (possibly empty), each in submission order.
    """
    check_positive("num_workers", num_workers)
    groups: dict[Hashable, list[int]] = {}
    for index, (key, _) in enumerate(hints):
        groups.setdefault(key, []).append(index)
    keys = list(groups)
    costs = np.array(
        [sum(hints[index][1] for index in groups[key]) for key in keys],
        dtype=np.float64,
    )
    assignment, _ = greedy_assign(costs, num_workers)
    return [
        sorted(index for g in lane for index in groups[keys[g]])
        for lane in assignment
    ]
