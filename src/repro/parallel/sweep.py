"""Process-parallel sweep executor for independent simulation cells.

Figure sweeps (7, 8, 9/10) and the suite measurements behind figures 4-6
are embarrassingly parallel: every (graph, kernel, config) cell is an
independent simulation sharing no mutable state.  :func:`run_cells` fans a
list of :class:`SweepCell` specs across a ``ProcessPoolExecutor`` and
returns results keyed by cell, preserving the exact values a serial run
produces (same seeds, same arithmetic — the parallelism is across cells,
never inside one).

Cells must be *picklable*: the callable has to be a module-level function
and the arguments plain data (CSR graphs and machine specs are dataclasses
of arrays and scalars, so they ship fine).  Worker processes do not inherit
the parent's span recorder; instead each worker times its cell with
``perf_counter`` and the parent folds the measurement into the active
:class:`~repro.obs.spans.SpanRecorder` as ``sweep[label]/cell[key]`` — so
``--workers 8`` still yields a complete per-cell timing breakdown in run
reports.

Execution is fault tolerant (see :mod:`repro.parallel.resilience`): a
failing cell is retried under the :class:`~repro.parallel.resilience.
RetryPolicy`, results can be checkpointed and resumed through a
:class:`repro.harness.checkpoint.SweepCheckpoint`, worker-pool death
degrades to in-process serial execution, and deterministic faults can be
injected for testing (``REPRO_FAULT_PLAN`` or an explicit
:class:`~repro.parallel.faults.FaultPlan`).  A cell that exhausts its
retries raises :class:`~repro.parallel.resilience.CellFailedError`
naming the cell and chaining the original (worker) traceback — after
letting every other cell finish, never leaving a hung pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.parallel.resilience import (
    RetryPolicy,
    SweepStats,
    default_workers,
    execute_cells,
)
from repro.parallel.faults import FaultPlan

__all__ = ["SweepCell", "run_cells", "default_workers"]


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Identifies the cell in the result dict and the span path.  Must be
        hashable; tuples like ``("urand", 128)`` read well in reports.
    fn:
        Module-level callable executed in the worker (must be picklable by
        reference, i.e. not a lambda or closure).
    args / kwargs:
        Plain-data arguments forwarded to ``fn``.
    """

    key: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


def run_cells(
    cells: list[SweepCell],
    *,
    workers: int | None = None,
    label: str = "sweep",
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint=None,
    stats: SweepStats | None = None,
    affinity: bool = False,
) -> dict[Any, Any]:
    """Run every cell and return ``{cell.key: result}``.

    ``workers=None`` or ``1`` runs serially in-process (no executor, no
    pickling); ``workers=0`` means one worker per usable CPU
    (:func:`default_workers`); ``workers >= 2`` uses a process pool.
    Results are identical either way — cells are deterministic functions
    of their arguments — and identical with or without recovered faults.

    ``policy`` defaults to no retries (or to a plan-covering policy when
    a fault plan is active); ``checkpoint`` is an opened
    :class:`repro.harness.checkpoint.SweepCheckpoint` whose completed
    cells are skipped and into which new completions are appended;
    ``stats`` (a :class:`~repro.parallel.resilience.SweepStats`)
    accumulates retry/resume counters for run reports; ``affinity``
    dispatches cells sharing a graph argument through the same worker
    lane so each graph is materialized on as few processes as possible
    (placement only — results never depend on it).
    """
    return execute_cells(
        cells,
        workers=workers,
        label=label,
        policy=policy,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
        stats=stats,
        affinity=affinity,
    )
