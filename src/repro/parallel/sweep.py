"""Process-parallel sweep executor for independent simulation cells.

Figure sweeps (7, 8, 9/10) and the suite measurements behind figures 4-6
are embarrassingly parallel: every (graph, kernel, config) cell is an
independent simulation sharing no mutable state.  :func:`run_cells` fans a
list of :class:`SweepCell` specs across a ``ProcessPoolExecutor`` and
returns results keyed by cell, preserving the exact values a serial run
produces (same seeds, same arithmetic — the parallelism is across cells,
never inside one).

Cells must be *picklable*: the callable has to be a module-level function
and the arguments plain data (CSR graphs and machine specs are dataclasses
of arrays and scalars, so they ship fine).  Worker processes do not inherit
the parent's span recorder; instead each worker times its cell with
``perf_counter`` and the parent folds the measurement into the active
:class:`~repro.obs.spans.SpanRecorder` as ``sweep[label]/cell[key]`` — so
``--workers 8`` still yields a complete per-cell timing breakdown in run
reports.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro.obs.log import get_logger
from repro.obs.spans import current_recorder, span

__all__ = ["SweepCell", "run_cells", "default_workers"]

log = get_logger("parallel.sweep")


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Identifies the cell in the result dict and the span path.  Must be
        hashable; tuples like ``("urand", 128)`` read well in reports.
    fn:
        Module-level callable executed in the worker (must be picklable by
        reference, i.e. not a lambda or closure).
    args / kwargs:
        Plain-data arguments forwarded to ``fn``.
    """

    key: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


def default_workers() -> int:
    """Worker count used for ``--workers 0`` (auto): one per CPU."""
    return os.cpu_count() or 1


def _run_one(cell: SweepCell) -> tuple[Any, Any, float]:
    """Execute one cell, returning ``(key, result, seconds)``."""
    start = perf_counter()
    result = cell.fn(*cell.args, **cell.kwargs)
    return cell.key, result, perf_counter() - start


def run_cells(
    cells: list[SweepCell],
    *,
    workers: int | None = None,
    label: str = "sweep",
) -> dict[Any, Any]:
    """Run every cell and return ``{cell.key: result}``.

    ``workers=None`` or ``1`` runs serially in-process (no executor, no
    pickling); ``workers=0`` means one worker per CPU; ``workers >= 2``
    uses a process pool.  Results are identical either way — cells are
    deterministic functions of their arguments.
    """
    if workers == 0:
        workers = default_workers()
    nworkers = min(workers or 1, len(cells)) if cells else 1
    results: dict[Any, Any] = {}
    recorder = current_recorder()
    with span(f"sweep[{label}]") as sweep_span:
        base = getattr(sweep_span, "path", None)
        prefix = f"{base}/" if base else ""

        def note(key: Any, seconds: float) -> None:
            if recorder is not None:
                recorder.record(f"{prefix}cell[{key}]", seconds)

        if nworkers <= 1:
            for cell in cells:
                key, result, seconds = _run_one(cell)
                results[key] = result
                note(key, seconds)
            return results
        log.debug("%s: %d cells across %d workers", label, len(cells), nworkers)
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            for key, result, seconds in pool.map(_run_one, cells):
                results[key] = result
                note(key, seconds)
    return results
