"""Fault-tolerant execution engine behind :func:`repro.parallel.sweep.run_cells`.

A figure sweep is a long, embarrassingly-parallel measurement campaign;
before this module a single worker crash, poisoned result, or stuck cell
forfeited the whole run.  The engine here executes sweep cells with:

* **per-cell retry with deterministic exponential backoff** — a failed
  attempt is rescheduled up to ``max_retries`` times, sleeping
  ``backoff_base * backoff_factor**attempt`` seconds between attempts
  (jitterless: delays are a pure function of the attempt number, so a
  rerun schedules identically);
* **per-cell wall-clock timeouts** (process-pool mode) — submissions are
  throttled to the worker count so a deadline measures execution, not
  queueing; a cell past its deadline is charged a failed attempt and
  rescheduled, and if its worker cannot be preempted the pool is
  replaced so a non-terminating cell never wedges the sweep;
* **graceful pool degradation** — a ``BrokenProcessPool`` (worker died)
  restarts the pool up to ``max_pool_restarts`` times, then falls back
  to in-process serial execution for the remaining cells;
* **checkpoint skip/record** — cells whose fingerprint is already in a
  :class:`repro.harness.checkpoint.SweepCheckpoint` are skipped and
  their stored results returned; completed cells are appended as they
  finish, so an interrupted run resumes where it stopped;
* **deterministic fault injection** — an explicit
  :class:`~repro.parallel.faults.FaultPlan` (or one from the
  ``REPRO_FAULT_PLAN`` environment variable) wraps every attempt, which
  is how the chaos test suite proves all of the above correct;
* **failure attribution** — a cell that exhausts its retries raises
  :class:`CellFailedError` naming the cell key and chaining the original
  exception (with the worker traceback), *after* every other cell has
  been given the chance to finish (and be checkpointed).  No hung pools,
  no anonymous tracebacks.

Results are bit-identical to a fault-free serial run whenever retries
recover, because cells are deterministic functions of their arguments
and the engine folds results by submission order, never completion
order.  Retry/resume activity is observable: spans
(``sweep[label]/retry[key]``, ``sweep[label]/resumed[key]``), trace
counter samples (``sweep_resilience``), and a :class:`SweepStats`
summary that lands in the ``resilience`` section of run reports
(schema 1.2).
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Any, Callable

from repro.obs import events as _events
from repro.obs.log import get_logger
from repro.obs.spans import current_recorder, span
from repro.obs.trace import counter_sample
from repro.parallel.faults import (
    FaultInjected,
    FaultPlan,
    InjectedCrash,
    InjectedTimeout,
    is_corrupt,
)
from repro.parallel.scheduling import affinity_lanes, cell_affinity
from repro.utils.fingerprint import cell_fingerprint

__all__ = [
    "RetryPolicy",
    "SweepStats",
    "SweepOptions",
    "CellFailedError",
    "CorruptResultError",
    "CellTimeoutError",
    "execute_cells",
    "default_workers",
    "resolve_policy",
    "record_attempt_failure",
]

log = get_logger("parallel.resilience")


def default_workers() -> int:
    """Worker count used for ``--workers 0`` (auto): one per *usable* CPU.

    ``sched_getaffinity`` sees cgroup/affinity masks (CI containers,
    ``taskset``), so a 2-CPU runner on a 64-core host gets 2 workers,
    not 64; platforms without it fall back to ``os.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class CellFailedError(RuntimeError):
    """A sweep cell exhausted its retries.

    Subclasses ``RuntimeError`` and embeds the original exception message
    so existing ``except RuntimeError`` handlers keep working; the
    original exception (with its remote traceback, when it crossed a
    process boundary) is chained as ``__cause__``.
    """

    def __init__(self, key: Any, attempts: int, cause: BaseException, *, also_failed=()):
        self.key = key
        self.attempts = attempts
        self.also_failed = tuple(also_failed)
        message = (
            f"sweep cell [{key!r}] failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        if self.also_failed:
            message += f" (also failed: {', '.join(repr(k) for k in self.also_failed)})"
        super().__init__(message)


class CorruptResultError(FaultInjected):
    """A cell returned the corruption poison value."""


class CellTimeoutError(RuntimeError):
    """A cell overran its wall-clock deadline (pool mode)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried.

    ``max_retries`` is the number of *re*-attempts (total attempts =
    ``max_retries + 1``).  Backoff is deterministic and jitterless:
    ``backoff_base * backoff_factor**attempt`` seconds after the
    ``attempt``-th failure (0-based); the default base of 0 disables
    sleeping entirely, which is right for in-process simulation cells.
    ``cell_timeout`` (seconds) is enforced in process-pool mode only —
    an in-process cell cannot be preempted.  A timed-out cell whose
    worker will not stop costs a pool replacement (its remaining healthy
    workers are terminated and their cells requeued), so set it well
    above the slowest legitimate cell.
    """

    max_retries: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    cell_timeout: float | None = None
    max_pool_restarts: int = 1

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt + 1`` (seconds)."""
        if self.backoff_base <= 0.0:
            return 0.0
        return self.backoff_base * self.backoff_factor**attempt

    @classmethod
    def covering(cls, plan: FaultPlan | None, **overrides) -> "RetryPolicy":
        """A policy whose retries outlast ``plan``'s per-cell fault budget."""
        if plan is not None:
            overrides.setdefault("max_retries", max(2, plan.max_per_cell))
        return cls(**overrides)


def resolve_policy(
    policy: "RetryPolicy | None", fault_plan: FaultPlan | None
) -> "RetryPolicy":
    """The engine's default-policy selection, shared with the cluster.

    With faults flying, a no-retry default would be self-defeating:
    cover the plan's per-cell budget unless the caller chose a policy.
    """
    if policy is not None:
        return policy
    if fault_plan is not None:
        return RetryPolicy.covering(fault_plan)
    return RetryPolicy(max_retries=0)


@dataclass
class SweepStats:
    """Counters describing one (or several accumulated) resilient sweeps.

    ``as_dict()`` is the ``resilience`` section of a run report
    (``docs/metrics_schema.md``, schema 1.2).
    """

    cells: int = 0
    completed: int = 0
    resumed: int = 0
    retries: int = 0
    injected_faults: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    serial_fallback: bool = False
    failed: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells": self.cells,
            "completed": self.completed,
            "resumed": self.resumed,
            "retries": self.retries,
            "injected_faults": self.injected_faults,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "serial_fallback": self.serial_fallback,
            "failed": list(self.failed),
        }


@dataclass
class SweepOptions:
    """Bundle of resilience settings threaded through the figure sweeps.

    ``workers=None`` defers to each call site's own ``workers`` argument;
    ``checkpoint_dir`` makes every sweep open (or resume) a per-label
    checkpoint file under that directory; ``stats`` accumulates across
    every sweep of a reproduce run so the final report shows one total.
    ``shm`` controls the shared-memory graph plane in plan execution:
    ``None`` (auto) enables it exactly when a process pool will run,
    ``False`` forces graphs by value, ``True`` requests it explicitly
    (still skipped on the serial path, which never touches shm).
    """

    workers: int | None = None
    policy: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    checkpoint_dir: str | None = None
    stats: SweepStats | None = None
    shm: bool | None = None


# ----------------------------------------------------------------------
# worker-side attempt (module-level: must pickle by reference)
# ----------------------------------------------------------------------
def _attempt_cell(cell, attempt: int, plan: FaultPlan | None, fingerprint: str):
    """Run one attempt of one cell, honouring the fault plan."""
    # Spans left over from a previous failed attempt on this worker would
    # otherwise be attributed to this cell's finish event.
    _events.drain_worker_buffers()
    _events.emit(
        "cell_started", cell=cell.key, fingerprint=fingerprint, attempt=attempt
    )
    start = perf_counter()
    if plan is not None:
        kind = plan.decide(fingerprint, attempt)
        if kind == "crash":
            raise InjectedCrash(
                f"injected crash for cell [{cell.key!r}] attempt {attempt}"
            )
        if kind == "timeout":
            raise InjectedTimeout(
                f"injected timeout for cell [{cell.key!r}] attempt {attempt}"
            )
        if kind == "corrupt":
            from repro.parallel.faults import CORRUPT_RESULT

            # No cell_finished: the parent charges this attempt as a fault.
            return CORRUPT_RESULT, perf_counter() - start
    result = cell.fn(*cell.args, **cell.kwargs)
    seconds = perf_counter() - start
    payload: dict = {"seconds": seconds}
    payload.update(_events.drain_worker_buffers())
    gail = _events.gail_payload(result)
    if gail is not None:
        payload["gail"] = gail
    if _events.in_worker():
        payload["resources"] = _events.resource_snapshot()
    _events.emit(
        "cell_finished",
        cell=cell.key,
        fingerprint=fingerprint,
        attempt=attempt,
        **payload,
    )
    return result, seconds


def record_attempt_failure(
    run,
    exc: BaseException,
    elapsed: float,
    *,
    policy: RetryPolicy,
    stats: SweepStats,
    note: Callable[[str, float], None],
    failures: list,
    label: str,
) -> bool:
    """Count one failed attempt of ``run``; return True if it will retry.

    The single source of truth for failure accounting, shared by the
    in-process engine (:class:`_Engine`) and the cluster coordinator
    (:mod:`repro.cluster.coordinator`): emits the ``cell_faulted`` /
    ``cell_timeout`` / ``cell_retried`` events, bumps the
    :class:`SweepStats` counters, records the deterministic backoff in
    ``run.not_before`` (never slept here — callers keep dispatching),
    and appends permanent failures to ``failures`` as ``(run, exc)``.
    ``run`` is duck-typed: ``cell.key``, ``fingerprint``, ``attempt``,
    ``not_before``.
    """
    if isinstance(exc, FaultInjected):
        stats.injected_faults += 1
    if isinstance(exc, (InjectedTimeout, CellTimeoutError)):
        stats.timeouts += 1
    will_retry = run.attempt < policy.max_retries
    _events.emit(
        "cell_timeout"
        if isinstance(exc, (InjectedTimeout, CellTimeoutError))
        else "cell_faulted",
        cell=run.cell.key,
        fingerprint=run.fingerprint,
        attempt=run.attempt,
        error=type(exc).__name__,
        message=str(exc),
        injected=isinstance(exc, FaultInjected),
        permanent=not will_retry,
        seconds=elapsed,
    )
    if will_retry:
        stats.retries += 1
        note(f"retry[{run.cell.key}]", elapsed)
        _events.emit(
            "cell_retried",
            cell=run.cell.key,
            fingerprint=run.fingerprint,
            attempt=run.attempt,
            next_attempt=run.attempt + 1,
            backoff=policy.delay(run.attempt),
        )
        log.warning(
            "%s: cell [%r] attempt %d failed (%s: %s); retrying",
            label,
            run.cell.key,
            run.attempt,
            type(exc).__name__,
            exc,
        )
        # Backoff is recorded, never slept here: in pool mode this runs
        # on the dispatcher thread, which must keep servicing the other
        # cells' completions and deadlines while one cell backs off.
        run.not_before = monotonic() + policy.delay(run.attempt)
        run.attempt += 1
        return True
    failures.append((run, exc))
    stats.failed.append(repr(run.cell.key))
    log.error(
        "%s: cell [%r] failed permanently after %d attempt(s): %s: %s",
        label,
        run.cell.key,
        run.attempt + 1,
        type(exc).__name__,
        exc,
    )
    return False


class _CellRun:
    """Mutable scheduling state of one cell across its attempts."""

    __slots__ = ("index", "cell", "fingerprint", "attempt", "deadline", "not_before")

    def __init__(self, index: int, cell, fingerprint: str) -> None:
        self.index = index
        self.cell = cell
        self.fingerprint = fingerprint
        self.attempt = 0
        self.deadline: float | None = None
        self.not_before = 0.0  # monotonic() before which a retry must not start


class _FifoQueue:
    """Plain FIFO ready queue — the engine's historical dispatch order."""

    def __init__(self, runs: list[_CellRun]) -> None:
        self._queue: deque[_CellRun] = deque(runs)

    def __len__(self) -> int:
        return len(self._queue)

    def pop_eligible(self, now: float, in_flight=()) -> _CellRun | None:
        """Next run whose backoff has expired, or ``None``."""
        for _ in range(len(self._queue)):
            run = self._queue.popleft()
            if run.not_before <= now:
                return run
            self._queue.append(run)
        return None

    def push(self, run: _CellRun) -> None:
        self._queue.append(run)

    def push_front(self, run: _CellRun) -> None:
        self._queue.appendleft(run)

    def backoff_times(self) -> list[float]:
        return [run.not_before for run in self._queue if run.not_before > 0.0]

    def min_not_before(self) -> float:
        return min(run.not_before for run in self._queue)

    def drain(self) -> list[_CellRun]:
        runs = list(self._queue)
        self._queue.clear()
        return runs


class _LaneQueue:
    """Graph-affinity ready queue: one FIFO lane per worker slot.

    Submissions are throttled to one in-flight future per worker, so at
    steady state the worker that just finished is the only idle one and
    receives the next submission.  Serving lanes by ascending in-flight
    count therefore pins each lane's cells to (approximately) one
    worker — a graph is materialized on as few processes as possible —
    without touching the pool's own scheduler.  Correctness never
    depends on the pinning: results fold by submission index, and any
    lane's cell can run anywhere (refs resolve in every worker).
    """

    def __init__(self, lanes: list[list[_CellRun]]) -> None:
        self._lanes: list[deque[_CellRun]] = [deque(lane) for lane in lanes]
        self._lane_of: dict[int, int] = {
            id(run): index
            for index, lane in enumerate(lanes)
            for run in lane
        }

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes)

    def pop_eligible(self, now: float, in_flight=()) -> _CellRun | None:
        """Next eligible run from the least-busy lane."""
        counts = [0] * len(self._lanes)
        for run in in_flight:
            lane = self._lane_of.get(id(run))
            if lane is not None:
                counts[lane] += 1
        order = sorted(range(len(self._lanes)), key=lambda i: (counts[i], i))
        for index in order:
            lane = self._lanes[index]
            for _ in range(len(lane)):
                run = lane.popleft()
                if run.not_before <= now:
                    return run
                lane.append(run)
        return None

    def push(self, run: _CellRun) -> None:
        self._lanes[self._lane_of.get(id(run), 0)].append(run)

    def push_front(self, run: _CellRun) -> None:
        self._lanes[self._lane_of.get(id(run), 0)].appendleft(run)

    def backoff_times(self) -> list[float]:
        return [
            run.not_before
            for lane in self._lanes
            for run in lane
            if run.not_before > 0.0
        ]

    def min_not_before(self) -> float:
        return min(run.not_before for lane in self._lanes for run in lane)

    def drain(self) -> list[_CellRun]:
        # Back to submission order: the serial fallback must complete
        # cells in the same order a never-pooled run would have.
        runs = sorted(
            (run for lane in self._lanes for run in lane),
            key=lambda run: run.index,
        )
        for lane in self._lanes:
            lane.clear()
        return runs


class _Engine:
    """One resilient sweep execution (single use)."""

    def __init__(
        self,
        cells: list,
        *,
        workers: int | None,
        label: str,
        policy: RetryPolicy | None,
        fault_plan: FaultPlan | None,
        checkpoint,
        stats: SweepStats | None,
        note: Callable[[str, float], None],
        affinity: bool = False,
    ) -> None:
        self.cells = cells
        self.label = label
        self.affinity = affinity
        self.plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.policy = resolve_policy(policy, self.plan)
        self.checkpoint = checkpoint
        self.stats = stats if stats is not None else SweepStats()
        self.note = note
        if workers == 0:
            workers = default_workers()
        self.workers = workers or 1
        self.outcomes: dict[int, Any] = {}
        self.failures: list[tuple[_CellRun, BaseException]] = []

    # ------------------------------------------------------------------
    def run(self) -> dict[Any, Any]:
        self.stats.cells += len(self.cells)
        runs: list[_CellRun] = []
        for index, cell in enumerate(self.cells):
            fingerprint = cell_fingerprint(
                cell.fn, cell.key, cell.args, cell.kwargs
            )
            if self.checkpoint is not None and self.checkpoint.has(fingerprint):
                record = self.checkpoint.result_for(fingerprint)
                self.outcomes[index] = record.result
                self.stats.resumed += 1
                self.note(f"resumed[{cell.key}]", record.seconds)
                resumed_payload: dict = {"seconds": record.seconds}
                gail = _events.gail_payload(record.result)
                if gail is not None:
                    resumed_payload["gail"] = gail
                _events.emit(
                    "checkpoint_resumed",
                    cell=cell.key,
                    fingerprint=fingerprint,
                    **resumed_payload,
                )
                continue
            runs.append(_CellRun(index, cell, fingerprint))
        if self.stats.resumed:
            log.info(
                "%s: resumed %d of %d cells from checkpoint",
                self.label,
                self.stats.resumed,
                len(self.cells),
            )

        nworkers = min(self.workers, len(runs)) if runs else 1
        if nworkers <= 1:
            self._run_serial(runs)
        else:
            self._run_pool(runs, nworkers)

        # Workers enqueue an attempt's events before its future resolves
        # (a manager-queue put is a synchronous RPC), so one drain here
        # leaves the bus complete and causally ordered for this sweep.
        bus = _events.current_bus()
        if bus is not None:
            bus.pump()

        counter_sample(
            "sweep_resilience",
            {
                "retries": float(self.stats.retries),
                "resumed": float(self.stats.resumed),
                "completed": float(self.stats.completed),
            },
        )
        if self.failures:
            first_run, first_exc = self.failures[0]
            raise CellFailedError(
                first_run.cell.key,
                first_run.attempt + 1,
                first_exc,
                also_failed=[run.cell.key for run, _ in self.failures[1:]],
            ) from first_exc
        # Submission order, never completion order: with duplicate keys the
        # last-submitted cell wins, exactly as a serial loop would have it.
        return {
            cell.key: self.outcomes[index]
            for index, cell in enumerate(self.cells)
            if index in self.outcomes
        }

    # ------------------------------------------------------------------
    def _complete(self, run: _CellRun, result: Any, seconds: float) -> None:
        self.outcomes[run.index] = result
        self.stats.completed += 1
        self.note(f"cell[{run.cell.key}]", seconds)
        if self.checkpoint is not None:
            self.checkpoint.record(run.fingerprint, run.cell.key, result, seconds)

    def _record_failure(self, run: _CellRun, exc: BaseException, elapsed: float) -> bool:
        """Count one failed attempt; return True if the cell will retry."""
        return record_attempt_failure(
            run,
            exc,
            elapsed,
            policy=self.policy,
            stats=self.stats,
            note=self.note,
            failures=self.failures,
            label=self.label,
        )

    # ------------------------------------------------------------------
    def _run_serial(self, runs: list[_CellRun]) -> None:
        for run in runs:
            while True:
                pause = run.not_before - monotonic()
                if pause > 0.0:
                    time.sleep(pause)
                start = perf_counter()
                try:
                    result, seconds = _attempt_cell(
                        run.cell, run.attempt, self.plan, run.fingerprint
                    )
                    if is_corrupt(result):
                        raise CorruptResultError(
                            f"cell [{run.cell.key!r}] returned a corrupt result"
                        )
                except Exception as exc:  # noqa: BLE001 — every cell error retries
                    if self._record_failure(run, exc, perf_counter() - start):
                        continue
                    break
                self._complete(run, result, seconds)
                break

    # ------------------------------------------------------------------
    def _new_pool(self, nworkers: int) -> ProcessPoolExecutor:
        """A worker pool, wired to the event bus when one is collecting."""
        bus = _events.current_bus()
        if bus is not None:
            initializer, initargs = bus.worker_initializer()
            return ProcessPoolExecutor(
                max_workers=nworkers, initializer=initializer, initargs=initargs
            )
        return ProcessPoolExecutor(max_workers=nworkers)

    def _make_ready(self, runs: list[_CellRun], nworkers: int):
        """The ready queue: affinity lanes when enabled, else plain FIFO."""
        if self.affinity and nworkers > 1 and len(runs) > 1:
            hints = cell_affinity([run.cell for run in runs])
            lanes = affinity_lanes(hints, nworkers)
            populated = sum(1 for lane in lanes if lane)
            groups = len({key for key, _ in hints})
            _events.emit(
                "affinity_assigned",
                cell=self.label,
                cells=len(runs),
                groups=groups,
                lanes=populated,
                workers=nworkers,
            )
            log.debug(
                "%s: %d cells in %d affinity group(s) across %d lane(s)",
                self.label,
                len(runs),
                groups,
                populated,
            )
            return _LaneQueue([[runs[i] for i in lane] for lane in lanes])
        return _FifoQueue(runs)

    def _run_pool(self, runs: list[_CellRun], nworkers: int) -> None:
        log.debug(
            "%s: %d cells across %d workers", self.label, len(runs), nworkers
        )
        bus = _events.current_bus()
        pool = self._new_pool(nworkers)
        restarts_left = self.policy.max_pool_restarts
        ready = self._make_ready(runs, nworkers)
        pending: dict[Future, tuple[_CellRun, float]] = {}
        try:
            while len(ready) or pending:
                broken = False

                # Throttled submission: at most one in-flight future per
                # worker, so a submitted cell starts executing immediately
                # and its deadline measures execution, not time spent queued
                # behind other cells.  Runs still inside their backoff window
                # are held back until ``not_before`` passes.
                now = monotonic()
                in_flight = [run for run, _ in pending.values()]
                while len(ready) and len(pending) < nworkers:
                    run = ready.pop_eligible(now, in_flight)
                    if run is None:  # everything left is backing off
                        break
                    try:
                        future = pool.submit(
                            _attempt_cell,
                            run.cell,
                            run.attempt,
                            self.plan,
                            run.fingerprint,
                        )
                    except BrokenProcessPool:
                        # The pool died between completions; route this the
                        # same way as a broken in-flight future.
                        ready.push_front(run)
                        broken = True
                        break
                    started = monotonic()
                    if self.policy.cell_timeout is not None:
                        run.deadline = started + self.policy.cell_timeout
                    pending[future] = (run, started)
                    in_flight.append(run)

                if not broken and not pending:
                    # Every remaining cell is backing off; sleep until the
                    # earliest becomes eligible.
                    wake = ready.min_not_before()
                    time.sleep(max(0.0, wake - monotonic()))
                    continue

                if not broken:
                    # Wake for the earliest cell deadline, or — when there is
                    # spare worker capacity — the earliest backoff expiry.
                    wake_times = [
                        run.deadline
                        for run, _ in pending.values()
                        if run.deadline is not None
                    ]
                    if len(pending) < nworkers:
                        wake_times += ready.backoff_times()
                    wait_timeout = (
                        max(0.0, min(wake_times) - monotonic()) if wake_times else None
                    )
                    if bus is not None:
                        # Wake periodically so queued worker events reach
                        # subscribers (the live progress renderer) while
                        # long cells are still running.
                        cap = bus.pump_interval
                        wait_timeout = (
                            cap if wait_timeout is None else min(wait_timeout, cap)
                        )
                    done, _ = wait(
                        set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
                    )
                    if bus is not None:
                        # Drain *before* reacting to completions: a worker's
                        # events are enqueued before its future resolves, so
                        # this keeps arrival order causal per cell (started
                        # precedes the parent's faulted/retried verdict).
                        bus.pump()

                    for future in done:
                        run, started = pending.pop(future)
                        elapsed = monotonic() - started
                        exc = future.exception()
                        if isinstance(exc, BrokenProcessPool):
                            # Worker death kills every in-flight future;
                            # requeue this run and let the pool-level
                            # handling below deal with the rest.
                            ready.push_front(run)
                            broken = True
                            continue
                        if exc is not None:
                            if self._record_failure(run, exc, elapsed):
                                ready.push(run)
                            continue
                        result, seconds = future.result()
                        if is_corrupt(result):
                            corrupt = CorruptResultError(
                                f"cell [{run.cell.key!r}] returned a corrupt result"
                            )
                            if self._record_failure(run, corrupt, elapsed):
                                ready.push(run)
                            continue
                        self._complete(run, result, seconds)

                if broken:
                    # Move every other in-flight run back to the queue; their
                    # futures are dead with the pool.
                    for run, _ in pending.values():
                        ready.push(run)
                    pending.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.stats.pool_restarts += 1
                    if bus is not None:
                        # The manager outlives the pool: events the dead
                        # workers managed to enqueue are still collectable.
                        bus.pump()
                    if restarts_left > 0:
                        restarts_left -= 1
                        log.warning(
                            "%s: worker pool died; restarting (%d restart(s) left)",
                            self.label,
                            restarts_left,
                        )
                        _events.emit(
                            "worker_replaced",
                            reason="broken_pool",
                            requeued=len(ready),
                        )
                        pool = self._new_pool(nworkers)
                        continue
                    log.warning(
                        "%s: worker pool died repeatedly; degrading to "
                        "in-process serial execution for %d remaining cell(s)",
                        self.label,
                        len(ready),
                    )
                    self.stats.serial_fallback = True
                    self._run_serial(ready.drain())
                    return

                # Deadline sweep: charge overrun cells a failed attempt and
                # reschedule.  A future that cannot be cancelled is being
                # executed by a worker we have no way to preempt — the pool
                # must be replaced to reclaim that slot, or a single hung
                # cell would wedge the sweep (and the final shutdown).
                hung = False
                if self.policy.cell_timeout is not None:
                    now = monotonic()
                    for future, (run, started) in list(pending.items()):
                        if run.deadline is not None and now >= run.deadline:
                            pending.pop(future)
                            timeout_exc = CellTimeoutError(
                                f"cell [{run.cell.key!r}] exceeded its "
                                f"{self.policy.cell_timeout:g}s deadline"
                            )
                            if self._record_failure(run, timeout_exc, now - started):
                                ready.push(run)
                            if not future.cancel():
                                hung = True
                if hung:
                    # Healthy in-flight runs die with the abandoned pool;
                    # requeue them without charging an attempt (mirroring
                    # the broken-pool path).  Replacement is not counted
                    # against max_pool_restarts: each replacement charges
                    # the overrun cell an attempt, so retries bound it.
                    for run, _ in pending.values():
                        ready.push(run)
                    pending.clear()
                    if bus is not None:
                        # Collect everything the wedged pool's workers
                        # enqueued before they are terminated — nothing
                        # already sent is lost with the replacement.
                        bus.pump()
                    self._abandon_pool(pool)
                    self.stats.pool_restarts += 1
                    log.warning(
                        "%s: replacing worker pool wedged by a timed-out cell",
                        self.label,
                    )
                    _events.emit(
                        "worker_replaced", reason="wedged", requeued=len(ready)
                    )
                    pool = self._new_pool(nworkers)
        finally:
            # Never wait=True: if anything above raised while a worker was
            # stuck on a cell, joining it would hang the whole engine.
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Free a pool wedged by a non-terminating cell without joining it.

        ``shutdown(wait=True)`` would block on the hung worker forever, so
        the pool is shut down unjoined and its worker processes terminated
        best-effort.  ``_processes`` is CPython's internal worker map; if a
        future version hides it the processes leak until their cells return,
        which is still better than a hung sweep.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers are fine
                pass


def execute_cells(
    cells: list,
    *,
    workers: int | None = None,
    label: str = "sweep",
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint=None,
    stats: SweepStats | None = None,
    affinity: bool = False,
) -> dict[Any, Any]:
    """Run sweep cells resiliently and return ``{cell.key: result}``.

    This is the engine behind :func:`repro.parallel.sweep.run_cells`;
    see that function for the caller-facing contract.  ``checkpoint`` is
    duck-typed (``has`` / ``result_for`` / ``record``) — in practice a
    :class:`repro.harness.checkpoint.SweepCheckpoint`.  ``affinity``
    groups cells by the graph they reference and dispatches each group
    through a per-worker lane (:class:`_LaneQueue`), so a shared graph
    is materialized on as few workers as possible; results are
    unaffected either way (folded by submission index, never by
    placement).
    """
    recorder = current_recorder()
    with span(f"sweep[{label}]") as sweep_span:
        base = getattr(sweep_span, "path", None)
        prefix = f"{base}/" if base else ""

        def note(name: str, seconds: float) -> None:
            if recorder is not None:
                recorder.record(f"{prefix}{name}", seconds)

        engine = _Engine(
            cells,
            workers=workers,
            label=label,
            policy=policy,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
            stats=stats,
            note=note,
            affinity=affinity,
        )
        return engine.run()
