"""Zero-copy shared-memory graph plane for the sweep stack.

The paper's thesis is that moving less data beats computing faster —
yet the sweep stack used to ship the *same* CSR graph, pickled, through
the process pool once per cell, so a 36-cell plan re-serialized
identical multi-MB arrays dozens of times and every worker held private
copies.  This module splits the sweep stack into a **data plane** and a
**control plane**:

* :class:`GraphStore` (parent side) publishes a graph's CSR arrays
  (offsets, targets, optional weights) once into a
  ``multiprocessing.shared_memory`` segment, content-addressed by the
  graph's :func:`repro.utils.fingerprint.stable_digest`;
* :class:`GraphRef` is the plain-data handle that replaces the graph in
  cell arguments — a few hundred bytes of fingerprint + segment name +
  layout, so the control plane (pool submissions) ships no array bytes;
* :func:`resolve_graph` (worker side) attaches the segment on first
  touch and rebuilds a read-only :class:`~repro.graphs.csr.CSRGraph`
  whose arrays are zero-copy views over the shared mapping, cached
  per-process so repeated cells on the same graph pay nothing.

**Identity.** A ``GraphRef`` hashes identically to the graph it refers
to (via the ``__fingerprint_proxy__`` hook honoured by
:func:`~repro.utils.fingerprint.stable_digest`), so cell fingerprints —
and therefore checkpoints, caches, and deterministic fault plans — are
byte-identical with the graph plane on or off.

**Lifecycle.** The parent owns every segment: ``publish`` reference
counts by fingerprint, ``release``/``close`` unlink, a context-manager
+ ``atexit`` guard unlinks even on KeyboardInterrupt mid-plan, and the
parent's resource tracker covers a hard crash.  Workers *attach* but
never unlink — each attach is unregistered from the worker's own
resource tracker so a dying worker cannot tear the segment out from
under its siblings (Python registers attachments too; see bpo-39959).
Publish/attach/evict are observable as ``shm_*`` events on the fleet
bus (``docs/metrics_schema.md``, events schema 1.1).
"""

from __future__ import annotations

import atexit
import dataclasses
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.graphs.csr import OFFSET_DTYPE, CSRGraph
from repro.graphs.edgelist import VERTEX_DTYPE
from repro.obs import events as _events
from repro.obs.log import get_logger
from repro.utils.fingerprint import stable_digest

__all__ = [
    "GraphRef",
    "GraphStore",
    "resolve_graph",
    "graph_fingerprint",
    "attached_graph_count",
    "SEGMENT_PREFIX",
]

log = get_logger("parallel.shm")

#: Prefix of every segment this module creates (leak scans key on it).
SEGMENT_PREFIX = "repro-shm"

WEIGHT_DTYPE = np.float32

_ALIGN = 8


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the segment's 8-byte alignment."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content digest of a graph — the data plane's addressing key."""
    return stable_digest(graph)


@dataclass(frozen=True)
class GraphRef:
    """Plain-data handle to a graph published in shared memory.

    Pickles to a few hundred bytes regardless of graph size; hashes
    identically to the referenced :class:`CSRGraph` (fingerprint-proxy
    hook), and materializes back into one via :meth:`materialize`.
    """

    fingerprint: str
    segment: str
    num_vertices: int
    num_edges: int
    weighted: bool
    symmetric: bool
    nbytes: int

    def __fingerprint_proxy__(self) -> CSRGraph:
        """Hash as the graph itself: refs never perturb cell identity."""
        return self.materialize()

    def __getstate__(self) -> dict[str, Any]:
        # Never ship the materialized graph: the ref *is* the wire form.
        return {
            name: value
            for name, value in self.__dict__.items()
            if name != "_graph"
        }

    def materialize(self) -> CSRGraph:
        """The referenced graph, attached zero-copy on first touch."""
        graph = self.__dict__.get("_graph")
        if graph is None:
            graph = _attach(self)
            object.__setattr__(self, "_graph", graph)
        return graph


def _layout(num_vertices: int, num_edges: int, weighted: bool):
    """Byte offsets of (offsets, targets, weights) and the total size."""
    offsets_at = 0
    targets_at = _aligned(offsets_at + (num_vertices + 1) * np.dtype(OFFSET_DTYPE).itemsize)
    weights_at = _aligned(targets_at + num_edges * np.dtype(VERTEX_DTYPE).itemsize)
    total = weights_at
    if weighted:
        total = _aligned(weights_at + num_edges * np.dtype(WEIGHT_DTYPE).itemsize)
    return offsets_at, targets_at, weights_at, max(total, _ALIGN)


def _views(buf, ref: GraphRef):
    """Read-only numpy views of ``ref``'s arrays over segment buffer ``buf``."""
    offsets_at, targets_at, weights_at, _ = _layout(
        ref.num_vertices, ref.num_edges, ref.weighted
    )
    offsets = np.frombuffer(
        buf, dtype=OFFSET_DTYPE, count=ref.num_vertices + 1, offset=offsets_at
    )
    targets = np.frombuffer(
        buf, dtype=VERTEX_DTYPE, count=ref.num_edges, offset=targets_at
    )
    weights = None
    if ref.weighted:
        weights = np.frombuffer(
            buf, dtype=WEIGHT_DTYPE, count=ref.num_edges, offset=weights_at
        )
    for array in (offsets, targets, weights):
        if array is not None:
            array.flags.writeable = False
    return offsets, targets, weights


def _as_graph(offsets, targets, weights, ref: GraphRef) -> CSRGraph:
    """Assemble a CSRGraph over shared views without revalidating O(n+m).

    The arrays were validated when the *source* graph was constructed and
    the segment is content-addressed, so ``__init__``'s invariant checks
    would only re-prove what the fingerprint already certifies — and at
    one attach per worker per graph they are still cheap enough that we
    keep them as a corruption tripwire.
    """
    return CSRGraph(offsets, targets, weights=weights, symmetric=ref.symmetric)


# ----------------------------------------------------------------------
# worker-side attach cache (also used by the parent's serial fallback)
# ----------------------------------------------------------------------
_attached_graphs: dict[str, CSRGraph] = {}
_attached_segments: dict[str, shared_memory.SharedMemory] = {}
_owned_segments: set[str] = set()  # names this process created (tracker owner)
_release_registered = False
_state_pid = os.getpid()


def _fork_reset() -> None:
    """Make the attach cache fork-local.

    Under the ``fork`` start method a pool worker inherits the parent's
    module state wholesale.  The inherited graphs and segment handles
    belong to the *parent's* attachments — served from the child's
    cache they would suppress ``shm_attached`` telemetry and keep dead
    mappings resident — so the first shm touch in a new pid forgets
    them and the child attaches in its own right.  ``_owned_segments``
    is deliberately inherited: a forked child shares the parent's
    resource-tracker process, so tracker entries for parent-created
    segments must keep their single owner (the child skipping
    unregister for them is exactly right).
    """
    global _state_pid, _release_registered
    if _state_pid == os.getpid():
        return
    _state_pid = os.getpid()
    _release_registered = False
    _attached_graphs.clear()
    for seg in _attached_segments.values():
        try:
            seg.close()
        except BufferError:
            pass
    _attached_segments.clear()


def _release_attachments() -> None:
    """Atexit: drop the view cache so segment handles close quietly.

    The cached graphs hold numpy views exported from each segment's
    buffer; left for interpreter-shutdown GC, ``SharedMemory.__del__``
    would raise ``BufferError: cannot close exported pointers exist``
    into stderr.  Releasing the graphs first lets the handles close;
    a handle still pinned by user references is simply left for the OS
    (attachments are never unlinked, so nothing leaks either way).
    """
    _attached_graphs.clear()
    import gc

    gc.collect()
    for seg in _attached_segments.values():
        try:
            seg.close()
        except BufferError:
            pass
    _attached_segments.clear()


def _attach(ref: GraphRef) -> CSRGraph:
    """Attach ``ref``'s segment (once per process) and build the views."""
    global _release_registered
    _fork_reset()
    graph = _attached_graphs.get(ref.segment)
    if graph is not None:
        return graph
    seg = shared_memory.SharedMemory(name=ref.segment)
    # Python's resource tracker registers *attachments* as owned segments
    # (bpo-39959): left registered, a finishing worker would unlink the
    # segment out from under its siblings and the parent.  Ownership
    # stays with the publishing process, so unregister our handle —
    # except when this process *is* the publisher (its register from
    # ``create=True`` and this one collapse into one tracker entry, which
    # must survive until unlink).
    if ref.segment not in _owned_segments:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # noqa: BLE001 — tracker internals vary by platform
            pass
    if not _release_registered:
        atexit.register(_release_attachments)
        _release_registered = True
    offsets, targets, weights = _views(seg.buf, ref)
    graph = _as_graph(offsets, targets, weights, ref)
    _attached_segments[ref.segment] = seg
    _attached_graphs[ref.segment] = graph
    _events.emit(
        "shm_attached",
        fingerprint=ref.fingerprint,
        segment=ref.segment,
        bytes=ref.nbytes,
        resident=len(_attached_graphs),
    )
    return graph


def attached_graph_count() -> int:
    """Graphs resident in this process's attach cache (telemetry/tests)."""
    _fork_reset()
    return len(_attached_graphs)


def resolve_graph(graph: "GraphRef | CSRGraph") -> CSRGraph:
    """Accept a graph by value or by reference — the cell-side contract.

    Cell functions call this on their graph argument so plan specs,
    serial runs, and shm-backed pool runs all flow through the same
    code: a :class:`CSRGraph` passes through untouched (the serial path
    never touches shared memory), a :class:`GraphRef` materializes its
    zero-copy view.
    """
    if isinstance(graph, GraphRef):
        return graph.materialize()
    return graph


# ----------------------------------------------------------------------
# parent-side store
# ----------------------------------------------------------------------
class _Segment:
    """One published segment and its parent-side bookkeeping."""

    __slots__ = ("shm", "ref", "refcount")

    def __init__(self, shm: shared_memory.SharedMemory, ref: GraphRef) -> None:
        self.shm = shm
        self.ref = ref
        self.refcount = 1


class GraphStore:
    """Content-addressed publisher of CSR graphs into shared memory.

    One store per plan execution: ``publish`` each distinct graph once
    (idempotent per content fingerprint, reference counted), substitute
    the returned :class:`GraphRef` into cell args, and ``close()`` —
    or use the store as a context manager — when the sweep is done.
    Teardown is triple-guarded: context manager, explicit ``close``,
    and an ``atexit`` hook, so a KeyboardInterrupt mid-plan leaves no
    orphaned ``/dev/shm`` segments (the parent's resource tracker covers
    a hard crash).
    """

    def __init__(self, *, label: str = "plan") -> None:
        self.label = label
        self._segments: dict[str, _Segment] = {}  # fingerprint -> segment
        self._by_graph_id: dict[int, str] = {}  # id(graph) -> fingerprint
        self._pinned: dict[int, CSRGraph] = {}  # keep ids stable while cached
        self._counter = 0
        self._closed = False
        self._pid = os.getpid()
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        """Bytes currently published across all live segments."""
        return sum(entry.ref.nbytes for entry in self._segments.values())

    # ------------------------------------------------------------------
    def publish(self, graph: CSRGraph) -> GraphRef:
        """Publish ``graph`` (once per content) and return its handle.

        Publishing the same graph object — or an equal-content graph —
        again returns the existing segment's ref and bumps its
        reference count.
        """
        if self._closed:
            raise RuntimeError("GraphStore is closed")
        fingerprint = self._by_graph_id.get(id(graph))
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
            self._by_graph_id[id(graph)] = fingerprint
            self._pinned[id(graph)] = graph
        entry = self._segments.get(fingerprint)
        if entry is not None:
            entry.refcount += 1
            return entry.ref
        ref, shm = self._create_segment(graph, fingerprint)
        self._segments[fingerprint] = _Segment(shm, ref)
        _events.emit(
            "shm_published",
            fingerprint=fingerprint,
            segment=ref.segment,
            bytes=ref.nbytes,
            vertices=ref.num_vertices,
            edges=ref.num_edges,
        )
        log.debug(
            "%s: published graph %s (%d bytes) as %s",
            self.label,
            fingerprint[:12],
            ref.nbytes,
            ref.segment,
        )
        return ref

    def _create_segment(self, graph: CSRGraph, fingerprint: str):
        weighted = graph.weights is not None
        n, m = graph.num_vertices, graph.num_edges
        offsets_at, targets_at, weights_at, total = _layout(n, m, weighted)
        shm = None
        while shm is None:
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{self._counter}-{fingerprint[:12]}"
            self._counter += 1
            try:
                shm = shared_memory.SharedMemory(create=True, name=name, size=total)
            except FileExistsError:  # stale name from another store; next counter
                continue
        _owned_segments.add(shm.name)
        ref = GraphRef(
            fingerprint=fingerprint,
            segment=shm.name,
            num_vertices=n,
            num_edges=m,
            weighted=weighted,
            symmetric=graph.symmetric,
            nbytes=total,
        )
        offsets, targets, weights = _views(shm.buf, ref)
        for view, source in ((offsets, graph.offsets), (targets, graph.targets)):
            view.flags.writeable = True
            np.copyto(view, source)
            view.flags.writeable = False
        if weighted:
            weights.flags.writeable = True
            np.copyto(weights, graph.weights)
            weights.flags.writeable = False
        # The parent materializes for free (serial fallback, fingerprint
        # proxy): the ref resolves straight to the source graph.
        object.__setattr__(ref, "_graph", graph)
        return ref, shm

    def publish_cell(self, cell: Any) -> Any:
        """Rewrite a sweep/plan cell's graph arguments into refs.

        Duck-typed over frozen dataclasses carrying ``args``/``kwargs``
        (:class:`~repro.parallel.sweep.SweepCell`,
        :class:`~repro.plan.spec.Cell`); returns the cell unchanged when
        it carries no :class:`CSRGraph` argument.
        """
        changed = False

        def substitute(value: Any) -> Any:
            nonlocal changed
            if isinstance(value, CSRGraph):
                changed = True
                return self.publish(value)
            return value

        args = tuple(substitute(value) for value in cell.args)
        kwargs = {name: substitute(value) for name, value in cell.kwargs.items()}
        if not changed:
            return cell
        return dataclasses.replace(cell, args=args, kwargs=kwargs)

    # ------------------------------------------------------------------
    def release(self, ref: GraphRef) -> None:
        """Drop one reference; unlink the segment when none remain."""
        entry = self._segments.get(ref.fingerprint)
        if entry is None:
            return
        entry.refcount -= 1
        if entry.refcount <= 0:
            self._segments.pop(ref.fingerprint)
            self._unlink(entry)

    def close(self) -> None:
        """Unlink every live segment (idempotent; also the atexit hook)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        if os.getpid() != self._pid:
            # A forked pool worker inherited this store (and its atexit
            # hook).  The segments belong to the parent — a worker
            # exiting must not unlink them out from under the fleet.
            return
        for entry in self._segments.values():
            self._unlink(entry)
        self._segments.clear()
        self._by_graph_id.clear()
        self._pinned.clear()

    def _unlink(self, entry: _Segment) -> None:
        _owned_segments.discard(entry.ref.segment)
        _events.emit(
            "shm_evicted",
            fingerprint=entry.ref.fingerprint,
            segment=entry.ref.segment,
            bytes=entry.ref.nbytes,
        )
        try:
            entry.shm.close()
        except Exception:  # noqa: BLE001 — exported views keep the map alive
            pass
        try:
            entry.shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # noqa: BLE001 — teardown must never raise
            log.warning(
                "%s: failed to unlink segment %s", self.label, entry.ref.segment
            )
