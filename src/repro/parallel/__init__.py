"""Parallel execution of propagation blocking (paper Section VII).

The paper parallelizes the two phases differently:

* **binning** — static schedule, work assigned "based on the number of
  edges rather than vertices since degrees can vary substantially"; each
  thread gets its own set of bins so no atomics are needed
  (:func:`~repro.parallel.scheduling.edge_balanced_ranges`,
  :class:`~repro.parallel.threaded.ThreadedDPBPageRank`);
* **accumulate** — vertex ranges assigned dynamically; "since only one
  thread processes a vertex range, there is no need for atomics"
  (:func:`~repro.parallel.scheduling.greedy_assign`).

It also notes the cache-capacity consequence: "when increasing the number
of active threads ... it is often best to decrease the bin width since the
additional threads contend for the same cache capacity"
(:func:`~repro.parallel.model.recommended_bin_width`).
"""

from repro.parallel.scheduling import (
    affinity_lanes,
    cell_affinity,
    edge_balanced_ranges,
    greedy_assign,
    range_edge_counts,
    imbalance,
)
from repro.parallel.shm import GraphRef, GraphStore, resolve_graph
from repro.parallel.model import (
    recommended_bin_width,
    thread_scaling,
    parallel_time,
)
from repro.parallel.threaded import ThreadedDPBPageRank
from repro.parallel.sweep import SweepCell, run_cells, default_workers
from repro.parallel.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    InjectedCrash,
    InjectedTimeout,
)
from repro.parallel.resilience import (
    CellFailedError,
    CellTimeoutError,
    CorruptResultError,
    RetryPolicy,
    SweepOptions,
    SweepStats,
)

__all__ = [
    "SweepCell",
    "run_cells",
    "default_workers",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "InjectedCrash",
    "InjectedTimeout",
    "CellFailedError",
    "CellTimeoutError",
    "CorruptResultError",
    "RetryPolicy",
    "SweepOptions",
    "SweepStats",
    "GraphRef",
    "GraphStore",
    "resolve_graph",
    "affinity_lanes",
    "cell_affinity",
    "edge_balanced_ranges",
    "greedy_assign",
    "range_edge_counts",
    "imbalance",
    "recommended_bin_width",
    "thread_scaling",
    "parallel_time",
    "ThreadedDPBPageRank",
]
