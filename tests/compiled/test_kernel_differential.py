"""Differential tests: compiled PB/DPB kernels vs their NumPy oracles.

The compiled tier's contract is **bit-identical scores** (and, by
inheritance, identical traces and simulated counters) to the pure-NumPy
kernels, which remain the source of truth for every paper claim.  Every
test builds both kernels on the same graph and compares exactly — the
``tests/memsim/test_stackdist.py`` pattern applied to the kernel tier.
"""

import numpy as np
import pytest

from repro.compiled import backend_name
from repro.compiled.kernels import KERNEL_TIERS, resolve_method
from repro.kernels.pagerank import KERNELS, make_kernel, pagerank
from repro.models.machine import SIMULATED_MACHINE

from tests.compiled.conftest import requires_backend

METHODS = ("pb", "dpb")


def kernel_pair(graph, method, **kwargs):
    oracle = make_kernel(graph, method, SIMULATED_MACHINE, **kwargs)
    fast = make_kernel(graph, method, SIMULATED_MACHINE, tier="compiled", **kwargs)
    return oracle, fast


# ----------------------------------------------------------------------
# registry and tier resolution (backend-independent)
# ----------------------------------------------------------------------
def test_registry_has_compiled_variants():
    assert "pb-compiled" in KERNELS
    assert "dpb-compiled" in KERNELS


@pytest.mark.parametrize(
    "method,expected",
    [("pb", "pb-compiled"), ("dpb", "dpb-compiled"), ("baseline", "baseline")],
)
def test_resolve_method(method, expected):
    assert resolve_method(method, "compiled") == expected
    assert resolve_method(method, "numpy") == method


def test_resolve_method_rejects_unknown_tier():
    with pytest.raises(ValueError, match="unknown kernel tier"):
        resolve_method("pb", "fortran")


def test_cli_tier_choices_match_registry():
    """The CLI's literal --kernel-tier choices stay in sync with
    KERNEL_TIERS (the literal keeps repro.compiled lazily imported)."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["measure", "--kernel-tier", "compiled"])
    assert args.kernel_tier in KERNEL_TIERS
    for tier in KERNEL_TIERS:
        parser.parse_args(["measure", "--kernel-tier", tier])


@pytest.mark.parametrize("method", METHODS)
def test_make_kernel_tier_maps_methods(random_graph, method):
    kernel = make_kernel(random_graph, method, SIMULATED_MACHINE, tier="compiled")
    assert kernel.name == f"{method}-compiled"
    # Trace-facing attributes are inherited from the oracle unchanged.
    oracle = make_kernel(random_graph, method, SIMULATED_MACHINE)
    assert kernel.words_per_pair == oracle.words_per_pair
    assert kernel.instruction_model == oracle.instruction_model


# ----------------------------------------------------------------------
# bit-identical scores
# ----------------------------------------------------------------------
@requires_backend
@pytest.mark.parametrize("method", METHODS)
def test_scores_bit_identical(any_graph, method):
    oracle, fast = kernel_pair(any_graph, method)
    assert fast.backend == backend_name()
    for iterations in (1, 4):
        expected = oracle.run(iterations)
        actual = fast.run(iterations)
        assert expected.dtype == actual.dtype
        assert np.array_equal(expected, actual)


@requires_backend
def test_scores_bit_identical_chained_and_damped(random_graph):
    """Continuation from prior scores and non-default damping stay exact."""
    oracle, fast = kernel_pair(random_graph, "pb")
    scores = oracle.run(2)
    expected = oracle.run(3, scores=scores, damping=0.7)
    actual = fast.run(3, scores=scores.copy(), damping=0.7)
    assert np.array_equal(expected, actual)


@requires_backend
@pytest.mark.parametrize("method", METHODS)
def test_scores_bit_identical_custom_bin_width(random_graph, method):
    oracle, fast = kernel_pair(random_graph, method, bin_width=256)
    assert np.array_equal(oracle.run(2), fast.run(2))


@requires_backend
def test_pagerank_driver_tier_identical(random_graph):
    """Full convergence through the driver matches in every field."""
    base = pagerank(random_graph, method="pb", max_iterations=20)
    fast = pagerank(random_graph, method="pb", tier="compiled", max_iterations=20)
    assert fast.method == "pb-compiled"
    assert fast.iterations == base.iterations
    assert fast.converged == base.converged
    assert fast.deltas == base.deltas
    assert np.array_equal(fast.scores, base.scores)


# ----------------------------------------------------------------------
# identical traces and simulated counters
# ----------------------------------------------------------------------
@requires_backend
@pytest.mark.parametrize("method", METHODS)
def test_measure_counters_identical(any_graph, method):
    oracle, fast = kernel_pair(any_graph, method)
    expected = oracle.measure(1, engine="stackdist")
    actual = fast.measure(1, engine="stackdist")
    assert actual.as_dict() == expected.as_dict()


# ----------------------------------------------------------------------
# fallback without a backend
# ----------------------------------------------------------------------
def test_fallback_without_backend(random_graph, monkeypatch):
    """With the backend disabled, the compiled kernel runs the oracle path
    (identical results) instead of failing."""
    from repro.compiled import backend as backend_module

    monkeypatch.setenv(backend_module.BACKEND_ENV, "none")
    backend_module._reset_backend_for_tests()
    try:
        assert backend_module.backend_name() == "numpy"
        oracle, fast = kernel_pair(random_graph, "pb")
        assert fast.backend == "numpy"
        assert np.array_equal(oracle.run(3), fast.run(3))
    finally:
        backend_module._reset_backend_for_tests()


def test_warmup_span_recorded(monkeypatch):
    """The first backend resolution records compiled_warmup[<backend>]."""
    from repro.compiled import backend as backend_module
    from repro.obs import recording

    # An externally forced REPRO_COMPILED_BACKEND=none would skip every
    # probe rung (and thus record no span); this test is about the probe.
    monkeypatch.delenv(backend_module.BACKEND_ENV, raising=False)
    backend_module._reset_backend_for_tests()
    try:
        with recording() as rec:
            info = backend_module.warmup()
        assert info["cached"] is False
        assert info["backend"] in ("numba", "cc", "numpy")
        assert info["seconds"] >= 0.0
        spans = [
            path
            for path in rec.as_dict()
            if path.startswith(backend_module.WARMUP_SPAN_PREFIX)
        ]
        # A span per attempted rung; at least one unless the probe found
        # nothing to even try (never: the numba rung is always probed).
        assert spans
        # Second call is cached and records nothing new.
        with recording() as rec2:
            again = backend_module.warmup()
        assert again["cached"] is True
        assert not rec2.as_dict()
    finally:
        backend_module._reset_backend_for_tests()


@requires_backend
def test_drift_evaluated_for_compiled_methods(random_graph):
    """Model-vs-simulation drift applies the oracle's model to the
    compiled variant (same trace, same model)."""
    from repro.harness import run_experiment

    m = run_experiment(random_graph, "pb-compiled", graph_name="urand")
    oracle = run_experiment(random_graph, "pb", graph_name="urand")
    assert m.drift is not None
    assert m.drift.to_dict() == oracle.drift.to_dict()
