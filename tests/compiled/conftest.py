"""Fixtures for the compiled-tier differential suite.

Graph fixtures mirror ``tests/kernels/conftest.py`` so the compiled
kernels face the same inputs as the oracle kernel tests.  The
``requires_backend`` marker skips a test when neither Numba nor a C
compiler is available — tier-1 stays green without the ``fast`` extra,
the differentials just don't exercise a compiled backend there.
"""

import pytest

from repro.compiled import available
from repro.graphs import build_csr, uniform_random_graph, web_crawl_graph

requires_backend = pytest.mark.skipif(
    not available(),
    reason="no compiled backend (install the 'fast' extra or a C compiler)",
)


@pytest.fixture()
def random_graph():
    """Symmetric uniform random graph, n >> tiny cache words."""
    return build_csr(uniform_random_graph(8192, 8, seed=3))


@pytest.fixture()
def directed_graph():
    return build_csr(uniform_random_graph(4096, 6, seed=4, symmetric=False))


@pytest.fixture()
def local_graph():
    """High-locality banded graph (web stand-in)."""
    return build_csr(web_crawl_graph(8192, 6, seed=5, window=128))


@pytest.fixture(params=["random_graph", "directed_graph", "local_graph"])
def any_graph(request):
    """Each conftest graph in turn (differential sweeps run on all)."""
    return request.getfixturevalue(request.param)
