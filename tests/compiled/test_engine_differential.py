"""Differential tests: CompiledLRU vs the per-access FullyAssociativeLRU.

Same contract and structure as ``tests/memsim/test_stackdist.py``:
bit-identical ``MemCounters`` per stream and phase, including flush
write-backs, on randomized traces and on real kernel traces.  The
randomized sweeps deliberately churn tiny capacities against large
address spaces so the compiled engine's hash table cycles through its
tombstone-rebuild path.
"""

import numpy as np
import pytest

from repro.kernels.pagerank import make_kernel
from repro.memsim import (
    CacheConfig,
    ENGINES,
    FullyAssociativeLRU,
    Stream,
    irregular_chunk,
    make_engine,
    sequential_chunk,
    simulate,
)
from repro.models.machine import SIMULATED_MACHINE

from tests.compiled.conftest import requires_backend

pytestmark = requires_backend


def config_for(lines: int) -> CacheConfig:
    return CacheConfig(capacity_bytes=64 * lines, line_bytes=64)


def assert_identical(trace, capacity_lines: int, *, flush: bool = True):
    """Replay ``trace`` through both engines and compare counters exactly."""
    from repro.compiled.engine import CompiledLRU

    cfg = config_for(capacity_lines)
    expected = simulate(trace, FullyAssociativeLRU(cfg), flush=flush)
    actual = simulate(trace, CompiledLRU(cfg), flush=flush)
    assert actual.as_dict() == expected.as_dict()
    return actual


def random_trace(rng, *, space: int, num_chunks: int, max_len: int = 400):
    trace = []
    for _ in range(num_chunks):
        length = int(rng.integers(1, max_len))
        lines = rng.integers(0, space, size=length)
        trace.append(
            irregular_chunk(
                lines,
                write=bool(rng.integers(0, 2)),
                stream=rng.choice([Stream.VERTEX_CONTRIB, Stream.VERTEX_SUMS]),
                phase=str(rng.choice(["", "binning", "accumulate"])),
            )
        )
    return trace


@pytest.mark.parametrize("seed", range(6))
def test_randomized_traces_match_oracle(seed):
    rng = np.random.default_rng(seed)
    for _ in range(10):
        capacity = int(rng.choice([1, 2, 4, 8, 16, 64, 256]))
        space = int(rng.choice([2, 8, 64, 1024, 4096]))
        trace = random_trace(rng, space=space, num_chunks=int(rng.integers(1, 6)))
        assert_identical(trace, capacity, flush=bool(rng.integers(0, 2)))


def test_tombstone_churn_matches_oracle():
    """A long high-miss trace forces many evictions (and hash rebuilds)."""
    rng = np.random.default_rng(99)
    lines = rng.integers(0, 1 << 16, size=200_000)
    trace = [irregular_chunk(lines, write=True, stream=Stream.VERTEX_SUMS)]
    assert_identical(trace, 64)


def test_mixed_sequential_and_irregular():
    trace = [
        sequential_chunk(np.arange(500), write=False, stream=Stream.EDGE_ADJ),
        irregular_chunk(
            np.array([5, 5, 6, 900, 5]), write=True, stream=Stream.VERTEX_SUMS
        ),
        sequential_chunk(
            np.arange(100, 150), write=True, stream=Stream.VERTEX_SCORES
        ),
        irregular_chunk(np.arange(100), write=False, stream=Stream.VERTEX_CONTRIB),
    ]
    assert_identical(trace, 16)


@pytest.mark.parametrize("method", ["baseline", "cb", "pb", "dpb"])
def test_kernel_traces_match_oracle(random_graph, method):
    kernel = make_kernel(random_graph, method, SIMULATED_MACHINE)
    cfg = SIMULATED_MACHINE.llc
    from repro.compiled.engine import CompiledLRU

    expected = simulate(kernel.trace(2), FullyAssociativeLRU(cfg))
    actual = simulate(kernel.trace(2), CompiledLRU(cfg))
    assert actual.as_dict() == expected.as_dict()


def test_flush_empties_and_engine_is_reusable():
    from repro.compiled.engine import CompiledLRU
    from repro.memsim import MemCounters

    engine = CompiledLRU(config_for(8))
    trace = [irregular_chunk(np.arange(20), write=True, stream=Stream.VERTEX_SUMS)]
    first = simulate(trace, engine)
    assert engine.occupancy == 0  # flushed
    second = simulate(trace, engine, counters=MemCounters())
    assert second.as_dict() == first.as_dict()


def test_occupancy_tracks_residency():
    from repro.compiled.engine import CompiledLRU
    from repro.memsim import MemCounters

    engine = CompiledLRU(config_for(8))
    trace = [irregular_chunk(np.arange(5), stream=Stream.VERTEX_CONTRIB)]
    simulate(trace, engine, flush=False)
    assert engine.occupancy == 5


def test_registry_and_factory():
    assert "compiled" in ENGINES
    engine = make_engine("compiled", config_for(16))
    # With a backend available the factory returns the compiled engine.
    from repro.compiled.engine import CompiledLRU

    assert isinstance(engine, CompiledLRU)


def test_rejects_set_associative_config():
    from repro.compiled.engine import CompiledLRU

    with pytest.raises(ValueError, match="ways"):
        CompiledLRU(CacheConfig(capacity_bytes=64 * 16, line_bytes=64, ways=4))


def test_factory_falls_back_without_backend(monkeypatch):
    from repro.compiled import backend as backend_module
    from repro.compiled.engine import make_compiled_engine
    from repro.memsim.stackdist import StackDistanceLRU

    monkeypatch.setenv(backend_module.BACKEND_ENV, "none")
    backend_module._reset_backend_for_tests()
    try:
        engine = make_compiled_engine(config_for(16))
        assert isinstance(engine, StackDistanceLRU)
        # Still exact: counters match the oracle through the fallback.
        trace = [
            irregular_chunk(
                np.array([1, 2, 1, 3, 9, 1]), write=True, stream=Stream.VERTEX_SUMS
            )
        ]
        expected = simulate(trace, FullyAssociativeLRU(config_for(4)))
        actual = simulate(trace, make_compiled_engine(config_for(4)))
        assert actual.as_dict() == expected.as_dict()
    finally:
        backend_module._reset_backend_for_tests()
