"""Graph-shipping tests: each graph crosses the wire once per worker."""

from __future__ import annotations

import pytest

from repro.cluster.shipping import GraphTicket, resolve_cell, strip_cell
from repro.graphs import build_csr, uniform_random_graph
from repro.parallel import SweepCell

from tests.cluster.cellfns import graph_edges, square


@pytest.fixture
def graph():
    return build_csr(uniform_random_graph(256, 4, seed=1))


def test_first_strip_ships_then_dedups(graph):
    shipped = set()
    cell_a = SweepCell(key="a", fn=graph_edges, args=(graph, 32))
    cell_b = SweepCell(key="b", fn=graph_edges, args=(graph, 64))

    stripped_a, blobs_a = strip_cell(cell_a, shipped)
    assert list(blobs_a.values()) == [graph]  # first time: ship it
    assert isinstance(stripped_a.args[0], GraphTicket)
    assert stripped_a.args[1] == 32

    stripped_b, blobs_b = strip_cell(cell_b, shipped)
    assert blobs_b == {}  # resident already: ticket only
    assert stripped_b.args[0] == stripped_a.args[0]


def test_resolve_restores_identical_graph(graph):
    shipped = set()
    cell = SweepCell(key="a", fn=graph_edges, args=(graph, 32))
    stripped, blobs = strip_cell(cell, shipped)
    resident = dict(blobs)
    restored = resolve_cell(stripped, resident)
    assert restored.args[0] is graph
    assert restored.args[1] == 32
    assert restored.key == cell.key
    assert restored.fn is cell.fn


def test_kwargs_are_stripped_and_resolved(graph):
    shipped = set()
    cell = SweepCell(key="k", fn=graph_edges, args=(), kwargs={"graph": graph, "width": 8})
    stripped, blobs = strip_cell(cell, shipped)
    assert isinstance(stripped.kwargs["graph"], GraphTicket)
    assert stripped.kwargs["width"] == 8
    restored = resolve_cell(stripped, dict(blobs))
    assert restored.kwargs["graph"] is graph


def test_graphless_cell_passes_through_unchanged():
    cell = SweepCell(key=3, fn=square, args=(3,))
    stripped, blobs = strip_cell(cell, set())
    assert stripped is cell
    assert blobs == {}
    assert resolve_cell(stripped, {}) is stripped


def test_unshipped_ticket_raises():
    cell = SweepCell(key="x", fn=square, args=(GraphTicket(("mem", 123)),))
    with pytest.raises(RuntimeError, match="unshipped graph"):
        resolve_cell(cell, {})


def test_two_workers_each_get_one_shipment(graph):
    cells = [SweepCell(key=i, fn=graph_edges, args=(graph, i)) for i in range(4)]
    shipments = 0
    for _worker in range(2):
        shipped = set()
        for cell in cells:
            _, blobs = strip_cell(cell, shipped)
            shipments += len(blobs)
    assert shipments == 2  # once per worker, never per cell
