"""Frame protocol tests: framing survives what sockets do to bytes."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.wire import (
    MAX_FRAME,
    Connection,
    FrameError,
    parse_endpoint,
)


def _pair():
    a, b = socket.socketpair()
    return Connection(a), Connection(b)


def test_round_trip_messages():
    left, right = _pair()
    try:
        for message in [
            {"kind": "hello", "n": 1},
            {"kind": "lease", "cell": ("fig9", 42), "graphs": {}},
            ["a", "list"],
            "plain string",
            {"nested": {"deep": [1, 2, {"three": 3.0}]}},
        ]:
            left.send(message)
            assert right.recv() == message
    finally:
        left.close()
        right.close()


def test_clean_eof_returns_none():
    left, right = _pair()
    left.close()
    assert right.recv() is None
    right.close()


def test_mid_frame_eof_raises():
    a, b = socket.socketpair()
    conn = Connection(b)
    # A header promising 100 bytes, then EOF.
    a.sendall(struct.pack("!Q", 100) + b"short")
    a.close()
    with pytest.raises(FrameError):
        conn.recv()
    conn.close()


def test_oversized_frame_rejected_without_allocation():
    a, b = socket.socketpair()
    conn = Connection(b)
    a.sendall(struct.pack("!Q", MAX_FRAME + 1))
    with pytest.raises(FrameError):
        conn.recv()
    a.close()
    conn.close()


def test_undecodable_payload_raises_frame_error():
    a, b = socket.socketpair()
    conn = Connection(b)
    payload = b"\x00not pickle at all"
    a.sendall(struct.pack("!Q", len(payload)) + payload)
    with pytest.raises(FrameError):
        conn.recv()
    a.close()
    conn.close()


def test_concurrent_senders_never_interleave():
    """Many threads sending through one connection: every frame decodes.

    The worker's heartbeat and telemetry threads share its socket, so
    the send path must serialize whole frames."""
    left, right = _pair()
    per_thread, threads = 50, 8

    def blast(tag):
        for i in range(per_thread):
            left.send({"tag": tag, "i": i, "pad": "x" * 512})

    workers = [threading.Thread(target=blast, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    received = [right.recv() for _ in range(per_thread * threads)]
    for w in workers:
        w.join()
    assert all(isinstance(m, dict) and m["pad"] == "x" * 512 for m in received)
    counts = {t: 0 for t in range(threads)}
    for m in received:
        counts[m["tag"]] += 1
    assert all(count == per_thread for count in counts.values())
    left.close()
    right.close()


def test_byte_counters_track_traffic():
    left, right = _pair()
    sent = left.send({"kind": "x"})
    assert sent > 8
    assert left.sent_bytes == sent
    right.recv()
    assert right.received_bytes == sent
    left.close()
    right.close()


@pytest.mark.parametrize(
    "text,expected",
    [
        ("127.0.0.1:8000", ("127.0.0.1", 8000)),
        ("example.com:0", ("example.com", 0)),
        ("[::1]:9999", ("::1", 9999)),
    ],
)
def test_parse_endpoint_valid(text, expected):
    assert parse_endpoint(text) == expected


@pytest.mark.parametrize("text", ["8000", ":8000", "host:", "host:port", "h:70000"])
def test_parse_endpoint_invalid(text):
    with pytest.raises(ValueError):
        parse_endpoint(text)
