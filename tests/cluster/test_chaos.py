"""Chaos test: SIGKILL a real worker process mid-run.

A killed worker looks exactly like a host dying — no goodbye, no EOF
flush discipline, leases simply stop being heartbeat-renewed or the
socket drops.  The coordinator must recover every leased cell and the
final result must be complete and correct, with nothing double-counted.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from repro.cluster.coordinator import Coordinator
from repro.cluster.worker import spawned_main
from repro.harness.cache import MeasurementCache
from repro.obs.events import EventBus, collecting
from repro.parallel import SweepCell, SweepStats

from tests.cluster.cellfns import slow_square

N_CELLS = 30


def _spawn(host, port, cache_dir):
    context = multiprocessing.get_context("spawn")
    process = context.Process(
        target=spawned_main, args=(host, port, cache_dir), daemon=True
    )
    process.start()
    return process


def test_sigkilled_worker_loses_no_cells(tmp_path):
    cells = [
        SweepCell(key=i, fn=slow_square, args=(i,)) for i in range(N_CELLS)
    ]
    cache = MeasurementCache(str(tmp_path / "cache"))
    stats = SweepStats()
    bus = EventBus()
    with collecting(bus):
        coordinator = Coordinator(
            cells,
            cache=cache,
            stats=stats,
            expected_workers=2,
            lease_seconds=5.0,
        )
        host, port = coordinator.start()
        victim = _spawn(host, port, cache.directory)
        survivor = _spawn(host, port, cache.directory)
        try:
            # Let the victim join and take leases before the kill.
            deadline = time.monotonic() + 20.0
            while stats.completed < 3 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert stats.completed >= 3, "fleet never started completing"
            os.kill(victim.pid, signal.SIGKILL)
            assert coordinator.wait(timeout=60.0)
            result = coordinator.result()
        finally:
            for process in (victim, survivor):
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            coordinator.close()

    assert result == {i: i * i for i in range(N_CELLS)}
    # Every cell completed exactly once from the coordinator's view:
    # kills surface as uncharged requeues (EOF) or charged expiries,
    # never as lost or double-counted results.
    assert stats.completed == N_CELLS
    assert victim.exitcode == -signal.SIGKILL

    bus.pump()
    kinds = [event.kind for event in bus.events()]
    assert kinds.count("worker_joined") == 2
    assert "worker_lost" in kinds or "lease_expired" in kinds
    cluster = bus.fleet_summary()["cluster"]
    assert cluster["leases"]["completed"] == N_CELLS
    bus.close()
