"""Module-level cell functions for the cluster tests.

Fleet workers unpickle cell functions by module reference, so anything a
spawned worker process executes must live in an importable module — not
in a test function body.
"""

from __future__ import annotations

import multiprocessing
import os
import time


def square(x):
    return x * x


def slow_square(x):
    time.sleep(0.05)
    return x * x


def graph_edges(graph, width):
    """A cell with a graph argument, for shipping-dedup tests."""
    return int(graph.num_edges) + int(width)


def die_in_worker(x):
    """Kill the hosting process — only when it is a worker, so the
    serial-fallback path can run it in the parent and survive."""
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return x * x
