"""End-to-end ``DistributedExecutor`` tests: real spawned worker
processes, shared-cache data plane, and degradation to serial."""

from __future__ import annotations

import pytest

from repro.cluster import DistributedExecutor
from repro.harness.cache import MeasurementCache
from repro.obs.events import EventBus, collecting
from repro.parallel import SweepCell, SweepStats, run_cells
from repro.plan.executors import ExecutionRequest, make_executor

from tests.cluster.cellfns import die_in_worker, graph_edges, square


def _cells(n=12):
    return [SweepCell(key=i, fn=square, args=(i,)) for i in range(n)]


def test_registry_builds_distributed_executor():
    executor = make_executor(
        "distributed", spawn_workers=1, lease_seconds=5.0
    )
    assert isinstance(executor, DistributedExecutor)
    assert executor.spawn_workers == 1


def test_empty_request_is_a_noop():
    executor = DistributedExecutor(spawn_workers=1)
    assert executor.run(ExecutionRequest(cells=[])) == {}


def test_matches_serial_run_cells(tmp_path):
    serial = run_cells(_cells(), workers=1)
    stats = SweepStats()
    executor = DistributedExecutor(spawn_workers=2, lease_seconds=30.0)
    request = ExecutionRequest(
        cells=_cells(), label="e2e", stats=stats,
        cache=MeasurementCache(str(tmp_path / "cache")),
    )
    assert executor.run(request) == serial
    assert stats.completed == len(serial)
    assert not stats.serial_fallback


def test_graphs_ship_once_per_worker(tmp_path):
    from repro.graphs import build_csr, uniform_random_graph

    graph = build_csr(uniform_random_graph(512, 4, seed=3))
    cells = [
        SweepCell(key=i, fn=graph_edges, args=(graph, i)) for i in range(10)
    ]
    bus = EventBus()
    with collecting(bus):
        executor = DistributedExecutor(spawn_workers=2)
        result = executor.run(
            ExecutionRequest(
                cells=cells, label="graphs",
                cache=MeasurementCache(str(tmp_path / "cache")),
            )
        )
    assert result == {i: int(graph.num_edges) + i for i in range(10)}
    bus.pump()
    cluster = bus.fleet_summary()["cluster"]
    assert cluster["leases"]["completed"] == 10
    # Dedup: at most one shipment per worker, never one per cell.
    assert 1 <= cluster["graphs_shipped"] <= 2
    bus.close()


def test_fleet_death_falls_back_to_serial(tmp_path):
    """Workers that die on sight must not strand the plan."""
    cells = [SweepCell(key=i, fn=die_in_worker, args=(i,)) for i in range(6)]
    stats = SweepStats()
    executor = DistributedExecutor(
        spawn_workers=1, max_respawns=0, lease_seconds=30.0
    )
    result = executor.run(
        ExecutionRequest(
            cells=cells, label="doomed", stats=stats,
            cache=MeasurementCache(str(tmp_path / "cache")),
        )
    )
    assert result == {i: i * i for i in range(6)}
    assert stats.serial_fallback


def test_transport_cache_is_private_and_cleaned_up():
    """No --cache configured: results still travel, via a temp dir."""
    executor = DistributedExecutor(spawn_workers=1)
    result = executor.run(ExecutionRequest(cells=_cells(4), label="nocache"))
    assert result == {i: i * i for i in range(4)}


def test_rejects_negative_spawn_workers():
    with pytest.raises(ValueError):
        DistributedExecutor(spawn_workers=-1)
