"""Coordinator tests: leases, retries, expiry, and crash recovery.

Workers here are in-process — either the real :func:`run_worker` loop on
a thread (cells are cheap, so thread workers are exact and fast) or a
hand-rolled protocol client for the paths a well-behaved worker never
takes (going silent, dropping mid-lease, double-completing).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.coordinator import Coordinator
from repro.cluster.wire import PROTOCOL_VERSION, Connection
from repro.cluster.worker import run_worker
from repro.harness.cache import MeasurementCache
from repro.obs.events import EventBus, collecting
from repro.parallel import (
    CellFailedError,
    FaultPlan,
    RetryPolicy,
    SweepCell,
    SweepStats,
    run_cells,
)

from tests.cluster.cellfns import square


def _cells(n=8):
    return [SweepCell(key=i, fn=square, args=(i,)) for i in range(n)]


EXPECTED = {i: i * i for i in range(8)}


def _worker_thread(host, port, **kwargs):
    thread = threading.Thread(
        target=run_worker, args=(host, port), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


class _Client:
    """A hand-rolled worker for misbehaving-worker tests."""

    def __init__(self, host, port, name="rogue"):
        self.conn = Connection.connect(host, port, timeout=5.0)
        self.conn.send(
            {"kind": "hello", "protocol": PROTOCOL_VERSION, "worker": name}
        )
        self.welcome = self.conn.recv()
        assert self.welcome["kind"] == "welcome"

    def lease(self):
        while True:
            self.conn.send({"kind": "lease_request"})
            reply = self.conn.recv()
            if reply["kind"] == "lease":
                return reply
            assert reply["kind"] == "idle"
            time.sleep(reply.get("retry_after", 0.02))

    def close(self):
        self.conn.close()


def _coordinator(tmp_path, cells, **kwargs):
    cache = MeasurementCache(str(tmp_path / "cache"))
    kwargs.setdefault("stats", SweepStats())
    return Coordinator(cells, cache=cache, **kwargs), cache


def test_threaded_worker_completes_everything(tmp_path):
    bus = EventBus()
    with collecting(bus):
        coordinator, _ = _coordinator(tmp_path, _cells(), expected_workers=2)
        host, port = coordinator.start()
        thread = _worker_thread(host, port)
        assert coordinator.wait(timeout=30.0)
        assert coordinator.result() == EXPECTED
        coordinator.close()
        thread.join(timeout=5.0)
    bus.pump()
    kinds = [event.kind for event in bus.events()]
    assert kinds.count("worker_joined") == 1
    assert kinds.count("lease_granted") == len(EXPECTED)
    assert kinds.count("lease_completed") == len(EXPECTED)
    assert coordinator.stats.completed == len(EXPECTED)
    cluster = bus.fleet_summary()["cluster"]
    assert cluster["leases"] == {
        "granted": len(EXPECTED), "expired": 0, "completed": len(EXPECTED)
    }
    bus.close()


def test_matches_serial_run_cells(tmp_path):
    serial = run_cells(_cells(), workers=1)
    coordinator, _ = _coordinator(tmp_path, _cells())
    host, port = coordinator.start()
    thread = _worker_thread(host, port)
    assert coordinator.wait(timeout=30.0)
    assert coordinator.result() == serial
    coordinator.close()
    thread.join(timeout=5.0)


def test_injected_faults_recovered_identically(tmp_path):
    """A covered fault plan must not change any result (engine parity)."""
    plan = FaultPlan.from_string("seed=7,rate=0.4,kinds=crash,max=2")
    stats = SweepStats()
    coordinator, _ = _coordinator(
        tmp_path,
        _cells(),
        fault_plan=plan,
        policy=RetryPolicy.covering(plan, backoff_base=0.01),
        stats=stats,
    )
    host, port = coordinator.start()
    # Workers receive the plan in the welcome and inject deterministically.
    thread = _worker_thread(host, port)
    assert coordinator.wait(timeout=60.0)
    assert coordinator.result() == EXPECTED
    assert stats.injected_faults > 0
    assert stats.retries == stats.injected_faults
    coordinator.close()
    thread.join(timeout=5.0)


def test_exhausted_retries_raise_cell_failed(tmp_path):
    plan = FaultPlan.from_string("seed=1,rate=1.0,kinds=crash,max=99")
    coordinator, _ = _coordinator(
        tmp_path,
        _cells(2),
        fault_plan=plan,
        policy=RetryPolicy(max_retries=1, backoff_base=0.01),
    )
    host, port = coordinator.start()
    thread = _worker_thread(host, port)
    assert coordinator.wait(timeout=60.0)
    with pytest.raises(CellFailedError) as excinfo:
        coordinator.result()
    assert excinfo.value.also_failed  # the other cell also reported
    coordinator.close()
    thread.join(timeout=5.0)


def test_silent_worker_lease_expires_and_cell_is_re_leased(tmp_path):
    bus = EventBus()
    with collecting(bus):
        stats = SweepStats()
        coordinator, _ = _coordinator(
            tmp_path,
            _cells(4),
            lease_seconds=0.3,
            policy=RetryPolicy(max_retries=2, backoff_base=0.01),
            stats=stats,
        )
        host, port = coordinator.start()
        rogue = _Client(host, port)
        leased = rogue.lease()  # take one cell, then never heartbeat
        deadline = time.monotonic() + 10.0
        while stats.timeouts == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert stats.timeouts >= 1
        thread = _worker_thread(host, port)
        assert coordinator.wait(timeout=30.0)
        result = coordinator.result()
        assert result == {i: i * i for i in range(4)}
        assert leased["cell"].key in result
        rogue.close()
        coordinator.close()
        thread.join(timeout=5.0)
    bus.pump()
    kinds = [event.kind for event in bus.events()]
    assert "lease_expired" in kinds
    bus.close()


def test_vanished_worker_requeues_without_charging(tmp_path):
    """EOF is crash recovery, not a cell failure: no retry is charged."""
    bus = EventBus()
    with collecting(bus):
        stats = SweepStats()
        coordinator, _ = _coordinator(
            tmp_path, _cells(4), lease_seconds=30.0, stats=stats
        )
        host, port = coordinator.start()
        rogue = _Client(host, port)
        rogue.lease()
        rogue.close()  # vanish mid-lease (SIGKILL looks like this)
        deadline = time.monotonic() + 10.0
        while coordinator.connected_workers() and time.monotonic() < deadline:
            time.sleep(0.02)
        thread = _worker_thread(host, port)
        assert coordinator.wait(timeout=30.0)
        assert coordinator.result() == {i: i * i for i in range(4)}
        assert stats.retries == 0
        assert stats.timeouts == 0
        coordinator.close()
        thread.join(timeout=5.0)
    bus.pump()
    lost = [event for event in bus.events() if event.kind == "worker_lost"]
    assert len(lost) == 1
    bus.close()


def test_duplicate_complete_is_acked_and_ignored(tmp_path):
    stats = SweepStats()
    coordinator, cache = _coordinator(tmp_path, _cells(1), stats=stats)
    host, port = coordinator.start()
    client = _Client(host, port)
    lease = client.lease()
    cache.put(lease["fingerprint"], 0, 0.01)
    client.conn.send(
        {"kind": "complete", "fingerprint": lease["fingerprint"], "seconds": 0.01}
    )
    first = client.conn.recv()
    assert first["kind"] == "ack" and not first["duplicate"]
    client.conn.send(
        {"kind": "complete", "fingerprint": lease["fingerprint"], "seconds": 0.01}
    )
    second = client.conn.recv()
    assert second["kind"] == "ack" and second["duplicate"]
    assert stats.completed == 1
    assert coordinator.done()
    client.close()
    coordinator.close()


def test_unreadable_result_is_charged_as_failed_attempt(tmp_path):
    """A complete whose cache entry is missing must not count as done."""
    stats = SweepStats()
    coordinator, _ = _coordinator(
        tmp_path,
        _cells(1),
        policy=RetryPolicy(max_retries=1, backoff_base=0.01),
        stats=stats,
    )
    host, port = coordinator.start()
    client = _Client(host, port)
    lease = client.lease()
    # Claim success without ever writing the shared cache.
    client.conn.send(
        {"kind": "complete", "fingerprint": lease["fingerprint"], "seconds": 0.01}
    )
    client.conn.recv()
    deadline = time.monotonic() + 10.0
    while stats.retries == 0 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert stats.retries == 1
    assert stats.completed == 0
    client.close()
    coordinator.close()


def test_protocol_mismatch_is_rejected(tmp_path):
    coordinator, _ = _coordinator(tmp_path, _cells(1))
    host, port = coordinator.start()
    conn = Connection.connect(host, port, timeout=5.0)
    conn.send({"kind": "hello", "protocol": PROTOCOL_VERSION + 1, "worker": "w"})
    reply = conn.recv()
    assert reply["kind"] == "reject"
    assert "protocol" in reply["reason"]
    conn.close()
    coordinator.close()


def test_checkpoint_resume_skips_recorded_cells(tmp_path):
    class Recorder:
        def __init__(self):
            self.records = {}

        def has(self, fingerprint):
            return fingerprint in self.records

        def result_for(self, fingerprint):
            return self.records[fingerprint]

        def record(self, fingerprint, key, result, seconds):
            class Entry:
                pass

            entry = Entry()
            entry.result = result
            entry.seconds = seconds
            self.records[fingerprint] = entry

    recorder = Recorder()
    stats_a = SweepStats()
    coordinator, _ = _coordinator(
        tmp_path, _cells(6), checkpoint=recorder, stats=stats_a
    )
    host, port = coordinator.start()
    thread = _worker_thread(host, port)
    assert coordinator.wait(timeout=30.0)
    assert coordinator.result() == {i: i * i for i in range(6)}
    coordinator.close()
    thread.join(timeout=5.0)
    assert len(recorder.records) == 6

    # Second run resumes everything: no worker needed at all.
    stats_b = SweepStats()
    resumed, _ = _coordinator(
        tmp_path, _cells(6), checkpoint=recorder, stats=stats_b
    )
    resumed.start()
    assert resumed.wait(timeout=5.0)
    assert resumed.result() == {i: i * i for i in range(6)}
    assert stats_b.resumed == 6
    assert stats_b.completed == 0
    resumed.close()


def test_drain_pending_returns_submission_order(tmp_path):
    coordinator, _ = _coordinator(tmp_path, _cells(5), expected_workers=3)
    coordinator.start()
    drained = coordinator.drain_pending()
    assert [cell.key for cell in drained] == [0, 1, 2, 3, 4]
    assert coordinator.done()
    assert coordinator.result() == {}
    coordinator.absorb({cell.key: cell.key**2 for cell in drained})
    assert coordinator.result() == {i: i * i for i in range(5)}
    coordinator.close()


def test_locality_lanes_keep_graph_cells_together(tmp_path):
    """Cells sharing a graph land in one lane (ship once, stay resident)."""
    from repro.graphs import build_csr, uniform_random_graph

    from tests.cluster.cellfns import graph_edges

    graph_a = build_csr(uniform_random_graph(128, 4, seed=1))
    graph_b = build_csr(uniform_random_graph(128, 4, seed=2))
    cells = []
    for index, graph in enumerate([graph_a, graph_b] * 4):
        cells.append(
            SweepCell(key=index, fn=graph_edges, args=(graph, index))
        )
    coordinator, _ = _coordinator(tmp_path, cells, expected_workers=2)
    lanes = [
        {task.cell.args[0] is graph_a for task in lane}
        for lane in coordinator._lanes
        if lane
    ]
    # Each populated lane holds cells of exactly one graph.
    assert all(len(markers) == 1 for markers in lanes)
    coordinator.close()
