"""Tests for :mod:`repro.parallel` (paper Section VII)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_csr, kronecker_graph, uniform_random_graph
from repro.kernels import make_kernel, reference_pagerank
from repro.models import SIMULATED_MACHINE
from repro.parallel import (
    ThreadedDPBPageRank,
    edge_balanced_ranges,
    greedy_assign,
    imbalance,
    parallel_time,
    range_edge_counts,
    recommended_bin_width,
    thread_scaling,
)


@pytest.fixture(scope="module")
def skewed_graph():
    return build_csr(kronecker_graph(12, 8, seed=91), symmetric=True)


@pytest.fixture(scope="module")
def random_graph():
    return build_csr(uniform_random_graph(4096, 8, seed=92))


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def test_ranges_cover_all_vertices(random_graph):
    ranges = edge_balanced_ranges(random_graph, 5)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == random_graph.num_vertices
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c


def test_edge_balance_beats_vertex_balance_on_skew(skewed_graph):
    """The paper's point: assign work by edges, not vertices."""
    threads = 8
    edge_ranges = edge_balanced_ranges(skewed_graph, threads)
    edge_costs = range_edge_counts(skewed_graph, edge_ranges)
    # Naive vertex split.
    n = skewed_graph.num_vertices
    step = n // threads
    vertex_ranges = [
        (i * step, (i + 1) * step if i < threads - 1 else n) for i in range(threads)
    ]
    vertex_costs = range_edge_counts(skewed_graph, vertex_ranges)
    assert edge_costs.max() < vertex_costs.max()
    # Edge balancing is near-perfect on this input.
    assert edge_costs.max() / max(edge_costs.mean(), 1) < 1.3


def test_single_thread_range(random_graph):
    ranges = edge_balanced_ranges(random_graph, 1)
    assert ranges == [(0, random_graph.num_vertices)]


def test_more_threads_than_vertices():
    g = build_csr(uniform_random_graph(4, 2, seed=93))
    ranges = edge_balanced_ranges(g, 8)
    assert len(ranges) == 8
    assert ranges[-1][1] == 4
    assert sum(b - a for a, b in ranges) == 4


def test_greedy_assign_covers_all_tasks():
    costs = np.array([5, 3, 8, 1, 2, 7], dtype=float)
    assignment, makespan = greedy_assign(costs, 3)
    flat = sorted(task for bucket in assignment for task in bucket)
    assert flat == list(range(6))
    assert makespan >= costs.sum() / 3  # cannot beat the ideal
    assert makespan <= costs.sum()


def test_greedy_assign_near_optimal_on_uniform():
    costs = np.ones(100)
    _, makespan = greedy_assign(costs, 4)
    assert makespan == pytest.approx(25)


def test_imbalance_dynamic_beats_static():
    # Alternating huge/tiny tasks: round-robin piles the huge ones up.
    costs = np.array([100, 1] * 8, dtype=float)
    static = imbalance(costs, 2, dynamic=False)
    dynamic = imbalance(costs, 2, dynamic=True)
    assert dynamic <= static
    assert dynamic == pytest.approx(1.0, abs=0.05)


def test_imbalance_empty_costs():
    assert imbalance(np.zeros(4), 2) == 1.0


def test_greedy_rejects_bad_input():
    with pytest.raises(ValueError):
        greedy_assign(np.ones((2, 2)), 2)
    with pytest.raises(ValueError):
        greedy_assign(np.ones(3), 0)


@given(
    costs=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40),
    threads=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_property_greedy_within_list_scheduling_bound(costs, threads):
    """Graham's bound vs the computable lower bounds: the makespan never
    exceeds mean-load + max-task, and never beats either lower bound."""
    costs = np.asarray(costs)
    _, makespan = greedy_assign(costs, threads)
    mean_load = costs.sum() / threads
    max_task = costs.max() if costs.size else 0.0
    assert makespan <= mean_load + max_task + 1e-9
    assert makespan >= max(mean_load, max_task) - 1e-9


# ----------------------------------------------------------------------
# model
# ----------------------------------------------------------------------
def test_recommended_width_shrinks_with_threads():
    widths = [recommended_bin_width(SIMULATED_MACHINE, t) for t in (1, 2, 4, 8)]
    assert widths == sorted(widths, reverse=True)
    assert widths[1] == widths[0] // 2


def test_parallel_time_memory_bound_does_not_scale():
    t1 = parallel_time(SIMULATED_MACHINE, requests=1e9, instructions=1.0, num_threads=1)
    t16 = parallel_time(SIMULATED_MACHINE, requests=1e9, instructions=1.0, num_threads=16)
    assert t16.total == pytest.approx(t1.total, rel=0.3)


def test_parallel_time_instruction_bound_scales():
    t1 = parallel_time(SIMULATED_MACHINE, requests=1.0, instructions=1e12, num_threads=1)
    t16 = parallel_time(
        SIMULATED_MACHINE, requests=1.0, instructions=1e12, num_threads=16
    )
    assert t1.total / t16.total > 10


def test_thread_scaling_story():
    """Baseline saturates bandwidth early; DPB keeps scaling longer.

    Needs a graph well beyond the cache (n >> c) so the baseline is
    genuinely memory-bound, as in the paper's Section VI-A discussion.
    """
    graph = build_csr(uniform_random_graph(65536, 8, seed=94))
    base = make_kernel(graph, "baseline", SIMULATED_MACHINE)
    dpb = make_kernel(graph, "dpb", SIMULATED_MACHINE)
    base_counters = base.measure(1)
    dpb_counters = dpb.measure(1)
    threads = [1, 2, 4, 8, 16]
    base_times = thread_scaling(
        SIMULATED_MACHINE, base_counters, base.instruction_count(), threads
    )
    dpb_times = thread_scaling(
        SIMULATED_MACHINE, dpb_counters, dpb.instruction_count(), threads
    )
    base_speedup = base_times[1].total / base_times[16].total
    dpb_speedup = dpb_times[1].total / dpb_times[16].total
    assert dpb_speedup > 1.5 * base_speedup
    # At full thread count DPB is the faster configuration.
    assert dpb_times[16].total < base_times[16].total


# ----------------------------------------------------------------------
# threaded kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("threads", [1, 2, 4])
def test_threaded_dpb_matches_reference(random_graph, threads):
    expected = reference_pagerank(random_graph, 2)
    got = ThreadedDPBPageRank(random_graph, num_threads=threads).run(2)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


def test_threaded_dpb_on_skewed_graph(skewed_graph):
    expected = reference_pagerank(skewed_graph, 2)
    got = ThreadedDPBPageRank(skewed_graph, num_threads=4).run(2)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


def test_threaded_trace_overhead_is_bin_tails(random_graph):
    """Per-thread bins add only partial-line rounding to communication."""
    st_counters = make_kernel(random_graph, "dpb", SIMULATED_MACHINE).measure(1)
    mt_kernel = ThreadedDPBPageRank(
        random_graph,
        SIMULATED_MACHINE,
        num_threads=4,
        bin_width=make_kernel(random_graph, "dpb", SIMULATED_MACHINE).layout.bin_width,
    )
    mt_counters = mt_kernel.measure(1)
    assert mt_counters.total_requests >= st_counters.total_requests
    assert mt_counters.total_requests < 1.15 * st_counters.total_requests


def test_threaded_rejects_bad_thread_count(random_graph):
    with pytest.raises(ValueError):
        ThreadedDPBPageRank(random_graph, num_threads=0)


def test_threaded_spans_nest_per_thread(random_graph):
    """Phase spans nest under the caller; worker-task spans stand alone.

    Each worker thread has its own span stack, so ``binning_task`` /
    ``accumulate_task`` record as root paths (one per task), never nested
    under the caller's ``binning``/``accumulate`` phase spans — the same
    thread-independence contract as :mod:`repro.obs.spans`.
    """
    from repro.obs.spans import recording

    num_threads = 4
    iterations = 2
    kernel = ThreadedDPBPageRank(random_graph, num_threads=num_threads)
    with recording() as rec:
        kernel.run(iterations)
    stats = rec.as_dict()
    for phase in ("binning", "accumulate", "apply"):
        assert stats[phase]["count"] == iterations
    assert stats["binning_task"]["count"] == num_threads * iterations
    assert stats["accumulate_task"]["count"] == kernel.layout.num_bins * iterations
    # No cross-thread nesting: the worker tasks never attach to the
    # caller's phase paths.
    assert "binning/binning_task" not in stats
    assert "accumulate/accumulate_task" not in stats
