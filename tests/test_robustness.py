"""Robustness and failure-injection tests across the library.

A production library fails loudly and early on malformed inputs; these
tests inject the failures a downstream user will eventually produce.
"""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    EdgeList,
    build_csr,
    load_edge_list,
    load_npz,
    save_npz,
    uniform_random_graph,
)
from repro.kernels import make_kernel, pagerank
from repro.kernels.weighted import weighted_pagerank
from repro.memsim import CacheConfig, FullyAssociativeLRU, simulate


# ----------------------------------------------------------------------
# corrupted / malformed files
# ----------------------------------------------------------------------
def test_truncated_npz_rejected(tmp_path):
    g = build_csr(uniform_random_graph(100, 4, seed=1))
    path = tmp_path / "g.npz"
    save_npz(path, g)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(Exception):  # zipfile/numpy raise on corruption
        load_npz(path)


def test_wrong_version_npz_rejected(tmp_path):
    path = tmp_path / "v.npz"
    np.savez(
        path,
        format_version=np.int64(999),
        offsets=np.array([0, 0], dtype=np.int64),
        targets=np.array([], dtype=np.int32),
        symmetric=np.bool_(False),
    )
    with pytest.raises(ValueError, match="version"):
        load_npz(path)


def test_npz_with_inconsistent_arrays_rejected(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(
        path,
        format_version=np.int64(1),
        offsets=np.array([0, 5], dtype=np.int64),  # claims 5 edges
        targets=np.array([0], dtype=np.int32),  # has 1
        symmetric=np.bool_(False),
    )
    with pytest.raises(ValueError):
        load_npz(path)


def test_edge_list_with_too_many_columns(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("0 1 2.0 extra\n")
    with pytest.raises(Exception):
        load_edge_list(path)


def test_edge_list_with_out_of_range_override(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0 9\n")
    with pytest.raises(ValueError, match="vertex ids"):
        load_edge_list(path, num_vertices=5)


# ----------------------------------------------------------------------
# numerically hostile inputs
# ----------------------------------------------------------------------
def test_nan_weights_rejected():
    el = EdgeList(3, [0, 1], [1, 2], weights=[1.0, float("nan")])
    g = build_csr(el, dedup=False)
    with pytest.raises(ValueError, match="finite"):
        weighted_pagerank(g)


def test_inf_weights_rejected():
    el = EdgeList(3, [0, 1], [1, 2], weights=[1.0, float("inf")])
    g = build_csr(el, dedup=False)
    with pytest.raises(ValueError, match="finite"):
        weighted_pagerank(g)


def test_pagerank_on_self_loop_only_graph():
    # Builder drops self-loops by default -> edgeless graph, finite scores.
    g = build_csr(EdgeList(4, [0, 1], [0, 1]))
    assert g.num_edges == 0
    result = pagerank(g, max_iterations=3)
    assert np.isfinite(result.scores).all()


def test_single_vertex_graph():
    g = build_csr(EdgeList(1, [], []))
    result = pagerank(g, max_iterations=2)
    assert result.scores.shape == (1,)
    assert np.isfinite(result.scores).all()


# ----------------------------------------------------------------------
# degenerate kernel parameters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method,kwargs", [
    ("pb", {"bin_width": 1}),
    ("dpb", {"bin_width": 1}),
    ("cb", {"block_width": 1}),
])
def test_width_one_blocking(method, kwargs):
    """One vertex per bin/block: pathological but must stay correct."""
    g = build_csr(uniform_random_graph(64, 4, seed=2))
    from repro.kernels import reference_pagerank

    expected = reference_pagerank(g, 2)
    got = make_kernel(g, method, **kwargs).run(2)
    np.testing.assert_allclose(got, expected, rtol=5e-4, atol=1e-9)


def test_trace_of_edgeless_graph_simulates():
    g = build_csr(EdgeList(16, [], []))
    for method in ("baseline", "push", "cb", "pb", "dpb"):
        kernel = make_kernel(g, method)
        counters = simulate(
            kernel.trace(1), FullyAssociativeLRU(CacheConfig(1024, 64))
        )
        assert counters.total_requests >= 0


def test_star_graph_hub_dominates():
    """Extreme skew: every vertex points at the hub."""
    n = 256
    g = build_csr(EdgeList(n, list(range(1, n)), [0] * (n - 1)))
    result = pagerank(g, method="dpb", max_iterations=50, tolerance=1e-9)
    assert int(np.argmax(result.scores)) == 0
    # The hub dangles (GAP semantics drop its mass), but it still collects
    # every leaf's contribution: two orders of magnitude above a leaf.
    assert result.scores[0] > 50 * result.scores[1]


def test_csr_rejects_float_offsets_gracefully():
    # Floats coerce to int64; fractional data must not corrupt silently.
    g = CSRGraph(offsets=np.array([0.0, 1.0]), targets=np.array([0]))
    assert g.num_edges == 1
