"""Tests for the figure regenerators (Figures 3-11) at reduced scale.

Full-scale versions run in benchmarks/; here we check structure and the
paper's qualitative shapes on smaller inputs against the tiny machine.
"""

import pytest

from repro.graphs import load_graph, load_suite
from repro.harness import (
    figure9_spec,
    figure10_spec,
    figure3_vertex_traffic,
    figure4_speedup,
    figure5_communication_reduction,
    figure6_requests_per_edge,
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
    figure10_bin_width_time,
    figure11_phase_breakdown,
)
from repro.models import SIMULATED_MACHINE
from tests.kernels.conftest import TINY_MACHINE

# Suite-based figures need the properly scaled machine: web's locality
# window must fit in the LLC, as it does at full scale.  0.25 of the suite
# keeps n/c at 8 (paper: ~20) while staying fast.
SCALE = 0.25


@pytest.fixture(scope="module")
def suite_pair():
    return load_suite(scale=SCALE, names=("urand", "web"))


@pytest.fixture(scope="module")
def urand():
    return load_graph("urand", scale=0.04)


def test_figure3_low_locality_vs_web(suite_pair):
    fig = figure3_vertex_traffic(suite_pair, SIMULATED_MACHINE)
    assert fig.x_values == ["urand", "web"]
    measured = dict(zip(fig.x_values, fig.series["measured %"]))
    # Low-locality graph: far above 50%; banded web: below it.
    assert measured["urand"] > 75
    assert measured["web"] < measured["urand"] - 15
    # Model prediction close to measurement for the uniform random graph.
    predicted = dict(zip(fig.x_values, fig.series["predicted %"]))
    assert measured["urand"] == pytest.approx(predicted["urand"], abs=8)


def test_figure4_and_5_blocking_wins_on_urand(suite_pair):
    fig4 = figure4_speedup(suite_pair, SIMULATED_MACHINE)
    fig5 = figure5_communication_reduction(suite_pair, SIMULATED_MACHINE)
    urand_idx = fig4.x_values.index("urand")
    web_idx = fig4.x_values.index("web")
    for series in ("CB", "PB", "DPB"):
        assert fig5.series[series][urand_idx] > 1.3
    assert fig4.series["DPB"][urand_idx] > 1.0
    # web already has the locality blocking would create: no win there,
    # and far less benefit than on the random graph.
    assert fig5.series["DPB"][web_idx] < 1.1
    assert fig5.series["DPB"][web_idx] < fig5.series["DPB"][urand_idx] / 1.5


def test_figure6_dpb_constant_requests_per_edge(suite_pair):
    fig = figure6_requests_per_edge(suite_pair, SIMULATED_MACHINE)
    dpb = fig.series["DPB"]
    assert max(dpb) / min(dpb) < 1.6  # near-constant across graphs
    urand_idx = fig.x_values.index("urand")
    assert fig.series["Baseline"][urand_idx] > dpb[urand_idx]


def test_figure7_shapes():
    sizes = [512, 2048, 8192, 32768]
    fig = figure7_scaling_vertices(sizes, machine=TINY_MACHINE, degree=8.0)
    base = fig.series["Baseline"]
    cb = fig.series["CB"]
    dpb = fig.series["DPB"]
    # Baseline best when the graph fits in cache (1024 words).
    assert base[0] < dpb[0] and base[0] < cb[0]
    # Baseline degrades with n; DPB stays flat.
    assert base[-1] > 3 * base[0]
    assert max(dpb) / min(dpb) < 1.3
    # DPB beats the baseline at the largest size.
    assert dpb[-1] < base[-1]
    # CB's efficiency degrades as blocks multiply.
    assert cb[-1] > cb[0]


def test_figure8_shapes():
    degrees = [4, 16, 64]
    fig = figure8_scaling_degree(degrees, num_vertices=16384, machine=TINY_MACHINE)
    cb = fig.series["CB"]
    dpb = fig.series["DPB"]
    # CB improves (per-edge) with density, and much faster than DPB's mild
    # per-vertex-term decline.
    assert cb[0] > cb[-1]
    assert (cb[0] / cb[-1]) > 1.5 * (dpb[0] / dpb[-1])
    # Sparse end: DPB wins; dense end: CB wins (the Figure 8 crossover).
    assert dpb[0] < cb[0]
    assert cb[-1] < dpb[-1]


def test_figures_9_10_shapes(urand):
    widths = [32, 256, 2048, 8192]
    # One plan over both specs: the shared sweep cells execute once.
    from repro.plan import compile_plan, execute_plan

    plan = compile_plan(
        [
            figure9_spec({"urand": urand}, widths, TINY_MACHINE),
            figure10_spec({"urand": urand}, widths, TINY_MACHINE),
        ]
    )
    results = execute_plan(plan)
    assert plan.cells_requested == 2 * len(widths)
    assert plan.cells_unique == len(widths)
    fig9 = results.artifact("fig9")
    series = fig9.series["urand"]
    # Communication flattens once slices fit in cache: small widths all
    # communicate much less than the too-wide extreme (normalized max=1).
    assert series[-1] == pytest.approx(1.0)
    assert series[0] < 0.9 and series[1] < 0.9
    fig10 = results.artifact("fig10")
    times = fig10.series["urand"]
    assert len(times) == len(widths)
    assert max(times) == pytest.approx(1.0)


def test_figure11_u_shape(urand):
    widths = [16, 128, 1024, 8192]
    fig = figure11_phase_breakdown(urand, widths, TINY_MACHINE)
    binning = fig.series["binning"]
    accumulate = fig.series["accumulate"]
    # Tiny bins: insertion points thrash L1 -> binning slowest at the left.
    assert binning[0] > binning[-2]
    # Huge bins: slices overflow the LLC -> accumulate worst at the right.
    assert accumulate[-1] >= accumulate[1]


def test_render_outputs_text(suite_pair):
    fig = figure3_vertex_traffic(suite_pair, TINY_MACHINE)
    text = fig.render()
    assert "urand" in text and "measured %" in text
