"""Tests for sweep checkpoints: kill-and-resume, fingerprints, tolerance.

``data/golden_checkpoint.jsonl`` is a committed checkpoint written for a
fixed set of cells over a stable library function.  Resuming from it must
skip every cell — which pins both the file schema *and* the cell
fingerprint algorithm: if either changes, this golden breaks and forces a
deliberate ``CHECKPOINT_SCHEMA_VERSION`` bump (old resume directories
silently recompute, which is safe, but must be a choice, not an
accident).
"""

from __future__ import annotations

import json
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.harness.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    SweepCheckpoint,
    checkpoint_path,
    open_checkpoint,
)
from repro.parallel import FaultPlan, CellFailedError, RetryPolicy, SweepCell, SweepStats, run_cells
from repro.utils.fingerprint import cell_fingerprint, stable_digest
from repro.utils.validation import pow2_at_least

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_checkpoint.jsonl"


def _square(x):
    return x * x


def _golden_cells():
    """The fixed cells the committed golden checkpoint was written for."""
    return [
        SweepCell(key=("pow2", n), fn=pow2_at_least, args=(n,))
        for n in (1, 3, 17, 1000)
    ]


def _fingerprint_of(cell: SweepCell) -> str:
    return cell_fingerprint(cell.fn, cell.key, cell.args, cell.kwargs)


# ----------------------------------------------------------------------
# kill-and-resume round trip
# ----------------------------------------------------------------------
def test_kill_and_resume_round_trip(tmp_path):
    cells = [SweepCell(key=i, fn=_square, args=(i,)) for i in range(8)]
    expected = {i: i * i for i in range(8)}

    # "Kill" mid-sweep: a no-retry run under a crash plan aborts with some
    # cells done and checkpointed.
    plan = FaultPlan(seed=3, rate=0.5, kinds=("crash",), max_per_cell=1)
    first = open_checkpoint(str(tmp_path), "unit")
    with pytest.raises(CellFailedError):
        run_cells(
            cells,
            workers=1,
            label="unit",
            fault_plan=plan,
            policy=RetryPolicy(max_retries=0),
            checkpoint=first,
        )
    assert 0 < len(first) < 8

    # Resume in a fresh checkpoint object (as a new process would):
    # completed cells are skipped, the rest run, results are identical.
    stats = SweepStats()
    second = open_checkpoint(str(tmp_path), "unit")
    assert len(second) == len(first)
    result = run_cells(
        cells, workers=1, label="unit", checkpoint=second, stats=stats
    )
    assert result == expected
    assert stats.resumed == len(first)
    assert stats.completed == 8 - len(first)

    # A third run resumes everything and computes nothing.
    stats = SweepStats()
    third = open_checkpoint(str(tmp_path), "unit")
    assert run_cells(cells, workers=1, label="unit", checkpoint=third, stats=stats) == expected
    assert stats.resumed == 8 and stats.completed == 0


def test_changed_arguments_are_never_replayed(tmp_path):
    cells = [SweepCell(key="a", fn=_square, args=(2,))]
    first = open_checkpoint(str(tmp_path), "unit")
    assert run_cells(cells, workers=1, checkpoint=first) == {"a": 4}

    # Same key, different argument: the fingerprint differs, so the stale
    # stored result must not be returned.
    changed = [SweepCell(key="a", fn=_square, args=(7,))]
    second = open_checkpoint(str(tmp_path), "unit")
    stats = SweepStats()
    assert run_cells(changed, workers=1, checkpoint=second, stats=stats) == {"a": 49}
    assert stats.resumed == 0


# ----------------------------------------------------------------------
# fingerprint stability
# ----------------------------------------------------------------------
def test_fingerprints_stable_across_processes():
    cells = _golden_cells()
    local = [_fingerprint_of(c) for c in cells]
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = list(
            pool.map(
                cell_fingerprint,
                [c.fn for c in cells],
                [c.key for c in cells],
                [c.args for c in cells],
                [c.kwargs for c in cells],
            )
        )
    assert local == remote


def test_fingerprints_stable_across_interpreters(tmp_path):
    # A fresh interpreter (fresh hash randomization) must agree: the
    # digest may not depend on Python's salted ``hash``.
    code = (
        "from repro.utils.fingerprint import cell_fingerprint\n"
        "from repro.utils.validation import pow2_at_least\n"
        "print(cell_fingerprint(pow2_at_least, ('pow2', 17), (17,), {}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    assert out == cell_fingerprint(pow2_at_least, ("pow2", 17), (17,), {})


def test_digest_covers_values_not_identity():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest([1, 2]) != stable_digest([2, 1])
    assert stable_digest(1) != stable_digest(1.0)  # type-tagged


# ----------------------------------------------------------------------
# corruption tolerance
# ----------------------------------------------------------------------
def test_corrupt_and_truncated_lines_are_skipped(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    ck = SweepCheckpoint.open(path, label="unit")
    for i in range(3):
        ck.record(f"fp{i}", key=i, result=i * i, seconds=0.0)

    with open(path, "a") as handle:
        handle.write("{not json at all\n")
        handle.write('{"fingerprint": "fp9", "key": "9"}\n')  # missing fields
        handle.write('{"fingerprint": "fp3", "key": "3", "seconds": 0.0, ')  # cut off

    reopened = SweepCheckpoint.open(path, label="unit")
    assert len(reopened) == 3
    for i in range(3):
        assert reopened.has(f"fp{i}")
        assert reopened.result_for(f"fp{i}").result == i * i
    assert not reopened.has("fp3") and not reopened.has("fp9")

    # And the reopened file is still appendable.
    reopened.record("fp4", key=4, result=16, seconds=0.0)
    assert SweepCheckpoint.open(path).has("fp4")


def test_wrong_kind_and_future_major_are_fatal(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "run_report", "schema_version": "1.0"}\n')
    with pytest.raises(ValueError, match="not a sweep checkpoint"):
        SweepCheckpoint.open(str(path))

    path.write_text('{"kind": "sweep_checkpoint", "schema_version": "2.0"}\n')
    with pytest.raises(ValueError, match="unsupported checkpoint schema"):
        SweepCheckpoint.open(str(path))


def test_result_encoding_json_for_plain_pickle_for_rich(tmp_path):
    import numpy as np

    path = str(tmp_path / "ck.jsonl")
    ck = SweepCheckpoint.open(path, label="unit")
    ck.record("plain", key=0, result={"reads": 12, "ok": True}, seconds=0.0)
    ck.record("rich", key=1, result=(np.arange(3), 2.5), seconds=0.0)

    lines = [json.loads(line) for line in open(path)][1:]
    assert {rec["encoding"] for rec in lines} == {"json", "pickle"}

    reopened = SweepCheckpoint.open(path)
    assert reopened.result_for("plain").result == {"reads": 12, "ok": True}
    arr, scalar = reopened.result_for("rich").result
    assert scalar == 2.5 and np.array_equal(arr, np.arange(3))


# ----------------------------------------------------------------------
# golden pin: schema + fingerprint algorithm
# ----------------------------------------------------------------------
def test_golden_checkpoint_header_pins_schema():
    header = json.loads(GOLDEN_PATH.read_text().splitlines()[0])
    assert header["kind"] == "sweep_checkpoint"
    assert header["schema_version"] == CHECKPOINT_SCHEMA_VERSION


def test_golden_checkpoint_resumes_every_cell(tmp_path):
    # Copy the committed golden into place as the resume file.
    target = checkpoint_path(str(tmp_path), "golden")
    Path(target).write_text(GOLDEN_PATH.read_text())

    cells = _golden_cells()
    stats = SweepStats()
    ck = open_checkpoint(str(tmp_path), "golden")
    result = run_cells(cells, workers=1, label="golden", checkpoint=ck, stats=stats)
    # All resumed — proving today's fingerprints match the committed ones —
    # and the stored results equal a fresh computation.
    assert stats.resumed == len(cells) and stats.completed == 0
    assert result == {("pow2", n): pow2_at_least(n) for n in (1, 3, 17, 1000)}


# ----------------------------------------------------------------------
# reproduce --resume: byte-identical artifacts after a mid-sweep crash
# ----------------------------------------------------------------------
def test_reproduce_resume_is_byte_identical_after_crash(tmp_path):
    from repro.harness.reproduce import main as reproduce_main

    base = ["--only", "fig7", "--scale", "0.05", "-q", "-q"]
    clean_dir, crash_dir = tmp_path / "clean", tmp_path / "crash"

    assert reproduce_main([*base, "--output", str(clean_dir)]) == 0

    # Crash-fault a no-retry run: it must exit nonzero with partial
    # progress checkpointed...
    ck = str(tmp_path / "ck")
    code = reproduce_main(
        [
            *base,
            "--output",
            str(crash_dir),
            "--resume",
            ck,
            "--max-retries",
            "0",
            "--inject-faults",
            "seed=3,rate=0.4,kinds=crash,max=1",
        ]
    )
    assert code == 1
    # Since the plan layer, reproduce runs all artifacts as one plan, so
    # the checkpoint is kept under the plan's label rather than per-figure.
    assert len(open_checkpoint(ck, "plan")) > 0

    # ...and a fault-free rerun with the same --resume dir completes and
    # produces byte-identical output.
    report = tmp_path / "report.json"
    code = reproduce_main(
        [*base, "--output", str(crash_dir), "--resume", ck, "--report", str(report)]
    )
    assert code == 0
    clean = (clean_dir / "fig7_scale_vertices.txt").read_bytes()
    resumed = (crash_dir / "fig7_scale_vertices.txt").read_bytes()
    assert clean == resumed

    data = json.loads(report.read_text())
    assert data["kind"] == "reproduce"
    assert data["resilience"]["resumed"] > 0
    assert data["resilience"]["failed"] == []
    assert data["config"]["options"]["completed"] is True
