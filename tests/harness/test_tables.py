"""Tests for the table regenerators (Tables I-III)."""

import pytest

from repro.graphs import load_suite
from repro.harness import PAPER_TABLE2, PAPER_TABLE3, table1, table2, table3
from tests.kernels.conftest import TINY_MACHINE

SCALE = 0.04


@pytest.fixture(scope="module")
def graphs():
    return load_suite(scale=SCALE, names=("urand", "web"))


def test_table1_rows(graphs):
    result = table1(graphs)
    assert len(result.rows) == 2
    text = result.render()
    assert "urand" in text and "webbase" in text


def test_table2_structure_and_orderings(graphs):
    result = table2(graphs["urand"], TINY_MACHINE)
    assert [row[0] for row in result.rows] == [
        "baseline",
        "csb",
        "galois",
        "graphmat",
        "ligra",
    ]
    by_name = {row[0]: row for row in result.rows}
    # Baseline reads fewest lines and executes fewest instructions.
    assert all(
        by_name[name][2] > by_name["baseline"][2] for name in PAPER_TABLE2 if name != "baseline"
    )
    assert all(
        by_name[name][4] > by_name["baseline"][4] for name in PAPER_TABLE2 if name != "baseline"
    )
    # Baseline is the fastest (paper: > 1.5x faster than all prior work).
    assert all(
        by_name[name][1] > by_name["baseline"][1] for name in PAPER_TABLE2 if name != "baseline"
    )


def test_table3_covers_graphs_and_methods(graphs):
    result = table3(graphs, TINY_MACHINE)
    assert len(result.rows) == 2 * 3  # 2 graphs x (baseline, pb, dpb)
    assert "urand/dpb" in result.measurements
    urand_base = result.measurements["urand/baseline"]
    urand_dpb = result.measurements["urand/dpb"]
    # The headline claim, in miniature: DPB communicates and runs less.
    assert urand_dpb.requests < urand_base.requests
    assert urand_dpb.seconds < urand_base.seconds


def test_table3_dpb_writes_below_pb(graphs):
    result = table3(graphs, TINY_MACHINE)
    assert (
        result.measurements["urand/dpb"].writes
        < result.measurements["urand/pb"].writes
    )


def test_paper_reference_values_sane():
    # Spot-check the transcription of the paper's tables.
    assert PAPER_TABLE2["baseline"][0] == 2.49
    assert PAPER_TABLE3["urand"]["dpb"][1] == 481.0
    assert set(PAPER_TABLE3) == {
        "urand", "kron", "cite", "coauth", "friend", "twitter", "web", "webrnd",
    }


def test_render_includes_paper_columns(graphs):
    text = table3(graphs, TINY_MACHINE).render()
    assert "paper reads (M)" in text
