"""Tests for the process-parallel sweep executor and its figure wiring."""

import os

import pytest

from repro.graphs import load_suite
from repro.harness.figures import (
    figure7_scaling_vertices,
    figure8_scaling_degree,
    figure9_bin_width_communication,
)
from repro.harness.tables import table3
from repro.obs.spans import disable, enable
from repro.parallel import SweepCell, default_workers, run_cells


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("cell failed")


def test_run_cells_serial_matches_parallel():
    cells = [SweepCell(key=i, fn=_square, args=(i,)) for i in range(10)]
    serial = run_cells(cells, workers=1)
    # Capped to the runner's usable CPUs (min 2 keeps pool mode live on
    # single-core CI) so low-core runners aren't oversubscribed.
    parallel = run_cells(cells, workers=max(2, min(3, default_workers())))
    assert serial == parallel == {i: i * i for i in range(10)}


def test_run_cells_empty():
    assert run_cells([], workers=4) == {}


def test_run_cells_records_per_cell_spans():
    recorder = enable()
    try:
        run_cells(
            [SweepCell(key="a", fn=_square, args=(2,))], workers=1, label="unit"
        )
    finally:
        disable()
    paths = recorder.paths()
    assert "sweep[unit]" in paths
    assert "sweep[unit]/cell[a]" in paths
    assert recorder.stats("sweep[unit]/cell[a]").count == 1


def test_run_cells_propagates_worker_errors():
    with pytest.raises(RuntimeError, match="cell failed"):
        run_cells([SweepCell(key=0, fn=_boom)], workers=2)


def test_run_cells_failure_names_cell_and_chains_original():
    # Regression: a worker failure used to surface as an anonymous
    # RuntimeError.  It must now name the failing cell and chain the
    # original exception (whose message and type survive pickling back
    # from the worker) — and the healthy cells must still complete.
    from repro.parallel import CellFailedError, SweepStats

    cells = [
        SweepCell(key="ok0", fn=_square, args=(3,)),
        SweepCell(key="bad", fn=_boom),
        SweepCell(key="ok1", fn=_square, args=(4,)),
    ]
    stats = SweepStats()
    with pytest.raises(CellFailedError) as excinfo:
        run_cells(cells, workers=2, stats=stats)
    err = excinfo.value
    assert err.key == "bad"
    assert "bad" in str(err) and "cell failed" in str(err)
    assert isinstance(err.__cause__, RuntimeError)
    assert str(err.__cause__) == "cell failed"
    assert stats.completed == 2  # ok0 and ok1 finished despite the failure
    assert stats.failed == ["'bad'"]


def test_default_workers_positive():
    assert default_workers() >= 1


def test_workers_zero_means_auto():
    cells = [SweepCell(key=i, fn=_square, args=(i,)) for i in range(3)]
    assert run_cells(cells, workers=0) == {i: i * i for i in range(3)}


# ----------------------------------------------------------------------
# figure identity: parallel must reproduce serial outputs exactly
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_graphs():
    return load_suite(scale=0.02, seed=42)


def test_fig7_parallel_identical():
    sizes = [1024, 2048, 4096]
    serial = figure7_scaling_vertices(sizes)
    parallel = figure7_scaling_vertices(sizes, workers=2)
    assert serial == parallel


def test_fig8_parallel_identical():
    degrees = [4, 8]
    serial = figure8_scaling_degree(degrees, num_vertices=2048)
    parallel = figure8_scaling_degree(degrees, num_vertices=2048, workers=2)
    assert serial == parallel


def test_fig9_sweep_parallel_identical(tiny_graphs):
    widths = [64, 512]
    fig_a = figure9_bin_width_communication(tiny_graphs, widths)
    fig_b = figure9_bin_width_communication(tiny_graphs, widths, workers=2)
    assert fig_a == fig_b


def test_suite_plan_parallel_identical(tiny_graphs):
    few = {name: tiny_graphs[name] for name in list(tiny_graphs)[:2]}
    serial = table3(few, methods=("baseline", "dpb"))
    parallel = table3(few, methods=("baseline", "dpb"), workers=2)
    assert serial.rows == parallel.rows
    for key in serial.measurements:
        assert (
            serial.measurements[key].counters.as_dict()
            == parallel.measurements[key].counters.as_dict()
        )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wall-clock reduction needs >= 2 CPUs",
)
def test_parallel_wall_clock_reduction():
    from time import perf_counter

    sizes = [16384, 16384, 16384, 16384]
    start = perf_counter()
    figure7_scaling_vertices(sizes)
    serial_s = perf_counter() - start
    start = perf_counter()
    figure7_scaling_vertices(sizes, workers=2)
    parallel_s = perf_counter() - start
    assert parallel_s < serial_s
